"""The shared verification engine: incremental compilation + memoized analysis.

The paper argues RVaaS is feasible because verification has "low
resource requirements" (§IV-A).  The seed reproduction recompiled the
entire HSA :class:`~repro.hsa.network_tf.NetworkTransferFunction` from
scratch for every snapshot and rebuilt a fresh
:class:`~repro.hsa.reachability.ReachabilityAnalyzer` inside every query
method.  This module is the Veriflow-style incremental replacement, and
the single compilation path shared by every consumer (logical verifier,
emulation backend, flapping detector, dead-end auditor):

* **Per-switch compiled-artifact caching** —
  :class:`~repro.hsa.transfer.SwitchTransferFunction` objects are keyed
  by a per-switch rule-content hash
  (:meth:`~repro.core.snapshot.NetworkSnapshot.switch_content_hash`) and
  structurally shared across snapshot versions: a snapshot that changed
  k switches recompiles exactly k transfer functions.
* **Delta-driven invalidation** — the
  :class:`~repro.core.monitor.ConfigurationMonitor` emits
  :class:`SnapshotDelta` objects describing added/removed rules, meter
  and wiring changes; :meth:`VerificationEngine.apply_delta` uses them
  to evict exactly the superseded per-switch entries.
* **Memoized reachability** — one propagation per (snapshot content
  hash, ingress port, header space) serves every query class that needs
  it, so an Isolation query immediately after a ReachableDestinations
  query on the same snapshot costs a dictionary lookup.

All caches are content-addressed, so correctness never depends on
deltas arriving: a missed delta only costs an extra recompilation.

With ``workers > 1`` the engine fans per-switch compilation and
multi-source sweeps (``sources_reaching``) over a thread pool; caches
are lock-guarded, results are merged in sorted order, and the fast-path
kernel's counters (rules skipped by the classifier index, worklist
depth, pool utilisation) surface in :class:`EngineMetrics`.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Iterable, Optional, Tuple

import hashlib

from repro.core.snapshot import NetworkSnapshot
from repro.hsa.atoms import (
    GLOBAL_ATOM_TABLE,
    AtomNetwork,
    AtomSpace,
    ReachabilityMatrix,
    RemapInexact,
    constraint_seed_hash,
)
from repro.hsa.farm import FarmError, FarmTaskError
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.network_tf import NetworkTransferFunction, PortRef
from repro.hsa.parallel import FanOutPool, env_pool_mode, env_pool_workers
from repro.hsa.reachability import (
    ReachabilityAnalyzer,
    ReachabilityResult,
    build_reachability_matrix,
    repair_reachability_matrix,
)
from repro.hsa.transfer import SwitchTransferFunction, compile_switch_tf
from repro.hsa.wildcard import Wildcard

#: Environment override for the default header-set backend; ``atom``
#: turns on the atomic-predicate engine for every engine constructed
#: without an explicit ``backend=``, which is how the full test suite
#: runs against both calculi.
BACKEND_ENV_VAR = "RVAAS_HSA_BACKEND"


@dataclass(frozen=True)
class SnapshotDelta:
    """What changed between two consecutive monitor snapshots.

    ``added_rules`` / ``removed_rules`` are (switch, rule identity)
    signature pairs — the same currency as
    :meth:`~repro.core.snapshot.NetworkSnapshot.rule_signatures` and the
    flapping detector.  ``changed_switches`` is the union of switches
    with any rule churn; meter and wiring changes are flagged separately
    because they invalidate different artifacts.
    """

    since_version: int
    version: int
    added_rules: frozenset = frozenset()
    removed_rules: frozenset = frozenset()
    changed_switches: frozenset = frozenset()
    meters_changed: bool = False
    wiring_changed: bool = False

    def is_empty(self) -> bool:
        return not (
            self.added_rules
            or self.removed_rules
            or self.changed_switches
            or self.meters_changed
            or self.wiring_changed
        )

    def rule_churn(self) -> int:
        return len(self.added_rules) + len(self.removed_rules)


@dataclass
class EngineMetrics:
    """Hit/miss/recompile accounting, read by E5/E10/E11 benchmarks."""

    switch_tf_hits: int = 0
    switch_tf_misses: int = 0  # == per-switch recompilations
    network_tf_hits: int = 0
    network_tf_builds: int = 0
    incremental_builds: int = 0  # NTF builds that shared the role map
    reach_hits: int = 0
    reach_misses: int = 0
    artifact_hits: int = 0
    artifact_misses: int = 0
    deltas_applied: int = 0
    delta_invalidations: int = 0
    content_hashes: int = 0
    # Fast-path kernel telemetry (E17): lifetime totals across the
    # engine's compiled transfer functions, sampled after each
    # propagation miss.
    kernel_rules_checked: int = 0
    kernel_rules_skipped: int = 0  # rules the classifier index pruned
    kernel_early_exits: int = 0
    kernel_index_hits: int = 0
    worklist_peak: int = 0  # deepest worklist of any propagation
    pool_workers: int = 1
    pool_mode: str = "thread"  # thread | process (the compile farm)
    pool_tasks: int = 0  # fan-out tasks submitted (sweeps + compiles)
    parallel_sweeps: int = 0
    parallel_compiles: int = 0
    pool_fallbacks: int = 0  # process batches that fell back to threads
    # Compile-farm telemetry (E24): content-addressed shipping to the
    # persistent worker processes behind process-mode fan-out.
    farm_batches: int = 0  # farm batches this engine's pool submitted
    farm_tasks: int = 0
    farm_warm_hits: int = 0  # worker-side compiled-artifact cache hits
    farm_mirror_reuses: int = 0  # worker mirrors reused across batches
    farm_bytes_shipped: int = 0  # pickled bytes actually sent to workers
    farm_parts_shipped: int = 0  # content parts sent (cache misses)
    farm_parts_cached: int = 0  # parts skipped (worker already held them)
    farm_worker_restarts: int = 0  # crashed workers respawned mid-service
    farm_queue_depth_peak: int = 0  # peak in-flight tasks on the farm
    # Atomic-predicate backend telemetry (E19).
    atom_space_builds: int = 0  # atom universes compiled (interner misses)
    atom_intern_hits: int = 0  # artifact-cache hits for (space, matrix)
    atom_matrix_builds: int = 0  # all-ingress matrix precomputations
    atom_count: int = 0  # atoms in the most recent universe
    atom_matrix_expansions: int = 0  # worklist expansions of last build
    atom_served_queries: int = 0  # queries answered from the matrix
    atom_fallbacks: int = 0  # queries bounced to the wildcard path
    atom_overflows: int = 0  # universes rejected for exceeding the limit
    # Matrix repair telemetry (E20): delta-driven maintenance of the
    # all-ingress matrix instead of full recompilation.
    matrix_repairs: int = 0  # matrices produced by repairing a predecessor
    rows_repaired: int = 0  # rows re-propagated during repairs
    rows_reused: int = 0  # rows carried over (renumbered) during repairs
    atoms_split: int = 0  # old cells refined by the new universe, summed
    matrix_repair_fallbacks: int = 0  # repairs abandoned for a full rebuild
    # Batch query API telemetry (E21, serving tier): multi-ingress
    # propagation requests deduped and fanned out in one call.
    batched_analyses: int = 0  # analyze_batch invocations
    batch_jobs: int = 0  # jobs submitted across all batches
    batch_unique_jobs: int = 0  # jobs remaining after in-batch dedup
    # Federation telemetry (E22): matrix rows computed on demand for
    # ingress ports outside the edge-port set (inter-domain boundary
    # ports a peer provider hands traffic to).
    atom_boundary_rows: int = 0
    # Per-query-class serving breakdown (which classes the matrix serves
    # and which still fall back to wildcard propagation); dict-valued,
    # keyed by query-class name.
    atom_served_by_class: Dict[str, int] = field(default_factory=dict)
    atom_fallbacks_by_class: Dict[str, int] = field(default_factory=dict)

    @property
    def recompilations(self) -> int:
        return self.switch_tf_misses

    def count_query_class(self, query_class: str, served: bool) -> None:
        """Record one atom-backend query as matrix-served or fallback."""
        if served:
            self.atom_served_queries += 1
            bucket = self.atom_served_by_class
        else:
            self.atom_fallbacks += 1
            bucket = self.atom_fallbacks_by_class
        bucket[query_class] = bucket.get(query_class, 0) + 1

    def snapshot_counters(self) -> Dict[str, int]:
        counters = {}
        for f in fields(self):
            value = getattr(self, f.name)
            # Dict-valued breakdowns are copied so a "before" snapshot
            # is not mutated by later counting.
            counters[f.name] = dict(value) if isinstance(value, dict) else value
        return counters


@dataclass
class _AtomState:
    """Predecessor state for delta-driven matrix repair.

    One per cached ``("atoms", seed_key, content)`` artifact: everything
    :func:`~repro.hsa.reachability.repair_reachability_matrix` needs to
    produce the successor matrix without a full recompilation.
    ``switch_sigs`` is the per-switch (rule-content hash, ports)
    signature map — the touched-switch set of a delta is computed by
    diffing signatures, never by trusting the delta's own contents, so a
    missed or wrong delta can only cost extra re-propagation.
    """

    content: str
    network_tf: NetworkTransferFunction
    switch_sigs: Dict[str, tuple]
    space: AtomSpace
    matrix: ReachabilityMatrix
    #: None when the matrix was built/repaired on the compile farm —
    #: the worker-side mirrors hold the pipelines; :meth:`atom_rows`
    #: rebuilds a parent-side network lazily if boundary rows need one
    atom_network: Optional[AtomNetwork]


class VerificationEngine:
    """Content-addressed compilation and analysis cache.

    One engine instance is shared by everything that verifies against
    snapshots of the same network: the :class:`LogicalVerifier` (all
    query classes), the :class:`RVaaSController`'s watch/audit paths,
    the :class:`EmulationVerifier` (shadow networks, via
    :meth:`artifact`), and :class:`SnapshotHistory` (content hashing).
    """

    def __init__(
        self,
        *,
        max_switch_entries: int = 4096,
        max_network_entries: int = 16,
        max_reach_entries: int = 1024,
        max_artifact_entries: int = 8,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        pool_mode: Optional[str] = None,
        matrix_repair: bool = True,
        repair_max_fraction: float = 0.5,
    ) -> None:
        if backend is None:
            backend = os.environ.get(BACKEND_ENV_VAR, "wildcard")
        if backend not in ("wildcard", "atom"):
            raise ValueError(f"unknown HSA backend: {backend!r}")
        #: "wildcard" — every query runs wildcard-set propagation;
        #: "atom" — compile() additionally builds the atomic-predicate
        #: universe + all-ingress reachability matrix, and the verifier
        #: serves eligible queries from it (falling back per query).
        self.backend = backend
        #: repair the predecessor matrix on rule churn instead of
        #: rebuilding it (atom backend only); off = always cold-build,
        #: which is the E20 baseline and a CI lever
        self.matrix_repair = matrix_repair
        #: safety valve: a delta touching more than this fraction of the
        #: network's switches falls back to a full rebuild (repairing
        #: nearly everything costs more than a clean fan-out)
        self.repair_max_fraction = repair_max_fraction
        self.metrics = EngineMetrics()
        self._max_switch_entries = max_switch_entries
        self._max_network_entries = max_network_entries
        self._max_reach_entries = max_reach_entries
        self._max_artifact_entries = max_artifact_entries
        #: fan-out width and mode for sweeps, per-switch compilation and
        #: matrix builds; defaults come from ``RVAAS_POOL_WORKERS`` /
        #: ``RVAAS_POOL_MODE`` so a whole deployment (or test run) flips
        #: to the process farm with two environment variables.  Results
        #: are merged in sorted order either way, so any worker count
        #: and mode answers identically.
        self.workers = (
            max(1, workers) if workers is not None else env_pool_workers(1)
        )
        if pool_mode is None:
            pool_mode = env_pool_mode("thread")
        if pool_mode not in ("thread", "process"):
            raise ValueError(f"unknown pool mode: {pool_mode!r}")
        self.pool_mode = pool_mode
        self.metrics.pool_workers = self.workers
        self.metrics.pool_mode = pool_mode
        #: the persistent fan-out pool (satellite of E24: one executor
        #: per engine, lazily started, closed by :meth:`close` — never a
        #: fresh executor per map call)
        self._pool = FanOutPool(self.workers, pool_mode)
        #: memoization-dependent fan-outs (``analyze_batch``,
        #: ``sources_reaching``) must share the in-process memo tables,
        #: so they always run on threads even when compiles and matrix
        #: builds use the process farm
        self._thread_pool = (
            self._pool
            if pool_mode == "thread"
            else FanOutPool(self.workers, "thread")
        )
        #: guards every cache OrderedDict against concurrent fan-out
        self._lock = threading.RLock()
        #: (switch, rule hash, ports) -> compiled transfer function
        self._switch_tfs: "OrderedDict[tuple, SwitchTransferFunction]" = OrderedDict()
        #: snapshot content hash -> assembled network transfer function
        self._network_tfs: "OrderedDict[str, NetworkTransferFunction]" = OrderedDict()
        #: (content hash, collect_drops) -> analyzer over the cached NTF
        self._analyzers: "OrderedDict[Tuple[str, bool], ReachabilityAnalyzer]" = (
            OrderedDict()
        )
        #: (content hash, ingress, space fingerprint, drops) -> result
        self._reach: "OrderedDict[tuple, ReachabilityResult]" = OrderedDict()
        #: (kind, content hash) -> arbitrary derived artifact
        self._artifacts: "OrderedDict[tuple, object]" = OrderedDict()
        #: last assembled NTF, for the O(k) incremental sibling path
        self._last_ntf: Optional[NetworkTransferFunction] = None
        #: extra predicates the atom universe must refine (host
        #: addresses, query scopes, the interception punt space) so that
        #: the verifier's query spaces encode exactly; the seed digest is
        #: part of the artifact key, so seeding is never a staleness bug
        self._atom_seeds: Tuple[Wildcard, ...] = ()
        self._atom_seed_key: str = constraint_seed_hash(())
        #: (seed key, content hash) -> predecessor state for matrix
        #: repair; MRU-ordered, bounded like the artifact cache
        self._atom_states: "OrderedDict[Tuple[str, str], _AtomState]" = (
            OrderedDict()
        )
        #: content hashes exempt from eviction.  The preventive gate pins
        #: the live snapshot's content while it compiles a burst of
        #: speculative variants, so adversarial FlowMod floods cannot
        #: evict the serving artifacts and force a cold rebuild.
        self._pinned: set = set()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def switch_transfer_function(
        self, snapshot: NetworkSnapshot, switch: str
    ) -> SwitchTransferFunction:
        """The compiled pipeline of one switch, cached by rule content."""
        rules = snapshot.rules.get(switch, ())
        ports = tuple(snapshot.switch_ports.get(switch, ()))
        key = (switch, snapshot.switch_content_hash(switch), ports)
        with self._lock:
            cached = self._switch_tfs.get(key)
            if cached is not None:
                self.metrics.switch_tf_hits += 1
                self._switch_tfs.move_to_end(key)
                return cached
            self.metrics.switch_tf_misses += 1
        # Compile outside the lock so parallel per-switch compilation
        # actually overlaps; a rare duplicate compile of the same key is
        # benign (content-addressed, last write wins).
        compiled = compile_switch_tf(switch, rules, ports)
        with self._lock:
            self._switch_tfs[key] = compiled
            self._evict(self._switch_tfs, self._max_switch_entries)
        return compiled

    def compile(self, snapshot: NetworkSnapshot) -> NetworkTransferFunction:
        """The network transfer function, assembled from cached pieces."""
        content = self.content_hash(snapshot)
        with self._lock:
            cached = self._network_tfs.get(content)
            if cached is not None:
                self.metrics.network_tf_hits += 1
                self._network_tfs.move_to_end(content)
        if cached is not None:
            if self.backend == "atom":
                # The NTF survived but the (space, matrix) artifact may
                # have been evicted or the seed set may have grown.
                self._ensure_atoms(cached, content, snapshot)
            return cached
        with self._lock:
            self.metrics.network_tf_builds += 1
        switches = sorted(snapshot.rules)
        if self.workers > 1 and len(switches) > 1:
            self.metrics.parallel_compiles += 1
            self.metrics.pool_tasks += len(switches)
            if self._pool.is_process:
                tfs = self._farm_compile(snapshot, switches)
            else:
                compiled = self._pool.map(
                    self.switch_transfer_function, snapshot, switches
                )
                tfs = dict(zip(switches, compiled))
        else:
            tfs = {
                switch: self.switch_transfer_function(snapshot, switch)
                for switch in switches
            }
        previous = self._last_ntf
        if (
            previous is not None
            and previous.wiring == dict(snapshot.wiring)
            and previous.edge_ports.keys() == snapshot.edge_ports.keys()
            and all(
                previous.edge_ports[s] == frozenset(p)
                for s, p in snapshot.edge_ports.items()
            )
            and set(previous.transfer_functions) == set(tfs)
        ):
            updates = {
                name: tf
                for name, tf in tfs.items()
                if previous.transfer_functions.get(name) is not tf
            }
            network_tf = previous.with_updated_switches(updates)
            self.metrics.incremental_builds += 1
        else:
            network_tf = NetworkTransferFunction(
                tfs, snapshot.wiring, snapshot.edge_ports
            )
        with self._lock:
            self._network_tfs[content] = network_tf
            self._last_ntf = network_tf
            self._evict(self._network_tfs, self._max_network_entries)
        if self.backend == "atom":
            self._ensure_atoms(network_tf, content, snapshot)
        self._sync_pool_metrics()
        return network_tf

    def _farm_compile(
        self, snapshot: NetworkSnapshot, switches: list
    ) -> Dict[str, SwitchTransferFunction]:
        """Per-switch compilation on the process farm (``compile`` spec).

        Parent-cache hits never leave the process; the misses ship as
        content-addressed jobs — a worker that compiled the same
        (switch, rules-hash, ports) key before answers from its warm
        artifact cache without receiving the rules again.
        """
        tfs: Dict[str, SwitchTransferFunction] = {}
        jobs: list = []
        payloads: Dict[tuple, object] = {}
        for switch in switches:
            ports = tuple(snapshot.switch_ports.get(switch, ()))
            key = (switch, snapshot.switch_content_hash(switch), ports)
            with self._lock:
                cached = self._switch_tfs.get(key)
                if cached is not None:
                    self.metrics.switch_tf_hits += 1
                    self._switch_tfs.move_to_end(key)
                    tfs[switch] = cached
                    continue
                self.metrics.switch_tf_misses += 1
            jobs.append((switch, key))
            payloads[("tf",) + key] = snapshot.rules.get(switch, ())
        if not jobs:
            return tfs
        try:
            compiled = self._pool.farm_compile(
                [("tf",) + key for _switch, key in jobs], payloads
            )
        except (FarmError, FarmTaskError) as exc:
            # Loud fallback: the batch reruns locally (still correct,
            # just not multi-core) and the downgrade is counted.
            self._pool._loud_fallback(f"compile farm batch failed: {exc!r}")
            compiled = [
                compile_switch_tf(
                    switch,
                    snapshot.rules.get(switch, ()),
                    snapshot.switch_ports.get(switch, ()),
                )
                for switch, _key in jobs
            ]
        with self._lock:
            for (switch, key), tf in zip(jobs, compiled):
                self._switch_tfs[key] = tf
                tfs[switch] = tf
            self._evict(self._switch_tfs, self._max_switch_entries)
        return tfs

    def _matrix_farm_spec(
        self,
        snapshot: NetworkSnapshot,
        content: str,
        network_tf: NetworkTransferFunction,
        space: AtomSpace,
        *,
        predecessor: Optional["_AtomState"] = None,
        touched: Iterable[str] = (),
    ) -> dict:
        """Content-addressed part payload for farm-side matrix mirrors.

        Part keys reuse the engine's own cache currency — the PR-1
        per-switch (rules hash, ports) signatures, the atom-space
        signature, a topology digest — so a worker that served the
        previous snapshot version already holds every unchanged part
        and the batch ships only the delta.  Naming the ``predecessor``
        (repair path) lets workers patch their mirror via
        ``reuse_from``/``touched`` instead of recompiling the network.
        """
        topo_digest = hashlib.sha256(
            repr(
                (
                    sorted(network_tf.wiring.items()),
                    sorted(
                        (s, tuple(sorted(p)))
                        for s, p in network_tf.edge_ports.items()
                    ),
                )
            ).encode()
        ).hexdigest()[:16]
        part_keys = [("topo", topo_digest), ("space", space.signature)]
        payloads: Dict[tuple, object] = {
            part_keys[0]: (network_tf.wiring, network_tf.edge_ports),
            part_keys[1]: space,
        }
        for switch in sorted(snapshot.rules):
            key = (
                "tf",
                switch,
                snapshot.switch_content_hash(switch),
                tuple(snapshot.switch_ports.get(switch, ())),
            )
            part_keys.append(key)
            payloads[key] = snapshot.rules.get(switch, ())
        spec = {
            "version": f"{content}:{space.signature}",
            "part_keys": tuple(part_keys),
            "payloads": payloads,
        }
        if predecessor is not None:
            spec["prev_version"] = (
                f"{predecessor.content}:{predecessor.space.signature}"
            )
            spec["touched"] = tuple(sorted(touched))
        return spec

    def _sync_pool_metrics(self) -> None:
        """Mirror pool/farm counters into :class:`EngineMetrics`."""
        counters = self._pool.farm_counters
        m = self.metrics
        m.pool_fallbacks = (
            self._pool.process_fallbacks + self._thread_pool.process_fallbacks
        )
        m.farm_batches = counters["batches"]
        m.farm_tasks = counters["tasks"]
        m.farm_warm_hits = counters["warm_hits"]
        m.farm_mirror_reuses = counters["mirror_reuses"]
        m.farm_bytes_shipped = counters["bytes_shipped"]
        m.farm_parts_shipped = counters["parts_shipped"]
        m.farm_parts_cached = counters["parts_cached"]
        m.farm_worker_restarts = counters["worker_restarts"]
        farm = self._pool._farm
        if farm is not None:
            # Queue depth is a farm-global gauge (the farm is shared
            # between pools of the same width by design).
            m.farm_queue_depth_peak = farm.metrics.queue_depth_peak

    def close(self) -> None:
        """Release the persistent executors (idempotent).

        Analyzer pools cached on this engine are closed too; shared
        farm workers stay up for other engines and are reaped atexit.
        A closed engine still answers every query — fan-outs degrade to
        the inline serial loop.
        """
        self._pool.close()
        self._thread_pool.close()
        with self._lock:
            analyzers = list(self._analyzers.values())
        for analyzer in analyzers:
            analyzer.close()

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def analyzer(
        self, snapshot: NetworkSnapshot, *, collect_drops: bool = False
    ) -> ReachabilityAnalyzer:
        key = (self.content_hash(snapshot), collect_drops)
        with self._lock:
            analyzer = self._analyzers.get(key)
            if analyzer is not None:
                self._analyzers.move_to_end(key)
                return analyzer
        analyzer = ReachabilityAnalyzer(
            self.compile(snapshot),
            collect_drops=collect_drops,
            workers=self.workers,
            pool_mode=self.pool_mode,
        )
        with self._lock:
            self._analyzers[key] = analyzer
            self._evict(self._analyzers, self._max_network_entries)
        return analyzer

    def analyze(
        self,
        snapshot: NetworkSnapshot,
        switch: str,
        port: int,
        space: HeaderSpace,
        *,
        collect_drops: bool = False,
    ) -> ReachabilityResult:
        """Memoized forward propagation from one ingress port.

        The returned :class:`ReachabilityResult` is shared between
        callers — treat it as read-only.
        """
        key = (
            self.content_hash(snapshot),
            switch,
            port,
            space.fingerprint(),
            collect_drops,
        )
        with self._lock:
            cached = self._reach.get(key)
            if cached is not None:
                self.metrics.reach_hits += 1
                self._reach.move_to_end(key)
                return cached
            self.metrics.reach_misses += 1
        analyzer = self.analyzer(snapshot, collect_drops=collect_drops)
        result = analyzer.analyze(switch, port, space)
        with self._lock:
            self._reach[key] = result
            self._evict(self._reach, self._max_reach_entries)
            if result.worklist_peak > self.metrics.worklist_peak:
                self.metrics.worklist_peak = result.worklist_peak
            self._sample_kernel_stats(analyzer.network_tf)
        return result

    def analyze_batch(
        self,
        snapshot: NetworkSnapshot,
        jobs: Iterable[Tuple[str, int, HeaderSpace]],
        *,
        collect_drops: bool = False,
    ) -> list:
        """Memoized propagation for many ingress jobs in one fan-out.

        ``jobs`` is a sequence of ``(switch, port, space)`` triples; the
        result list is positionally aligned with it.  Duplicate jobs
        (same ingress and space fingerprint) are computed once, and the
        distinct misses fan out over the engine's worker pool — the
        serving tier's "batch compatible matrix-row lookups" primitive.
        Results land in the shared memo table, so a batch is exactly as
        correct (and as cached) as the equivalent loop of
        :meth:`analyze` calls, merged in input order for determinism.
        """
        jobs = list(jobs)
        self.metrics.batched_analyses += 1
        self.metrics.batch_jobs += len(jobs)
        unique: "OrderedDict[tuple, Tuple[str, int, HeaderSpace]]" = OrderedDict()
        for switch, port, space in jobs:
            key = (switch, port, space.fingerprint())
            if key not in unique:
                unique[key] = (switch, port, space)
        self.metrics.batch_unique_jobs += len(unique)
        distinct = list(unique.values())
        if self.workers > 1 and len(distinct) > 1:
            self.metrics.pool_tasks += len(distinct)
            # Batch jobs run on the thread pool even in process mode:
            # each result must land in the engine's shared memo table,
            # and the closure over ``self`` is unpicklable anyway.
            results = self._thread_pool.map(
                lambda _ctx, job: self.analyze(
                    snapshot, job[0], job[1], job[2], collect_drops=collect_drops
                ),
                None,
                distinct,
            )
        else:
            results = [
                self.analyze(
                    snapshot, switch, port, space, collect_drops=collect_drops
                )
                for switch, port, space in distinct
            ]
        by_key = dict(zip(unique.keys(), results))
        self._sync_pool_metrics()
        return [
            by_key[(switch, port, space.fingerprint())]
            for switch, port, space in jobs
        ]

    def sources_reaching(
        self,
        snapshot: NetworkSnapshot,
        target_switch: str,
        target_port: int,
        space: HeaderSpace,
        *,
        candidate_ports: Optional[Tuple[PortRef, ...]] = None,
    ) -> Dict[PortRef, HeaderSpace]:
        """Inverse reachability, with each candidate propagation memoized.

        With ``workers > 1`` the candidate propagations fan out over the
        engine's thread pool; each one still lands in the shared memo
        table, and the sources map is merged in candidate order, so the
        answer is identical for any worker count.
        """
        analyzer = self.analyzer(snapshot)
        candidates = candidate_ports or analyzer.network_tf.all_edge_ports()
        if self.workers > 1 and len(candidates) > 1:
            self.metrics.parallel_sweeps += 1
            self.metrics.pool_tasks += len(candidates)
        return analyzer.sources_reaching(
            target_switch,
            target_port,
            space,
            candidate_ports=candidates,
            analyze_fn=lambda sw, p, sp: self.analyze(snapshot, sw, p, sp),
            workers=self.workers,
            pool_mode="thread",
        )

    def _sample_kernel_stats(self, network_tf: NetworkTransferFunction) -> None:
        """Refresh kernel telemetry from the most recently analysed NTF.

        Switch TF counters are lifetime totals for the shared compiled
        artifacts, so the sample is monotone for a single network under
        churn; after swapping to an unrelated network the counters
        restart from that network's totals.
        """
        totals = network_tf.kernel_stats()
        self.metrics.kernel_rules_checked = totals.get("rules_checked", 0)
        self.metrics.kernel_rules_skipped = totals.get("rules_skipped", 0)
        self.metrics.kernel_early_exits = totals.get("early_exits", 0)
        self.metrics.kernel_index_hits = totals.get("index_hits", 0)

    # ------------------------------------------------------------------
    # Atomic-predicate backend (E19)
    # ------------------------------------------------------------------

    def seed_atoms(self, wildcards: Iterable[Wildcard]) -> None:
        """Register extra predicates the atom universe must refine.

        The verifier seeds the spaces its queries are built from (host
        addresses, traffic-scope constraints, the interception punt
        space); anything seeded encodes exactly and is served from the
        matrix, anything else falls back per query.  Seeding changes the
        seed digest, which is part of the artifact key — so a grown seed
        set can never produce a stale cache hit, only a rebuild.
        """
        merged = set(self._atom_seeds)
        merged.update(wildcards)
        if len(merged) == len(self._atom_seeds):
            return
        with self._lock:
            self._atom_seeds = tuple(
                sorted(merged, key=lambda w: (w.value, w.mask))
            )
            self._atom_seed_key = constraint_seed_hash(self._atom_seeds)

    def atom_artifacts(
        self, snapshot: NetworkSnapshot
    ) -> Optional[Tuple[AtomSpace, ReachabilityMatrix]]:
        """(atom space, all-ingress matrix) for a snapshot, or None.

        ``None`` when the backend is ``wildcard`` or the universe
        overflowed the atom limit — callers then use the wildcard path.
        Compilation (and hence the eager matrix build) happens via
        :meth:`compile`, so the first query on a new snapshot version
        pays the build and every later query is a lookup.
        """
        if self.backend != "atom":
            return None
        content = self.content_hash(snapshot)
        self.compile(snapshot)  # ensures the artifact exists
        key = ("atoms", self._atom_seed_key, content)
        with self._lock:
            built = self._artifacts.get(key)
        if built is None or built[0] is None:
            return None
        return built  # type: ignore[return-value]

    def atom_rows(
        self, snapshot: NetworkSnapshot, ingresses: Iterable[PortRef]
    ) -> Optional[Tuple[AtomSpace, ReachabilityMatrix]]:
        """Matrix rows for arbitrary ingress ports, or None.

        The all-ingress matrix precomputes rows for *edge* ports only;
        a federated query enters a domain at an inter-domain boundary
        port, which a domain-restricted snapshot classifies as
        "unbound" (the cross-domain wire is not in its wiring plan).
        This is the boundary-port interface: any requested ingress
        without a row is propagated through the cached
        :class:`~repro.hsa.atoms.AtomNetwork` and the row is added to
        the cached matrix, so each (domain snapshot, boundary port)
        pays at most one propagation.  Returns ``None`` exactly when
        :meth:`atom_artifacts` does (wildcard backend / atom overflow).

        Rows added here are reachable via
        :meth:`~repro.hsa.atoms.ReachabilityMatrix.row` but do not join
        :meth:`~repro.hsa.atoms.ReachabilityMatrix.ingresses`, so
        column scans over edge ingresses (reaching-sources) are
        unaffected.
        """
        artifacts = self.atom_artifacts(snapshot)
        if artifacts is None:
            return None
        space, matrix = artifacts
        missing = [ref for ref in ingresses if matrix.row(ref) is None]
        if not missing:
            return artifacts
        content = self.content_hash(snapshot)
        state_key = (self._atom_seed_key, content)
        with self._lock:
            state = self._atom_states.get(state_key)
        if (
            state is not None
            and state.matrix is matrix
            and state.atom_network is not None
        ):
            atom_network = state.atom_network
        elif state is not None and state.matrix is matrix:
            # Farm-built state: the matrix rows live here but the
            # compiled pipelines live on the workers.  Boundary rows
            # need a parent-side network; build one once and keep it on
            # the state so later boundary rows are lookups again.
            network_tf = self.compile(snapshot)
            atom_network = AtomNetwork(network_tf, space)
            state.atom_network = atom_network
        else:
            # Predecessor state evicted while the artifact survived:
            # rebuild the atom network once (content-addressed pieces,
            # so only the pipeline wrappers are recompiled) and re-admit
            # it so later boundary rows are lookups again.
            network_tf = self.compile(snapshot)
            atom_network = AtomNetwork(network_tf, space)
            state = _AtomState(
                content=content,
                network_tf=network_tf,
                switch_sigs={
                    name: (
                        snapshot.switch_content_hash(name),
                        tuple(snapshot.switch_ports.get(name, ())),
                    )
                    for name in snapshot.rules
                },
                space=space,
                matrix=matrix,
                atom_network=atom_network,
            )
            with self._lock:
                self._atom_states[state_key] = state
                self._evict(self._atom_states, self._max_artifact_entries)
        for ref in missing:
            row = atom_network.propagate(ref[0], ref[1])
            with self._lock:
                # A concurrent query may have raced us to the same row;
                # first write wins and both are equivalent.
                matrix._rows.setdefault(ref, row)
                self.metrics.atom_boundary_rows += 1
        return space, matrix

    def _ensure_atoms(
        self,
        network_tf: NetworkTransferFunction,
        content: str,
        snapshot: NetworkSnapshot,
    ) -> None:
        """Build, repair, or re-hit the atom universe + matrix.

        Stored in the generic artifact cache under a key that includes
        the seed digest, so PR-1 delta invalidation (wiring changes
        clear artifacts; rule churn changes the content hash) applies
        unchanged.  Overflowed universes are cached as ``(None, None)``
        so the limit check is paid once per snapshot, not per query.

        On a miss with :attr:`matrix_repair` enabled, the engine first
        looks for a predecessor ``("atoms", seed_key, old_hash)`` state
        whose wiring matches and whose per-switch signature diff stays
        under :attr:`repair_max_fraction` — if found, the new matrix is
        produced by :func:`repair_reachability_matrix` (re-propagating
        only rows that traverse a touched switch) instead of a full
        rebuild; an inexact cell renumbering falls back cleanly.
        """
        key = ("atoms", self._atom_seed_key, content)
        state_key = (self._atom_seed_key, content)
        with self._lock:
            cached = self._artifacts.get(key)
            if cached is not None:
                self.metrics.atom_intern_hits += 1
                self._artifacts.move_to_end(key)
                if state_key in self._atom_states:
                    self._atom_states.move_to_end(state_key)
                return
        constraints = list(network_tf.atom_constraints())
        constraints.extend(self._atom_seeds)
        space = GLOBAL_ATOM_TABLE.space_for(constraints)
        state: Optional[_AtomState] = None
        if space is None:
            self.metrics.atom_overflows += 1
            built: Tuple[Optional[AtomSpace], Optional[ReachabilityMatrix]] = (
                None,
                None,
            )
        else:
            self.metrics.atom_space_builds += 1
            self.metrics.atom_count = space.n_atoms
            switch_sigs = {
                name: (
                    snapshot.switch_content_hash(name),
                    tuple(snapshot.switch_ports.get(name, ())),
                )
                for name in snapshot.rules
            }
            matrix: Optional[ReachabilityMatrix] = None
            atom_network: Optional[AtomNetwork] = None
            use_farm = self._pool.is_process
            candidate = self._repair_candidate(network_tf, switch_sigs)
            if candidate is not None:
                predecessor, touched = candidate
                farm_spec = (
                    self._matrix_farm_spec(
                        snapshot,
                        content,
                        network_tf,
                        space,
                        predecessor=predecessor,
                        touched=touched,
                    )
                    if use_farm
                    else None
                )
                try:
                    matrix, atom_network, stats = repair_reachability_matrix(
                        predecessor.matrix,
                        network_tf,
                        space,
                        touched,
                        previous_network=predecessor.atom_network,
                        workers=self.workers,
                        pool=self._pool,
                        farm_spec=farm_spec,
                    )
                except RemapInexact:
                    self.metrics.matrix_repair_fallbacks += 1
                    matrix = None
                else:
                    self.metrics.matrix_repairs += 1
                    self.metrics.rows_repaired += stats.rows_repaired
                    self.metrics.rows_reused += stats.rows_reused
                    self.metrics.atoms_split += stats.atoms_split
            elif self.matrix_repair and self._atom_states:
                # A predecessor existed but was ineligible (wiring
                # changed or the delta touched too much of the network).
                self.metrics.matrix_repair_fallbacks += 1
            if matrix is None:
                if use_farm:
                    # Workers assemble the pipelines as versioned
                    # mirrors; the parent never compiles an AtomNetwork
                    # on this path (boundary rows rebuild one lazily).
                    farm_spec = self._matrix_farm_spec(
                        snapshot, content, network_tf, space
                    )
                else:
                    farm_spec = None
                    atom_network = AtomNetwork(network_tf, space)
                matrix = build_reachability_matrix(
                    network_tf,
                    space,
                    workers=self.workers,
                    atom_network=atom_network,
                    pool=self._pool,
                    farm_spec=farm_spec,
                )
                self.metrics.atom_matrix_builds += 1
            self.metrics.atom_matrix_expansions = matrix.expansions
            built = (space, matrix)
            state = _AtomState(
                content=content,
                network_tf=network_tf,
                switch_sigs=switch_sigs,
                space=space,
                matrix=matrix,
                atom_network=atom_network,
            )
        with self._lock:
            self._artifacts[key] = built
            self._evict(self._artifacts, self._max_artifact_entries)
            if state is not None:
                self._atom_states[state_key] = state
                self._evict(self._atom_states, self._max_artifact_entries)

    def _repair_candidate(
        self,
        network_tf: NetworkTransferFunction,
        switch_sigs: Dict[str, tuple],
    ) -> Optional[Tuple[_AtomState, frozenset]]:
        """The best predecessor to repair from, with its touched set.

        Candidates are scanned most-recent first among states built
        under the current seed key; a candidate qualifies when its
        wiring plan and edge-port sets are unchanged (repair never
        handles topology surgery) and the per-switch signature diff
        stays within :attr:`repair_max_fraction` of the network.
        """
        if not self.matrix_repair:
            return None
        with self._lock:
            states = [
                state
                for (seed_key, _content), state in reversed(
                    self._atom_states.items()
                )
                if seed_key == self._atom_seed_key
            ]
        total = max(len(network_tf.transfer_functions), 1)
        for state in states:
            previous = state.network_tf
            if (
                previous.wiring != network_tf.wiring
                or previous.edge_ports != network_tf.edge_ports
            ):
                continue
            names = set(switch_sigs) | set(state.switch_sigs)
            touched = frozenset(
                name
                for name in names
                if state.switch_sigs.get(name) != switch_sigs.get(name)
            )
            if len(touched) > self.repair_max_fraction * total:
                continue
            return state, touched
        return None

    # ------------------------------------------------------------------
    # Generic derived artifacts (emulation backend, etc.)
    # ------------------------------------------------------------------

    def artifact(
        self,
        kind: str,
        snapshot: NetworkSnapshot,
        build: Callable[[NetworkSnapshot], object],
    ):
        """A content-addressed cache for non-HSA snapshot compilations.

        The emulation backend stores its
        :class:`~repro.core.emulation.ShadowNetwork` replicas here, so
        HSA and emulation share one invalidation discipline.
        """
        key = (kind, self.content_hash(snapshot))
        with self._lock:
            cached = self._artifacts.get(key)
            if cached is not None:
                self.metrics.artifact_hits += 1
                self._artifacts.move_to_end(key)
                return cached
            self.metrics.artifact_misses += 1
        built = build(snapshot)
        with self._lock:
            self._artifacts[key] = built
            self._evict(self._artifacts, self._max_artifact_entries)
        return built

    # ------------------------------------------------------------------
    # Identity & invalidation
    # ------------------------------------------------------------------

    def content_hash(self, snapshot: NetworkSnapshot) -> str:
        self.metrics.content_hashes += 1
        return snapshot.content_hash()

    def is_compiled(self, content: str) -> bool:
        """Whether serving ``content`` costs only lookups, no compile.

        The scheduler's stale-but-honest fast path asks this before
        routing a batch at a mid-churn snapshot: ``True`` means the
        network transfer function (and, on the atom backend, the
        (space, matrix) artifact) is already cached, so serving fresh
        is cheap; ``False`` means the first query would pay a compile.
        """
        with self._lock:
            if content not in self._network_tfs:
                return False
            if self.backend != "atom":
                return True
            return ("atoms", self._atom_seed_key, content) in self._artifacts

    def apply_delta(self, delta: SnapshotDelta) -> int:
        """Evict cache entries the delta proves stale.

        Per-switch compiled artifacts for switches with rule churn are
        superseded (the content-addressed key guarantees a changed
        switch misses anyway; eviction keeps the cache from accumulating
        every historical version under flapping attacks).  Returns the
        number of entries invalidated.
        """
        self.metrics.deltas_applied += 1
        if delta.is_empty():
            return 0
        evicted = 0
        with self._lock:
            if delta.changed_switches:
                stale = [
                    key
                    for key in self._switch_tfs
                    if key[0] in delta.changed_switches
                ]
                for key in stale:
                    del self._switch_tfs[key]
                    evicted += 1
            if delta.wiring_changed:
                # The shared role map is wrong for every cached NTF, and
                # matrix repair never handles topology surgery.
                evicted += len(self._network_tfs) + len(self._reach)
                self._network_tfs.clear()
                self._analyzers.clear()
                self._reach.clear()
                self._artifacts.clear()
                self._atom_states.clear()
                self._last_ntf = None
            self.metrics.delta_invalidations += evicted
        return evicted

    def clear(self) -> None:
        """Drop every cached artifact (counters are preserved)."""
        with self._lock:
            self._switch_tfs.clear()
            self._network_tfs.clear()
            self._analyzers.clear()
            self._reach.clear()
            self._artifacts.clear()
            self._atom_states.clear()
            self._last_ntf = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def pin_content(self, content: str) -> None:
        """Exempt every artifact of ``content`` from cache eviction."""
        with self._lock:
            self._pinned.add(content)

    def unpin_content(self, content: str) -> None:
        with self._lock:
            self._pinned.discard(content)

    def _key_pinned(self, key: object) -> bool:
        if isinstance(key, str):
            return key in self._pinned
        if isinstance(key, tuple):
            return any(
                isinstance(part, str) and part in self._pinned for part in key
            )
        return False

    def _evict(self, cache: OrderedDict, limit: int) -> None:
        if len(cache) <= limit:
            return
        if not self._pinned:
            while len(cache) > limit:
                cache.popitem(last=False)
            return
        # Oldest-first, skipping pinned keys; if only pinned entries
        # remain the cache is allowed to overshoot (bounded by the pin
        # set, which the gate keeps at one live content hash).
        for key in list(cache):
            if len(cache) <= limit:
                break
            if self._key_pinned(key):
                continue
            del cache[key]
