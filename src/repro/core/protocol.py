"""Wire messages between clients, hosts, and the RVaaS controller.

All client-to-service traffic is hybrid-encrypted to the RVaaS public
key (the provider cannot read queries, §III: "the provider should not
learn about their queries"), and all service-to-client responses are
signed (clients "verify authenticity of the results", §IV-A3).  Host
authentication replies are signed with per-host keys registered at
client onboarding.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.crypto.cipher import HybridCiphertext, hybrid_decrypt, hybrid_encrypt
from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.sign import SignatureError, sign, verify
from repro.core.queries import Answer, Query


@dataclass(frozen=True)
class HostRecord:
    """One of a client's machines: identity, address, and access point."""

    name: str
    ip: int  # raw IPv4 int
    switch: str
    port: int
    public_key: PublicKey

    @property
    def access_point(self) -> tuple[str, int]:
        return (self.switch, self.port)


@dataclass(frozen=True)
class ClientRegistration:
    """What RVaaS knows about one onboarded client.

    The host records come from the client's service contract; they are
    the *declared* state the data plane is verified against.
    Registration happens out of band (contract signing), so it is
    trustworthy even when the provider's control plane is not.
    """

    name: str
    public_key: PublicKey
    hosts: Tuple[HostRecord, ...]

    @property
    def access_points(self) -> frozenset[tuple[str, int]]:
        return frozenset(h.access_point for h in self.hosts)

    @property
    def host_ips(self) -> Tuple[int, ...]:
        return tuple(h.ip for h in self.hosts)

    def key_for_host(self, host: str) -> Optional[PublicKey]:
        for record in self.hosts:
            if record.name == host:
                return record.public_key
        return None

    def host_at(self, switch: str, port: int) -> Optional[HostRecord]:
        for record in self.hosts:
            if record.access_point == (switch, port):
                return record
        return None


@dataclass(frozen=True)
class QueryRequest:
    """The plaintext a client encrypts toward RVaaS."""

    client: str
    query: Query
    nonce: int
    sent_at: float


@dataclass(frozen=True)
class SealedRequest:
    """What actually travels in the magic-header packet (Fig. 1, step 1)."""

    client: str  # routing hint only; authenticated via the signature
    ciphertext: HybridCiphertext
    signature: int  # client's signature over the ciphertext body


@dataclass(frozen=True)
class FreshnessReport:
    """How stale the evidence behind an answer might be (ISSUE 3).

    Under lossy control channels RVaaS degrades honestly instead of
    lying: every signed reply states how old the snapshot is and which
    switches are currently degraded or quarantined, so the client can
    decide whether "isolated, as of 4 seconds ago, except switch e3
    is unreachable" is good enough.
    """

    #: seconds between the snapshot being frozen and the reply
    snapshot_age: float
    #: worst per-switch staleness: seconds since the least recently
    #: confirmed switch was last heard from (inf = never)
    max_switch_staleness: float
    degraded_switches: Tuple[str, ...] = ()
    lost_switches: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when any part of the evidence is suspect."""
        return bool(self.degraded_switches or self.lost_switches)


#: Response statuses (ISSUE 7).  ``OVERLOADED`` and ``RATE_LIMITED``
#: replies carry ``answer=None`` plus the freshest report the service
#: has — an explicit, signed refusal instead of a silent drop, so a
#: shed client can distinguish overload from an attack on the channel.
STATUS_OK = "ok"
STATUS_OVERLOADED = "overloaded"
STATUS_RATE_LIMITED = "rate-limited"


@dataclass(frozen=True)
class QueryResponse:
    """The plaintext RVaaS signs and encrypts back to the client."""

    client: str
    nonce: int
    answer: Optional[Answer]
    snapshot_version: int
    answered_at: float
    auth_requests_issued: int = 0
    auth_replies_received: int = 0
    #: staleness disclosure; None only for pre-ISSUE-3 peers
    freshness: Optional[FreshnessReport] = None
    #: serving status; anything but STATUS_OK means ``answer`` is None
    #: and the client should retry after backing off
    status: str = STATUS_OK


@dataclass(frozen=True)
class SealedResponse:
    """What travels in the integrity-reply packet (Fig. 2, step 4)."""

    ciphertext: HybridCiphertext
    signature: int  # RVaaS signature over the plaintext response bytes


@dataclass(frozen=True)
class ViolationNotice:
    """A proactive alert RVaaS pushes when a watched invariant breaks.

    Extension beyond the paper's query/response interface, in the spirit
    of the real-time tools it cites (Veriflow): clients subscribe to an
    invariant (currently isolation) and are notified in-band the moment
    a configuration change violates it, rather than on their next poll.
    """

    client: str
    invariant: str  # "isolation"
    raised_at: float
    snapshot_version: int
    details: str
    violating_endpoints: Tuple[object, ...] = ()


@dataclass(frozen=True)
class SealedNotice:
    """Encrypted, signed wrapper for a pushed violation notice."""

    ciphertext: HybridCiphertext
    signature: int


def seal_notice(
    notice: ViolationNotice,
    client_key: PublicKey,
    rvaas_key: PrivateKey,
    rng,
) -> SealedNotice:
    plaintext = pickle.dumps(notice)
    return SealedNotice(
        ciphertext=hybrid_encrypt(plaintext, client_key, rng),
        signature=sign(plaintext, rvaas_key),
    )


def unseal_notice(
    sealed: SealedNotice,
    client_key: PrivateKey,
    rvaas_public: PublicKey,
) -> ViolationNotice:
    plaintext = hybrid_decrypt(sealed.ciphertext, client_key)
    if not verify(plaintext, sealed.signature, rvaas_public):
        raise SignatureError("violation notice failed RVaaS signature check")
    notice = pickle.loads(plaintext)
    if not isinstance(notice, ViolationNotice):
        raise ValueError("sealed payload is not a ViolationNotice")
    return notice


@dataclass(frozen=True)
class AuthChallenge:
    """The Auth request packet RVaaS injects via Packet-Out (Fig. 1, step 4)."""

    nonce: int
    round_id: int
    service: str
    signature: int = 0  # RVaaS signature so hosts answer only genuine probes

    def statement(self) -> tuple:
        return ("auth-challenge", self.nonce, self.round_id, self.service)


@dataclass(frozen=True)
class AuthReply:
    """A host's signed liveness proof (Fig. 2, step 1)."""

    host: str
    client: str
    nonce: int
    round_id: int
    signature: int = 0

    def statement(self) -> tuple:
        return ("auth-reply", self.host, self.client, self.nonce, self.round_id)


# ----------------------------------------------------------------------
# Sealing helpers
# ----------------------------------------------------------------------


def seal_request(
    request: QueryRequest,
    rvaas_key: PublicKey,
    client_key: PrivateKey,
    rng,
) -> SealedRequest:
    """Encrypt a query to RVaaS and sign the ciphertext."""
    plaintext = pickle.dumps(request)
    ciphertext = hybrid_encrypt(plaintext, rvaas_key, rng)
    return SealedRequest(
        client=request.client,
        ciphertext=ciphertext,
        signature=sign(ciphertext.body, client_key),
    )


def unseal_request(
    sealed: SealedRequest,
    rvaas_key: PrivateKey,
    client_public: PublicKey,
) -> QueryRequest:
    """Verify the client signature and decrypt; raises on any failure."""
    if not verify(sealed.ciphertext.body, sealed.signature, client_public):
        raise SignatureError(f"query from {sealed.client!r}: bad client signature")
    plaintext = hybrid_decrypt(sealed.ciphertext, rvaas_key)
    request = pickle.loads(plaintext)
    if not isinstance(request, QueryRequest):
        raise ValueError("sealed payload is not a QueryRequest")
    if request.client != sealed.client:
        raise SignatureError("client name mismatch between envelope and payload")
    return request


def seal_response(
    response: QueryResponse,
    client_key: PublicKey,
    rvaas_key: PrivateKey,
    rng,
) -> SealedResponse:
    """Sign the response plaintext and encrypt it to the client."""
    plaintext = pickle.dumps(response)
    return SealedResponse(
        ciphertext=hybrid_encrypt(plaintext, client_key, rng),
        signature=sign(plaintext, rvaas_key),
    )


def unseal_response(
    sealed: SealedResponse,
    client_key: PrivateKey,
    rvaas_public: PublicKey,
) -> QueryResponse:
    """Decrypt and verify the RVaaS signature; raises on any failure."""
    plaintext = hybrid_decrypt(sealed.ciphertext, client_key)
    if not verify(plaintext, sealed.signature, rvaas_public):
        raise SignatureError("integrity reply failed RVaaS signature check")
    response = pickle.loads(plaintext)
    if not isinstance(response, QueryResponse):
        raise ValueError("sealed payload is not a QueryResponse")
    return response


def sign_challenge(challenge: AuthChallenge, rvaas_key: PrivateKey) -> AuthChallenge:
    from dataclasses import replace

    return replace(challenge, signature=sign(challenge.statement(), rvaas_key))


def verify_challenge(challenge: AuthChallenge, rvaas_public: PublicKey) -> bool:
    return verify(challenge.statement(), challenge.signature, rvaas_public)


def sign_auth_reply(reply: AuthReply, host_key: PrivateKey) -> AuthReply:
    from dataclasses import replace

    return replace(reply, signature=sign(reply.statement(), host_key))


def verify_auth_reply(reply: AuthReply, host_public: PublicKey) -> bool:
    return verify(reply.statement(), reply.signature, host_public)
