"""Emulation-based verification: the paper's alternative to HSA.

§IV-A2: "the RVaaS controller may perform Header Space Analysis, or
simply **emulate the network** based on the current configuration."

This module implements that second backend.  A :class:`ShadowNetwork`
instantiates a throwaway copy of the data plane *from a configuration
snapshot* — fresh switches, the wiring plan, probe endpoints at every
edge port — and replays the snapshot's rules into it.  The
:class:`EmulationVerifier` then answers reachability questions by
injecting concrete probe packets and observing where they emerge.

Relative to HSA the emulation backend is:

* **sound but not complete** — a probe that arrives proves
  reachability; absence of arrival only covers the probed headers, not
  the whole header space.  (HSA is exact.)
* cheaper per question when the interesting header set is small, and
  trivially parallel.

Because both backends answer the same questions from the same snapshot,
they also serve as differential tests of one another — see
``tests/test_emulation_differential.py``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.engine import VerificationEngine
from repro.core.protocol import ClientRegistration
from repro.core.queries import Endpoint, TrafficScope
from repro.core.snapshot import NetworkSnapshot
from repro.hsa.network_tf import PortRef
from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.constants import IP_PROTO_UDP
from repro.netlib.packet import Packet, udp_packet
from repro.openflow.flowtable import FlowEntry
from repro.openflow.switch import OpenFlowSwitch

#: Link latency used inside shadow networks (value is irrelevant to
#: reachability; it only orders events).
_SHADOW_LATENCY = 0.0001


@dataclass
class ProbeResult:
    """Where the probes injected at one ingress emerged."""

    ingress: PortRef
    arrivals: Dict[PortRef, List[Packet]] = field(default_factory=dict)
    controller_copies: int = 0
    probes_sent: int = 0

    def reached_ports(self) -> frozenset[PortRef]:
        return frozenset(self.arrivals)


class ShadowNetwork:
    """A disposable data-plane replica built from a snapshot.

    No hosts, no controllers — just switches wired per the snapshot's
    wiring plan, with collection buckets on every edge port and a
    counter for control-plane punts.
    """

    def __init__(self, snapshot: NetworkSnapshot) -> None:
        from repro.dataplane.simulator import Simulator

        self.snapshot = snapshot
        self.sim = Simulator(seed=0)
        self.switches: Dict[str, OpenFlowSwitch] = {}
        self.arrivals: Dict[PortRef, List[Packet]] = {}
        self.controller_copies = 0
        self._meters_by_switch: Dict[str, list] = {}
        for meter in snapshot.meters:
            self._meters_by_switch.setdefault(meter.switch, []).append(meter)
        self._build()

    def _build(self) -> None:
        wiring = self.snapshot.wiring
        for name, ports in self.snapshot.switch_ports.items():
            switch = OpenFlowSwitch(
                name,
                dpid=abs(hash(name)) % (1 << 32),
                clock=lambda: self.sim.now,
            )
            edge = self.snapshot.edge_ports.get(name, frozenset())
            for port in ports:
                if (name, port) in wiring:
                    kind = "link"
                elif port in edge:
                    kind = "host"
                else:
                    kind = "unbound"
                switch.add_port(port, kind=kind)
            switch.transmit = self._on_transmit
            self.switches[name] = switch

        for name, rules in self.snapshot.rules.items():
            switch = self.switches.get(name)
            if switch is None:
                continue
            max_table = max((rule.table_id for rule in rules), default=0)
            while len(switch.tables) <= max_table:
                from repro.openflow.flowtable import FlowTable

                switch.tables.append(FlowTable(table_id=len(switch.tables)))
            for rule in rules:
                switch.tables[rule.table_id].add(
                    FlowEntry(
                        match=rule.match,
                        actions=tuple(rule.actions),
                        priority=rule.priority,
                        cookie=rule.cookie,
                    )
                )
        self._install_meters()

        # Shadow switches have no control channels; count punts instead
        # of delivering Packet-Ins.
        for switch in self.switches.values():
            switch._send_packet_in = (  # type: ignore[method-assign]
                lambda pkt, in_port, table_id: self._note_punt()
            )

    def _install_meters(self) -> None:
        """(Re)install every snapshot meter with a full token bucket."""
        from repro.openflow.meters import MeterTable

        for name, meters in self._meters_by_switch.items():
            switch = self.switches.get(name)
            if switch is None:
                continue
            switch.meters = MeterTable()
            for meter in meters:
                switch.meters.add(meter.meter_id, meter.band, now=self.sim.now)

    def reset_dynamic_state(self) -> None:
        """Restore pristine per-round state on a (possibly reused) replica.

        Replicas are cached content-addressed in the verification
        engine, so the same ShadowNetwork serves many probe rounds and
        clients while the simulator clock keeps advancing.  Everything
        configuration-derived (switches, tables, wiring) is immutable
        across rounds, but meter token buckets drain and refill against
        the clock — re-anchoring them at the current virtual time with a
        full burst makes a warm replica answer exactly like a freshly
        built one.
        """
        self._install_meters()
        self.arrivals = {}
        self.controller_copies = 0

    # ------------------------------------------------------------------
    # Fabric
    # ------------------------------------------------------------------

    def _on_transmit(
        self, switch: OpenFlowSwitch, out_port: int, packet: Packet
    ) -> None:
        ref = (switch.name, out_port)
        peer = self.snapshot.wiring.get(ref)
        if peer is not None:
            peer_switch, peer_port = peer
            target = self.switches[peer_switch]
            self.sim.schedule(
                _SHADOW_LATENCY, lambda: target.receive_packet(packet, peer_port)
            )
            return
        if out_port in self.snapshot.edge_ports.get(switch.name, frozenset()):
            self.arrivals.setdefault(ref, []).append(packet)
        # unbound port: packet vanishes, as on real hardware

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def inject(self, switch: str, port: int, packet: Packet) -> None:
        self.switches[switch].receive_packet(packet, port)

    def _note_punt(self) -> None:
        self.controller_copies += 1

    def run_probe_round(
        self, ingress: PortRef, packets: Iterable[Packet]
    ) -> ProbeResult:
        """Inject ``packets`` at ``ingress`` and collect all arrivals."""
        self.reset_dynamic_state()
        result = ProbeResult(ingress=ingress)
        switch, port = ingress
        for packet in packets:
            self.inject(switch, port, packet)
            result.probes_sent += 1
        self.sim.run_until_idle(max_time=self.sim.now + 60.0)
        result.arrivals = dict(self.arrivals)
        result.controller_copies = self.controller_copies
        return result


def _registered_endpoints(
    registrations: Dict[str, ClientRegistration],
) -> Dict[PortRef, Tuple[str, str]]:
    owners: Dict[PortRef, Tuple[str, str]] = {}
    for registration in registrations.values():
        for host in registration.hosts:
            owners[host.access_point] = (host.name, registration.name)
    return owners


class EmulationVerifier:
    """Sampling-based reachability verification over shadow networks.

    The probe set for a source host covers: every registered IP as
    ``ip_dst`` (the destinations a routing policy can name), plus
    ``extra_random_probes`` headers drawn uniformly to catch rules that
    match none of the registered addresses (e.g. exfiltration matches on
    oddball destinations).
    """

    def __init__(
        self,
        registrations: Dict[str, ClientRegistration],
        *,
        extra_random_probes: int = 8,
        seed: int = 0,
        engine: Optional[VerificationEngine] = None,
    ) -> None:
        self.registrations = dict(registrations)
        self.extra_random_probes = extra_random_probes
        self.seed = seed
        #: shared verification engine: shadow networks are cached as
        #: content-addressed artifacts, so re-verifying an unchanged
        #: snapshot skips replica construction entirely — the same
        #: invalidation discipline as the HSA backend
        self.engine = engine
        self._owners = _registered_endpoints(self.registrations)
        self.probes_injected = 0
        self.shadows_built = 0

    def _shadow(self, snapshot: NetworkSnapshot) -> ShadowNetwork:
        if self.engine is None:
            self.shadows_built += 1
            return ShadowNetwork(snapshot)

        def build(snap: NetworkSnapshot) -> ShadowNetwork:
            self.shadows_built += 1
            return ShadowNetwork(snap)

        return self.engine.artifact("shadow-network", snapshot, build)

    # ------------------------------------------------------------------
    # Probe construction
    # ------------------------------------------------------------------

    def _probe_packets(
        self, src_ip: int, src_mac: MacAddress, scope: TrafficScope
    ) -> List[Packet]:
        rng = random.Random(self.seed ^ src_ip)
        constraints = scope.constraints()
        sport = constraints.get("tp_src", 41000)
        dport = constraints.get("tp_dst", 42000)
        vlan = constraints.get("vlan_id", 0)
        packets: List[Packet] = []
        destination_ips: List[int] = sorted(
            {
                host.ip
                for registration in self.registrations.values()
                for host in registration.hosts
            }
        )
        for _ in range(self.extra_random_probes):
            destination_ips.append(rng.getrandbits(32))
        for dst in destination_ips:
            packets.append(
                udp_packet(
                    eth_src=src_mac,
                    eth_dst=MacAddress.from_host_index(0),
                    ip_src=IPv4Address(src_ip),
                    ip_dst=IPv4Address(dst),
                    sport=sport,
                    dport=dport,
                    vlan_id=vlan,
                    payload=("probe", src_ip, dst),
                )
            )
        return packets

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def reachable_ports(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        scope: TrafficScope = TrafficScope(),
    ) -> Dict[PortRef, frozenset[PortRef]]:
        """Per client access point, the edge ports its probes reached."""
        shadow = self._shadow(snapshot)
        reached: Dict[PortRef, frozenset[PortRef]] = {}
        for index, host in enumerate(registration.hosts, start=1):
            packets = self._probe_packets(
                host.ip, MacAddress.from_host_index(index), scope
            )
            result = shadow.run_probe_round(host.access_point, packets)
            self.probes_injected += result.probes_sent
            reached[host.access_point] = result.reached_ports()
        return reached

    def reachable_destinations(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        scope: TrafficScope = TrafficScope(),
    ) -> Tuple[Endpoint, ...]:
        """Endpoint-level answer comparable to the HSA verifier's."""
        endpoints: Set[Endpoint] = set()
        for ports in self.reachable_ports(registration, snapshot, scope).values():
            for switch, port in ports:
                host, client = self._owners.get((switch, port), ("", ""))
                endpoints.add(
                    Endpoint(switch=switch, port=port, host=host, client=client)
                )
        return tuple(sorted(endpoints, key=lambda e: (e.switch, e.port)))

    def can_reach(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        src_host: str,
        target: PortRef,
        scope: TrafficScope = TrafficScope(),
    ) -> bool:
        """Did any probe from ``src_host`` arrive at ``target``?"""
        record = next(
            (h for h in registration.hosts if h.name == src_host), None
        )
        if record is None:
            raise KeyError(f"{src_host!r} is not one of {registration.name}'s hosts")
        shadow = self._shadow(snapshot)
        packets = self._probe_packets(record.ip, MacAddress.from_host_index(1), scope)
        result = shadow.run_probe_round(record.access_point, packets)
        self.probes_injected += result.probes_sent
        return target in result.reached_ports()
