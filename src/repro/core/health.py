"""Per-switch control-channel health: healthy -> degraded -> lost.

The monitor cannot observe channel loss directly (a dropped
``FlowStatsReply`` just never arrives), so health is inferred from poll
outcomes: consecutive timeouts demote a switch to DEGRADED and then to
LOST (quarantined — its mirror entry may be arbitrarily stale and every
signed answer flags it); any confirmed activity (a poll reply or a
passive flow-monitor update) promotes it back.  A recovery *from LOST*
is reported as a reconnect so the monitor performs a full resync:
resubscribe the flow monitor (subscriptions die with switch restarts)
and poll the complete state.

The tracker also records per-switch freshness — the last instant the
switch's configuration was positively confirmed — which feeds the
staleness fields of every signed reply (degrade honestly, never lie).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class ChannelState(enum.Enum):
    """Health of one controller<->switch session, as inferred."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    LOST = "lost"


@dataclass
class _SwitchHealth:
    state: ChannelState = ChannelState.HEALTHY
    consecutive_timeouts: int = 0
    last_confirmed: float = 0.0
    quarantined_since: Optional[float] = None


@dataclass(frozen=True)
class HealthTransition:
    """One recorded state change (for tests and diagnostics)."""

    time: float
    switch: str
    from_state: ChannelState
    to_state: ChannelState


class ChannelHealthTracker:
    """The health state machine over every monitored switch."""

    def __init__(
        self,
        *,
        degraded_after: int = 1,
        lost_after: int = 3,
    ) -> None:
        if degraded_after < 1 or lost_after <= degraded_after:
            raise ValueError(
                "need 1 <= degraded_after < lost_after "
                f"(got {degraded_after}, {lost_after})"
            )
        self.degraded_after = degraded_after
        self.lost_after = lost_after
        self._switches: Dict[str, _SwitchHealth] = {}
        self.transitions: List[HealthTransition] = []

    def _entry(self, switch: str, now: float) -> _SwitchHealth:
        entry = self._switches.get(switch)
        if entry is None:
            entry = _SwitchHealth(last_confirmed=now)
            self._switches[switch] = entry
        return entry

    def _move(
        self, switch: str, entry: _SwitchHealth, to_state: ChannelState, now: float
    ) -> None:
        self.transitions.append(
            HealthTransition(
                time=now, switch=switch, from_state=entry.state, to_state=to_state
            )
        )
        entry.state = to_state
        entry.quarantined_since = now if to_state is ChannelState.LOST else None

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------

    def record_success(self, switch: str, now: float) -> Optional[str]:
        """A poll reply or passive update arrived: the channel works.

        Returns ``"reconnected"`` when recovering from LOST (the caller
        must full-resync), ``"recovered"`` when leaving DEGRADED, else
        ``None``.
        """
        entry = self._entry(switch, now)
        entry.consecutive_timeouts = 0
        entry.last_confirmed = now
        if entry.state is ChannelState.LOST:
            self._move(switch, entry, ChannelState.HEALTHY, now)
            return "reconnected"
        if entry.state is ChannelState.DEGRADED:
            self._move(switch, entry, ChannelState.HEALTHY, now)
            return "recovered"
        return None

    def record_timeout(self, switch: str, now: float) -> Optional[str]:
        """A poll went unanswered.  Returns ``"degraded"``/``"lost"`` on
        a demotion, else ``None``."""
        entry = self._entry(switch, now)
        entry.consecutive_timeouts += 1
        if (
            entry.state is not ChannelState.LOST
            and entry.consecutive_timeouts >= self.lost_after
        ):
            self._move(switch, entry, ChannelState.LOST, now)
            return "lost"
        if (
            entry.state is ChannelState.HEALTHY
            and entry.consecutive_timeouts >= self.degraded_after
        ):
            self._move(switch, entry, ChannelState.DEGRADED, now)
            return "degraded"
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def state(self, switch: str) -> ChannelState:
        entry = self._switches.get(switch)
        return entry.state if entry is not None else ChannelState.HEALTHY

    def degraded(self) -> Tuple[str, ...]:
        return tuple(
            sorted(
                name
                for name, entry in self._switches.items()
                if entry.state is ChannelState.DEGRADED
            )
        )

    def lost(self) -> Tuple[str, ...]:
        return tuple(
            sorted(
                name
                for name, entry in self._switches.items()
                if entry.state is ChannelState.LOST
            )
        )

    def all_healthy(self) -> bool:
        return all(
            entry.state is ChannelState.HEALTHY
            for entry in self._switches.values()
        )

    def last_confirmed(self, switch: str) -> Optional[float]:
        entry = self._switches.get(switch)
        return entry.last_confirmed if entry is not None else None

    def staleness(self, switch: str, now: float) -> float:
        """Seconds since the switch's configuration was last confirmed.

        A switch never heard from at all reports ``float("inf")``: we
        genuinely know nothing about it.
        """
        entry = self._switches.get(switch)
        if entry is None:
            return float("inf")
        return max(0.0, now - entry.last_confirmed)
