"""The client query taxonomy and answer types.

Paper §IV-A enumerates the query interface: reachable destinations,
reaching sources, fairness/neutrality, path-length optimality, traversed
geographic regions, and a compact transfer-function representation of the
client's routing service.  Each query class below carries its parameters;
each answer carries endpoint-level results only — never internal paths —
preserving the provider's topology confidentiality (§IV-A: "queries can
be limited to learn only about endpoints, but nothing about the actual
routing paths inside the network").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

#: An endpoint as exposed to clients: an access point plus, when the
#: port is registered to a known host, that host's name and owner.
@dataclass(frozen=True)
class Endpoint:
    switch: str
    port: int
    host: str = ""  # "" when no registered host sits at this port
    client: str = ""  # owning client ("" = unknown / unassigned)

    def labelled(self) -> str:
        where = f"{self.switch}:{self.port}"
        return f"{self.host or '?'}@{where}" + (f" [{self.client}]" if self.client else "")


@dataclass(frozen=True)
class TrafficScope:
    """An optional narrowing of "my traffic" for a query.

    All fields are exact-match constraints; ``None`` leaves the dimension
    unconstrained.  (Richer scopes — prefixes, ranges — reduce to unions
    of these.)
    """

    ip_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None
    vlan_id: Optional[int] = None

    def constraints(self) -> dict[str, int]:
        return {
            name: value
            for name, value in (
                ("ip_proto", self.ip_proto),
                ("tp_src", self.tp_src),
                ("tp_dst", self.tp_dst),
                ("vlan_id", self.vlan_id),
            )
            if value is not None
        }


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QueryBase:
    scope: TrafficScope = field(default_factory=TrafficScope)


@dataclass(frozen=True)
class ReachableDestinationsQuery(QueryBase):
    """Which endpoints can traffic leaving my network card(s) reach?

    ``authenticate=True`` additionally runs the in-band test of Fig. 1/2:
    every reachable endpoint is challenged and must prove liveness with a
    signed reply.
    """

    authenticate: bool = True


@dataclass(frozen=True)
class ReachingSourcesQuery(QueryBase):
    """For which sources do routes exist that can reach my network card(s)?

    ``destination_host`` restricts the check to one of the client's own
    hosts ("" = all of them) — e.g. to verify that an expected peer can
    still reach a specific site (blackhole detection).
    """

    destination_host: str = ""


@dataclass(frozen=True)
class IsolationQuery(QueryBase):
    """Is my sub-network isolated — reachable to/from only my own access points?

    The fundamental security query of §IV-B1, detecting join attacks.
    """

    authenticate: bool = True


@dataclass(frozen=True)
class GeoLocationQuery(QueryBase):
    """Which geographic regions can my traffic pass through? (§IV-B2)"""


@dataclass(frozen=True)
class WaypointAvoidanceQuery(QueryBase):
    """Does my traffic avoid the given regions entirely?"""

    forbidden_regions: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PathLengthQuery(QueryBase):
    """Are my routes length-optimal (and what is the stretch)?"""

    destination_host: str = ""  # "" = all my destinations


@dataclass(frozen=True)
class FairnessQuery(QueryBase):
    """Is my traffic forwarded neutrally — no discriminatory rate limits?"""


@dataclass(frozen=True)
class BandwidthQuery(QueryBase):
    """What bottleneck bandwidth do my routes guarantee? (QoS, §IV-A)

    ``destination_host`` restricts the answer to paths toward one of the
    client's own hosts ("" = all destinations).  ``minimum_mbps`` is the
    contracted dedicated bandwidth; the answer's ``meets_contract``
    compares the worst bottleneck against it.
    """

    destination_host: str = ""
    minimum_mbps: float = 0.0


@dataclass(frozen=True)
class TransferFunctionQuery(QueryBase):
    """A compact endpoint-level transfer function of my routing service."""


@dataclass(frozen=True)
class ExposureHistoryQuery(QueryBase):
    """Was any of my hosts ever exposed in the recent past? (§IV-C)

    Answered from the service's snapshot history, so attacks that were
    armed and *removed* between two of the client's own checks are still
    reported, with their time window and ingress ports.
    ``victim_host`` restricts the question to one host ("" = all).
    """

    victim_host: str = ""


Query = Union[
    ReachableDestinationsQuery,
    ReachingSourcesQuery,
    IsolationQuery,
    GeoLocationQuery,
    WaypointAvoidanceQuery,
    PathLengthQuery,
    FairnessQuery,
    BandwidthQuery,
    TransferFunctionQuery,
    ExposureHistoryQuery,
]


# ----------------------------------------------------------------------
# Answers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AuthEvidence:
    """Outcome of one in-band authentication round (Fig. 2)."""

    requests_issued: int
    replies_received: int
    authenticated_endpoints: Tuple[Endpoint, ...]
    silent_endpoints: Tuple[Endpoint, ...]

    @property
    def complete(self) -> bool:
        """True iff every challenged endpoint responded and verified.

        The paper: "the server also forwards to the client the total
        number of authentication requests that were made, such that it
        can detect cases where some access points did not respond."
        """
        return self.replies_received == self.requests_issued


@dataclass(frozen=True)
class ReachableDestinationsAnswer:
    endpoints: Tuple[Endpoint, ...]
    auth: Optional[AuthEvidence] = None


@dataclass(frozen=True)
class ReachingSourcesAnswer:
    endpoints: Tuple[Endpoint, ...]


@dataclass(frozen=True)
class IsolationAnswer:
    isolated: bool
    declared_endpoints: Tuple[Endpoint, ...]
    violating_endpoints: Tuple[Endpoint, ...]  # reachable but undeclared
    direction: str = "both"  # "outbound" | "inbound" | "both"
    auth: Optional[AuthEvidence] = None


@dataclass(frozen=True)
class GeoLocationAnswer:
    regions: Tuple[str, ...]
    location_confidence: str = "disclosed"  # how locations were provisioned


@dataclass(frozen=True)
class WaypointAvoidanceAnswer:
    avoided: bool
    violating_regions: Tuple[str, ...]


@dataclass(frozen=True)
class PathLengthReport:
    destination: Endpoint
    actual_hops: int
    optimal_hops: int

    @property
    def stretch(self) -> float:
        if self.optimal_hops == 0:
            return 1.0
        return self.actual_hops / self.optimal_hops


@dataclass(frozen=True)
class PathLengthAnswer:
    reports: Tuple[PathLengthReport, ...]

    @property
    def max_stretch(self) -> float:
        return max((r.stretch for r in self.reports), default=1.0)

    @property
    def optimal(self) -> bool:
        return all(r.actual_hops <= r.optimal_hops for r in self.reports)


@dataclass(frozen=True)
class MeterReport:
    """One rate limit applying to some of the client's traffic."""

    switch: str
    rate_kbps: int
    scope_description: str


@dataclass(frozen=True)
class FairnessAnswer:
    neutral: bool
    meters_on_my_traffic: Tuple[MeterReport, ...]
    baseline_rate_kbps: Optional[int] = None  # least-limited comparable traffic


@dataclass(frozen=True)
class BandwidthReport:
    """Bottleneck bandwidth toward one destination endpoint."""

    destination: Endpoint
    #: worst case over the paths the configuration can actually take
    min_bottleneck_mbps: float
    #: best case (a path with this bottleneck exists)
    max_bottleneck_mbps: float


@dataclass(frozen=True)
class BandwidthAnswer:
    reports: Tuple[BandwidthReport, ...]
    minimum_mbps: float = 0.0

    @property
    def worst_bottleneck_mbps(self) -> float:
        return min(
            (r.min_bottleneck_mbps for r in self.reports), default=float("inf")
        )

    @property
    def meets_contract(self) -> bool:
        return self.worst_bottleneck_mbps >= self.minimum_mbps


@dataclass(frozen=True)
class TransferFunctionEntry:
    """One endpoint-level mapping: ingress AP + scope -> egress AP."""

    ingress: Endpoint
    egress: Endpoint
    header_constraint: str  # human-readable wildcard summary


@dataclass(frozen=True)
class TransferFunctionAnswer:
    entries: Tuple[TransferFunctionEntry, ...]


@dataclass(frozen=True)
class ExposureWindowSummary:
    """One past exposure interval, as reported to the client."""

    opened_at: float
    closed_at: Optional[float]  # None = still open
    ingress_endpoints: Tuple[Endpoint, ...]


@dataclass(frozen=True)
class HostExposureReport:
    host: str
    windows: Tuple[ExposureWindowSummary, ...]

    @property
    def ever_exposed(self) -> bool:
        return bool(self.windows)


@dataclass(frozen=True)
class ExposureHistoryAnswer:
    reports: Tuple[HostExposureReport, ...]
    history_entries_analyzed: int = 0

    @property
    def any_exposure(self) -> bool:
        return any(report.ever_exposed for report in self.reports)


Answer = Union[
    ReachableDestinationsAnswer,
    ReachingSourcesAnswer,
    IsolationAnswer,
    GeoLocationAnswer,
    WaypointAvoidanceAnswer,
    PathLengthAnswer,
    FairnessAnswer,
    BandwidthAnswer,
    TransferFunctionAnswer,
    ExposureHistoryAnswer,
]
