"""In-band testing and client interaction (§IV-A3, Figures 1 and 2).

The in-band tester owns three jobs:

1. **Interception rules**: high-priority flow entries on every switch
   punting RVaaS signalling to the control plane — client query packets
   (magic UDP port), host authentication replies (second magic port),
   and LLDP-style topology probes.  "RVaaS is only reachable via a very
   simple OpenFlow interface and indirectly; no special protocols and
   servers are needed."
2. **Authentication rounds**: given the candidate endpoints computed by
   the logical verifier, inject signed Auth-request packets via
   Packet-Out at each endpoint's egress port, collect the signed replies
   that come back as Packet-Ins, verify them, and report both the
   evidence and the issued-request count (so silent endpoints are
   visible to the client).
3. **Response dispatch**: deliver sealed integrity replies to the
   querying client's access point via Packet-Out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.protocol import (
    AuthChallenge,
    AuthReply,
    ClientRegistration,
    sign_challenge,
    verify_auth_reply,
)
from repro.crypto.keys import KeyPair
from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.constants import (
    ETH_TYPE_LLDP,
    IP_PROTO_UDP,
    RVAAS_AUTH_PORT,
    RVAAS_MAGIC_PORT,
)
from repro.netlib.packet import Packet, udp_packet
from repro.openflow.actions import ToController
from repro.openflow.match import Match
from repro.openflow.messages import PacketIn

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.controlplane.controller import ControllerApp

#: Cookie marking RVaaS-owned rules (self-protection watches these).
RVAAS_COOKIE = 0x5256

#: Priorities of the interception tier — above everything the provider
#: or an attacker is expected to use for traffic manipulation.
INTERCEPT_PRIORITY = 1000
PROBE_PRIORITY = 1001

#: Anycast-style address clients send their query packets toward.
RVAAS_SERVICE_IP = IPv4Address((10 << 24) | (255 << 16) | (255 << 8) | 254)

#: Source identity of RVaaS-injected packets.
RVAAS_MAC = MacAddress.from_host_index(0xFFFFFE)

PortRef = Tuple[str, int]


def interception_matches() -> tuple[Match, ...]:
    """The three matches every switch punts to the control plane."""
    return (
        Match(ip_proto=IP_PROTO_UDP, tp_dst=RVAAS_MAGIC_PORT),
        Match(ip_proto=IP_PROTO_UDP, tp_dst=RVAAS_AUTH_PORT),
        Match(eth_type=ETH_TYPE_LLDP),
    )


@dataclass
class AuthRoundOutcome:
    """What one authentication round established."""

    round_id: int
    nonce: int
    targets: Tuple[PortRef, ...]
    verified: Dict[PortRef, str] = field(default_factory=dict)  # port -> host
    rejected: List[Tuple[PortRef, str]] = field(default_factory=list)
    unsolicited: List[Tuple[PortRef, str]] = field(default_factory=list)
    #: challenge waves sent (1 + re-challenges of silent targets)
    attempts: int = 1
    #: total challenge packets injected across all attempts
    challenges_sent: int = 0

    @property
    def issued(self) -> int:
        return self.challenges_sent or len(self.targets)

    @property
    def received(self) -> int:
        return len(self.verified)

    def silent_targets(self) -> Tuple[PortRef, ...]:
        return tuple(t for t in self.targets if t not in self.verified)


@dataclass
class _PendingRound:
    outcome: AuthRoundOutcome
    on_complete: Callable[[AuthRoundOutcome], None]
    challenge: Optional[AuthChallenge] = None
    done: bool = False


class InBandTester:
    """Owns interception rules and authentication rounds."""

    def __init__(
        self,
        controller: "ControllerApp",
        keypair: KeyPair,
        registrations: Mapping[str, ClientRegistration],
        *,
        auth_timeout: float = 0.25,
        auth_retries: int = 0,
    ) -> None:
        self.controller = controller
        self.keypair = keypair
        self.registrations = dict(registrations)
        self.auth_timeout = auth_timeout
        #: re-challenge waves for targets still silent at the deadline —
        #: a lossy data plane can eat a challenge or a reply, and one
        #: lost packet must not brand a live host as silent.  0 keeps
        #: the original single-shot semantics.
        self.auth_retries = auth_retries
        self._round_ids = itertools.count(1)
        self._rounds: Dict[int, _PendingRound] = {}
        self.challenges_sent = 0
        self.rechallenges_sent = 0
        self.replies_processed = 0

    # ------------------------------------------------------------------
    # Interception rules
    # ------------------------------------------------------------------

    def install_interception(self) -> None:
        """Install the punt rules on every managed switch."""
        for switch in self.controller.channels:
            self.install_interception_on(switch)

    def install_interception_on(self, switch: str) -> None:
        for match in interception_matches():
            priority = (
                PROBE_PRIORITY if match.eth_type == ETH_TYPE_LLDP else INTERCEPT_PRIORITY
            )
            self.controller.install_flow(
                switch,
                match,
                (ToController(),),
                priority=priority,
                cookie=RVAAS_COOKIE,
            )

    def reassert_interception(self, switch: str, mirrored) -> int:
        """Reinstall punt rules that ``switch``'s polled mirror lacks.

        A FlowMod lost on a lossy channel never generates a "removed"
        monitor event, so :meth:`RVaaSController._self_protect` cannot
        see it — the poll mirror is the only place the loss becomes
        visible.  Returns how many rules were re-asserted.
        """
        present = {
            (rule.match, rule.priority)
            for rule in mirrored
            if rule.cookie == RVAAS_COOKIE
        }
        repaired = 0
        for match in interception_matches():
            priority = (
                PROBE_PRIORITY if match.eth_type == ETH_TYPE_LLDP else INTERCEPT_PRIORITY
            )
            if (match, priority) in present:
                continue
            self.controller.install_flow(
                switch,
                match,
                (ToController(),),
                priority=priority,
                cookie=RVAAS_COOKIE,
            )
            repaired += 1
        return repaired

    # ------------------------------------------------------------------
    # Authentication rounds (Fig. 1 step 4, Fig. 2 steps 1-3)
    # ------------------------------------------------------------------

    def start_round(
        self,
        targets: Tuple[PortRef, ...],
        nonce: int,
        on_complete: Callable[[AuthRoundOutcome], None],
    ) -> int:
        """Challenge every target port; report after the timeout.

        With ``auth_retries > 0``, targets still silent at the deadline
        are re-challenged (jittered backoff) before the round closes —
        bounding how long a reply may take while tolerating packet loss.
        """
        assert self.controller.network is not None
        round_id = next(self._round_ids)
        outcome = AuthRoundOutcome(round_id=round_id, nonce=nonce, targets=targets)
        challenge = sign_challenge(
            AuthChallenge(nonce=nonce, round_id=round_id, service=self.controller.name),
            self.keypair.private,
        )
        pending = _PendingRound(
            outcome=outcome, on_complete=on_complete, challenge=challenge
        )
        self._rounds[round_id] = pending
        self._challenge_targets(outcome, challenge, targets)
        self.controller.network.sim.schedule(
            self.auth_timeout, lambda: self._round_deadline(round_id)
        )
        return round_id

    def _challenge_targets(
        self,
        outcome: AuthRoundOutcome,
        challenge: AuthChallenge,
        targets: Tuple[PortRef, ...],
    ) -> None:
        for switch, port in targets:
            packet = self._challenge_packet(challenge, switch, port)
            self.controller.send_packet(switch, packet, port)
            self.challenges_sent += 1
            outcome.challenges_sent += 1

    def _challenge_packet(
        self, challenge: AuthChallenge, switch: str, port: int
    ) -> Packet:
        destination = self._host_ip_at(switch, port)
        return udp_packet(
            eth_src=RVAAS_MAC,
            eth_dst=MacAddress.from_host_index(0),
            ip_src=RVAAS_SERVICE_IP,
            ip_dst=destination or IPv4Address(0),
            sport=RVAAS_AUTH_PORT,
            dport=RVAAS_AUTH_PORT,
            payload=challenge,
        )

    def _host_ip_at(self, switch: str, port: int) -> Optional[IPv4Address]:
        for registration in self.registrations.values():
            record = registration.host_at(switch, port)
            if record is not None:
                return IPv4Address(record.ip)
        return None

    def handle_auth_reply(self, origin: PortRef, message: PacketIn) -> None:
        """Process a Packet-In carrying an auth reply (Fig. 2, step 2).

        ``origin`` is the (switch, ingress port) the reply physically
        entered at — "intercepted and traced back to the origin, due to
        the logically centralized view".  The origin, not any claim in
        the payload, is the authenticated location.
        """
        packet = message.packet
        if packet is None or not isinstance(packet.payload, AuthReply):
            return
        reply: AuthReply = packet.payload
        self.replies_processed += 1
        pending = self._rounds.get(reply.round_id)
        if pending is None or pending.done:
            return
        outcome = pending.outcome
        key = self._host_key(reply.host)
        if (
            key is None
            or reply.nonce != outcome.nonce
            or not verify_auth_reply(reply, key)
        ):
            outcome.rejected.append((origin, reply.host))
            return
        if origin not in outcome.targets:
            # A verified host answered from a port we never challenged —
            # itself evidence of unexpected connectivity.
            outcome.unsolicited.append((origin, reply.host))
            return
        outcome.verified[origin] = reply.host

    def _host_key(self, host: str):
        for registration in self.registrations.values():
            key = registration.key_for_host(host)
            if key is not None:
                return key
        return None

    def _round_deadline(self, round_id: int) -> None:
        """The timeout fired: retry the silent targets or close the round."""
        pending = self._rounds.get(round_id)
        if pending is None or pending.done:
            return
        outcome = pending.outcome
        silent = outcome.silent_targets()
        if silent and outcome.attempts <= self.auth_retries:
            assert self.controller.network is not None
            sim = self.controller.network.sim
            outcome.attempts += 1
            self.rechallenges_sent += len(silent)
            assert pending.challenge is not None
            self._challenge_targets(outcome, pending.challenge, silent)
            # Jitter only on this (retry) path, so rounds where everyone
            # answered never disturb the sim's RNG stream.
            delay = self.auth_timeout * (1.0 + sim.rng.random())
            sim.schedule(delay, lambda: self._round_deadline(round_id))
            return
        self._finish_round(round_id)

    def _finish_round(self, round_id: int) -> None:
        pending = self._rounds.pop(round_id, None)
        if pending is None or pending.done:
            return
        pending.done = True
        pending.on_complete(pending.outcome)

    # ------------------------------------------------------------------
    # Response dispatch (Fig. 2, step 4)
    # ------------------------------------------------------------------

    def send_response(
        self, switch: str, port: int, client_ip: IPv4Address, payload: object
    ) -> None:
        """Deliver a sealed integrity reply at the client's access point."""
        packet = udp_packet(
            eth_src=RVAAS_MAC,
            eth_dst=MacAddress.from_host_index(0),
            ip_src=RVAAS_SERVICE_IP,
            ip_dst=client_ip,
            sport=RVAAS_MAGIC_PORT,
            dport=RVAAS_MAGIC_PORT,
            payload=payload,
        )
        self.controller.send_packet(switch, packet, port)
