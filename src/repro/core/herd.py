"""Herd-immunity audit over an AS-level federation.

Not every provider runs RVaaS.  This module answers the fleet-level
question anyway: *which client pairs are protected because every
valley-free transit path between them crosses a verified provider?*
The verdict taxonomy ports from AS-graph ROV-adoption audits
(SECURE-local / SECURE-inherited / PARTIAL / VULNERABLE — "inherited"
protection is the herd-immunity effect): a pair whose own providers are
unverified can still be safe when the transit core it must cross is.

Everything here is pure relationship-graph logic — provider/customer
and peer edge sets — deliberately independent of the data plane, so it
audits both generated internetworks
(:func:`repro.dataplane.asgraph.as_graph_topology` exposes its edges
via :meth:`~repro.dataplane.asgraph.ASGraph.relationships`) and
externally supplied AS graphs.

Valley-free paths follow the Gao-Rexford export rules as a two-phase
automaton: a path climbs customer->provider edges, takes at most one
peering edge, then descends provider->customer edges.  Reachability,
"a path avoiding verified transit exists", and "a path crossing
verified transit exists" are all BFS over (AS, phase[, crossed]) states
— walks and simple paths coincide for reachability because phases only
ever advance, and the brute-force oracle in :func:`brute_force_verdict`
enumerates the same walk set for cross-checking on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

SECURE_LOCAL = "SECURE-local"
SECURE_INHERITED = "SECURE-inherited"
PARTIAL = "PARTIAL"
VULNERABLE = "VULNERABLE"
VERDICTS = (SECURE_LOCAL, SECURE_INHERITED, PARTIAL, VULNERABLE)

_UP, _DOWN = 0, 1  # phase automaton: up*(peer)?down*


@dataclass(frozen=True)
class ASRelationships:
    """Business relationships of an AS graph (the audit's only input)."""

    order: Tuple[str, ...]
    providers: Mapping[str, Tuple[str, ...]]
    customers: Mapping[str, Tuple[str, ...]]
    peers: Mapping[str, Tuple[str, ...]]

    @classmethod
    def from_edges(
        cls,
        nodes: Iterable[str],
        p2c: Iterable[Tuple[str, str]],
        p2p: Iterable[Tuple[str, str]],
    ) -> "ASRelationships":
        """Build from (provider, customer) and unordered peering pairs."""
        order = tuple(nodes)
        known = set(order)
        prov: Dict[str, List[str]] = {n: [] for n in order}
        cust: Dict[str, List[str]] = {n: [] for n in order}
        peer: Dict[str, List[str]] = {n: [] for n in order}
        for p, c in p2c:
            if p not in known or c not in known:
                raise ValueError(f"p2c edge ({p}, {c}) references unknown AS")
            prov[c].append(p)
            cust[p].append(c)
        for a, b in p2p:
            if a not in known or b not in known:
                raise ValueError(f"p2p edge ({a}, {b}) references unknown AS")
            peer[a].append(b)
            peer[b].append(a)
        return cls(
            order=order,
            providers={n: tuple(sorted(v)) for n, v in prov.items()},
            customers={n: tuple(sorted(v)) for n, v in cust.items()},
            peers={n: tuple(sorted(v)) for n, v in peer.items()},
        )

    # ------------------------------------------------------------------
    # Customer cones
    # ------------------------------------------------------------------

    def customer_cone(self, name: str) -> FrozenSet[str]:
        """The AS plus everything reachable down customer edges."""
        seen = {name}
        stack = [name]
        while stack:
            for c in self.customers[stack.pop()]:
                if c not in seen:
                    seen.add(c)
                    stack.append(c)
        return frozenset(seen)

    def cone_sizes(self) -> Dict[str, int]:
        return {n: len(self.customer_cone(n)) for n in self.order}

    # ------------------------------------------------------------------
    # Valley-free reachability sweeps (one source, all destinations)
    # ------------------------------------------------------------------

    def _sweep(
        self, source: str, verified: FrozenSet[str], want_crossed: bool
    ) -> FrozenSet[str]:
        """BFS over (AS, phase[, crossed]) states from ``source``.

        ``want_crossed=False``: destinations reachable by a path with
        **no** verified intermediate (transit) AS — expansion simply
        stops at verified nodes other than the source, which still lets
        them be reached as endpoints.  ``want_crossed=True``:
        destinations reachable by a path with **at least one** verified
        intermediate — the crossed bit is set when expanding *through*
        a verified non-source node.
        """
        start = (source, _UP, False)
        seen = {start}
        frontier = [start]
        reached: set = set()
        while frontier:
            node, phase, crossed = frontier.pop()
            if node != source and (not want_crossed or crossed):
                reached.add(node)
            blocked = node != source and node in verified
            if not want_crossed and blocked:
                continue  # verified transit breaks the unprotected path
            crossed_next = crossed or (want_crossed and blocked)
            steps: List[Tuple[str, int]] = []
            if phase == _UP:
                steps.extend((p, _UP) for p in self.providers[node])
                steps.extend((y, _DOWN) for y in self.peers[node])
            steps.extend((c, _DOWN) for c in self.customers[node])
            for nxt, nxt_phase in steps:
                state = (nxt, nxt_phase, crossed_next)
                if state not in seen:
                    seen.add(state)
                    frontier.append(state)
        reached.discard(source)
        return frozenset(reached)

    def reachable(self, source: str) -> FrozenSet[str]:
        """All ASes a valley-free path from ``source`` can reach."""
        return self._sweep(source, frozenset(), want_crossed=False)


@dataclass(frozen=True)
class HerdImmunityReport:
    """Fleet-level protection summary for a set of client-site pairs."""

    verified: FrozenSet[str]
    verdicts: Dict[Tuple[str, str], str]
    counts: Dict[str, int]
    protected_fraction: float
    cone_sizes: Dict[str, int]
    #: fraction of all ASes inside at least one verified AS's cone
    verified_cone_coverage: float

    def summary_rows(self) -> List[Tuple[str, int]]:
        return [(v, self.counts.get(v, 0)) for v in VERDICTS]


def _classify(
    s: str,
    d: str,
    verified: FrozenSet[str],
    reachable: FrozenSet[str],
    unprotected: FrozenSet[str],
    protected: FrozenSet[str],
) -> str:
    """The verdict ladder for one pair, given ``s``'s three sweeps."""
    if d not in reachable:
        return VULNERABLE  # no connectivity at all: nothing to trust
    if s in verified and d in verified:
        return SECURE_LOCAL
    if d not in unprotected:
        return SECURE_INHERITED  # every transit path crosses a verified AS
    if s in verified or d in verified or d in protected:
        return PARTIAL
    return VULNERABLE


def herd_immunity_report(
    rel: ASRelationships,
    verified: Iterable[str],
    pairs: Optional[Iterable[Tuple[str, str]]] = None,
) -> HerdImmunityReport:
    """Classify every pair (default: all unordered AS pairs).

    Valley-free paths reverse into valley-free paths (each climb
    becomes a descent), so verdicts are symmetric and pairs are
    canonicalised to graph order (the earlier AS first).  One source
    needs at most three sweeps, shared across all its pairs —
    all-pairs is O(n * edges).
    """
    verified_set = frozenset(verified)
    unknown = verified_set - set(rel.order)
    if unknown:
        raise ValueError(f"verified set names unknown ASes: {sorted(unknown)}")
    rank = {name: i for i, name in enumerate(rel.order)}
    if pairs is None:
        wanted = [
            (a, b)
            for i, a in enumerate(rel.order)
            for b in rel.order[i + 1:]
        ]
    else:
        wanted = []
        for a, b in pairs:
            if a == b:
                raise ValueError(f"self-pair ({a}, {b}) has no transit path")
            if a not in rank or b not in rank:
                raise ValueError(f"pair ({a}, {b}) references unknown AS")
            wanted.append((a, b) if rank[a] < rank[b] else (b, a))
    by_source: Dict[str, List[str]] = {}
    for a, b in wanted:
        by_source.setdefault(a, []).append(b)

    verdicts: Dict[Tuple[str, str], str] = {}
    for source, dests in by_source.items():
        reach = rel._sweep(source, frozenset(), want_crossed=False)
        unprot = rel._sweep(source, verified_set, want_crossed=False)
        prot = rel._sweep(source, verified_set, want_crossed=True)
        for d in dests:
            verdicts[(source, d)] = _classify(
                source, d, verified_set, reach, unprot, prot
            )

    counts: Dict[str, int] = {v: 0 for v in VERDICTS}
    for verdict in verdicts.values():
        counts[verdict] += 1
    total = len(verdicts)
    secure = counts[SECURE_LOCAL] + counts[SECURE_INHERITED]
    covered: set = set()
    for v in verified_set:
        covered |= rel.customer_cone(v)
    return HerdImmunityReport(
        verified=verified_set,
        verdicts=verdicts,
        counts=counts,
        protected_fraction=(secure / total) if total else 0.0,
        cone_sizes=rel.cone_sizes(),
        verified_cone_coverage=(
            len(covered) / len(rel.order) if rel.order else 0.0
        ),
    )


# ----------------------------------------------------------------------
# Brute-force oracle (small instances only)
# ----------------------------------------------------------------------

def brute_force_verdict(
    rel: ASRelationships,
    verified: Iterable[str],
    s: str,
    d: str,
) -> str:
    """Enumerate every valley-free walk from ``s`` to ``d`` by DFS.

    States (AS, phase) never repeat along a valley-free walk (each
    segment is strictly monotone in the provider hierarchy), so plain
    DFS terminates.  Classifies with the same ladder as
    :func:`herd_immunity_report` but from exhaustively enumerated
    walks — the oracle the sweeps must agree with.
    """
    verified_set = frozenset(verified)
    found = {"any": False, "unprotected": False, "protected": False}

    def walk(node: str, phase: int, on_stack: set, crossed: bool) -> None:
        if node == d:
            found["any"] = True
            if crossed:
                found["protected"] = True
            else:
                found["unprotected"] = True
            return  # d is the endpoint; longer walks through d are
            # classified by their own visits when reached again
        crossed_next = crossed or (node != s and node in verified_set)
        steps: List[Tuple[str, int]] = []
        if phase == _UP:
            steps.extend((p, _UP) for p in rel.providers[node])
            steps.extend((y, _DOWN) for y in rel.peers[node])
        steps.extend((c, _DOWN) for c in rel.customers[node])
        for nxt, nxt_phase in steps:
            state = (nxt, nxt_phase)
            if state in on_stack:
                continue
            on_stack.add(state)
            walk(nxt, nxt_phase, on_stack, crossed_next)
            on_stack.discard(state)

    walk(s, _UP, {(s, _UP)}, False)
    if not found["any"]:
        return VULNERABLE
    if s in verified_set and d in verified_set:
        return SECURE_LOCAL
    if not found["unprotected"]:
        return SECURE_INHERITED
    if s in verified_set or d in verified_set or found["protected"]:
        return PARTIAL
    return VULNERABLE
