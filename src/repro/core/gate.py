"""Preventive verify-then-install gate (ISSUE 9).

Detection-mode RVaaS (the monitor + verifier pipeline) notices a
malicious configuration *after* it reaches the data plane; this module
closes the window entirely.  A :class:`PreventiveGate` interposes on the
provider->switch FlowMod path (the :class:`~repro.openflow.channel.ControlChannel`
gate hook fires before the record is sequenced, so a gate that never
intercepts is byte-identical to no gate at all).  Every intercepted
FlowMod is applied to a *speculative* snapshot — the verified mirror
plus an overlay of gate-forwarded-but-not-yet-polled rules — and checked
against the registered client policies before anything is forwarded:

* **ALLOW** — no new violation; forward unchanged.
* **REPAIR** — a minimal rewrite (priority demotion below the provider's
  routing/guard tiers) removes the violation; forward the rewrite.
* **QUARANTINE** — unrepairable ADD/MODIFY; held in a shadow table the
  verifier tracks, the mirror marks the identity untrusted.
* **BLOCK** — unrepairable DELETE (or a rule of an aborted batch).

Every decision is signed with the service key, so clients can audit that
the gate really verified (or honestly declined to verify) each rule.

Robustness is the point, not an afterthought: per-decision verification
deadlines with jittered retries against transient verifier faults, a
bounded admission queue that sheds oldest-first, explicit fail-open /
fail-closed dispositions that always leave a signed audit record, and a
health state machine (ACTIVE -> DEGRADED -> RECOVERING -> ACTIVE) that
re-verifies everything that was waved through while degraded.
FlowMods grouped by a :meth:`~repro.controlplane.controller.ControllerApp.flow_transaction`
form transactional batches: one BLOCK rolls back the already-installed
prefix (strict deletes, retried at recovery if a channel is down).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace as dc_replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.inband import INTERCEPT_PRIORITY, RVAAS_COOKIE, interception_matches
from repro.core.snapshot import NetworkSnapshot
from repro.crypto.sign import sign as _sign, verify as _verify_sig
from repro.hsa.transfer import SnapshotRule
from repro.openflow.actions import Drop, ToController
from repro.openflow.channel import ChannelError, ControlChannel
from repro.openflow.messages import FlowMod, FlowModCommand, OpenFlowMessage
from repro.serving.metrics import counters_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.service import RVaaSController
    from repro.dataplane.network import Network

# Decision verdicts.
GATE_ALLOW = "allow"
GATE_BLOCK = "block"
GATE_REPAIR = "repair"
GATE_QUARANTINE = "quarantine"

# Gate health states.
GATE_ACTIVE = "active"
GATE_DEGRADED = "degraded"
GATE_RECOVERING = "recovering"


class TransientVerifyError(Exception):
    """A verification attempt failed transiently (retry may succeed)."""


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ClientGatePolicy:
    """What the gate enforces preventively for one registered client."""

    client: str
    #: no new endpoint may become reachable to/from this client's hosts
    isolation: bool = True
    #: no endpoint the client can currently reach may become unreachable
    protect_delivery: bool = True
    #: the client's outbound traffic may not traverse *new* switches
    #: (catches diversions whose endpoints and regions stay identical)
    pin_traversal: bool = True
    #: the client's outbound traffic may not enter new forwarding loops
    #: (the data plane has no TTL; a looping mirror copy floods links)
    loop_free: bool = True
    #: regions the client's traffic must never enter
    forbidden_regions: Tuple[str, ...] = ()


@dataclass(frozen=True)
class GatePolicy:
    """The gate's full enforcement policy.

    With ``auto_clients`` (the default) and no explicit ``clients``, a
    :class:`ClientGatePolicy` is derived for every registration when the
    gate binds to the service — the common "protect everyone" case.
    :meth:`null` builds the do-nothing policy used by differential tests
    (a null-policy gate run is byte-identical to a gateless run).
    """

    clients: Tuple[ClientGatePolicy, ...] = ()
    #: refuse FlowMods that delete or shadow the RVaaS punt rules
    protect_interception: bool = True
    #: disposition when verification cannot complete (deadline, faults,
    #: degraded health): True forwards unverified (audited + re-verified
    #: at recovery), False rejects — never installing an unverified rule
    fail_open: bool = True
    #: roll back the installed prefix of a flow_transaction() batch when
    #: a later member is refused
    transactional: bool = True
    #: attempt minimal rewrites (priority demotion) before refusing
    repair: bool = True
    #: track unrepairable ADD/MODIFYs in the shadow table instead of
    #: silently dropping them
    quarantine: bool = True
    #: derive per-client policies from the registrations at bind time
    auto_clients: bool = True
    #: forbidden regions applied to auto-derived client policies
    forbidden_regions: Tuple[str, ...] = ()

    def is_null(self) -> bool:
        """True when this policy can never refuse (or even inspect) a rule."""
        return (
            not self.clients
            and not self.auto_clients
            and not self.protect_interception
        )

    @classmethod
    def null(cls) -> "GatePolicy":
        return cls(auto_clients=False, protect_interception=False)

    @classmethod
    def for_registrations(
        cls,
        registrations: Dict[str, object],
        *,
        forbidden_regions: Tuple[str, ...] = (),
        **kwargs: object,
    ) -> "GatePolicy":
        clients = tuple(
            ClientGatePolicy(client=name, forbidden_regions=forbidden_regions)
            for name in sorted(registrations)
        )
        return cls(clients=clients, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class GateConfig:
    """Tunables of one :class:`PreventiveGate`."""

    policy: GatePolicy = field(default_factory=GatePolicy)
    #: max seconds a FlowMod may wait for its verdict before the gate
    #: takes the fail-open/fail-closed disposition instead
    verify_deadline: float = 0.25
    #: virtual-time cost charged per verification (queue spacing)
    verify_cost: float = 0.002
    #: admission-queue bound; beyond it the oldest entry is shed
    max_pending: int = 64
    #: retries after a transient verification fault
    verify_retries: int = 2
    #: base backoff before a retry; jittered by the gate's own RNG stream
    retry_backoff: float = 0.01
    #: consecutive pressure events (deadline miss / shed / fault
    #: exhaustion) that flip the gate ACTIVE -> DEGRADED
    degrade_after: int = 3
    #: quiet seconds required before DEGRADED attempts recovery
    recover_after: float = 0.5
    #: seconds a forwarded rule stays in the speculative overlay while
    #: waiting for the monitor's mirror to catch up
    overlay_ttl: float = 10.0
    #: verify against mirror + not-yet-polled forwarded rules; disabling
    #: this (ablation) verifies against the stale mirror alone
    speculative_overlay: bool = True


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GateDecision:
    """One signed verdict about one intercepted FlowMod."""

    sequence: int
    time: float
    switch: str
    verdict: str  # GATE_ALLOW | GATE_BLOCK | GATE_REPAIR | GATE_QUARANTINE
    rule: str
    reason: str
    violations: Tuple[str, ...]
    state: str  # gate health state at decision time
    signature: int = 0


@dataclass(frozen=True)
class GateAuditRecord:
    """One signed non-verdict event (shed, pass-through, rollback, ...)."""

    sequence: int
    time: float
    switch: str
    event: str
    rule: str
    reason: str
    state: str
    signature: int = 0


def verify_gate_record(record: object, public_key: object) -> bool:
    """Check the service signature on a decision or audit record."""
    unsigned = dc_replace(record, signature=0)  # type: ignore[type-var]
    return _verify_sig(unsigned, record.signature, public_key)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class ShadowEntry:
    """One quarantined rule the gate refused to install."""

    time: float
    switch: str
    rule: SnapshotRule
    reason: str


class ShadowTable:
    """The quarantine ledger: refused rules the verifier keeps tracking."""

    def __init__(self) -> None:
        self.entries: List[ShadowEntry] = []

    def add(self, entry: ShadowEntry) -> None:
        self.entries.append(entry)

    def for_switch(self, switch: str) -> Tuple[ShadowEntry, ...]:
        return tuple(e for e in self.entries if e.switch == switch)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class GateMetrics:
    """Counters for one gate (``snapshot_counters`` convention)."""

    intercepted: int = 0
    allowed: int = 0
    noop_allowed: int = 0
    blocked: int = 0
    repaired: int = 0
    quarantined: int = 0
    deadline_misses: int = 0
    shed: int = 0
    passed_through: int = 0
    fail_closed_rejects: int = 0
    rollbacks: int = 0
    rollbacks_deferred: int = 0
    batches_aborted: int = 0
    retries: int = 0
    verify_faults: int = 0
    forward_failures: int = 0
    fail_open_windows: int = 0
    degraded_entries: int = 0
    recovery_drains: int = 0
    backlog_reverified: int = 0
    backlog_remediated: int = 0
    queue_peak: int = 0

    def snapshot_counters(self) -> Dict[str, object]:
        return counters_dict(self)


# ----------------------------------------------------------------------
# FlowMod semantics on snapshot rule tuples
# ----------------------------------------------------------------------


def rule_from_mod(mod: FlowMod) -> SnapshotRule:
    return SnapshotRule(
        table_id=mod.table_id,
        priority=mod.priority,
        match=mod.match,
        actions=mod.actions,
        cookie=mod.cookie,
    )


def apply_flowmod(
    rules: Tuple[SnapshotRule, ...], mod: FlowMod
) -> Tuple[SnapshotRule, ...]:
    """Apply one FlowMod to a rule tuple, mirroring the switch semantics
    (:meth:`repro.openflow.switch.Switch._handle_flow_mod` exactly)."""
    cmd = mod.command
    if cmd is FlowModCommand.ADD:
        kept = tuple(
            r
            for r in rules
            if not (
                r.table_id == mod.table_id
                and r.match == mod.match
                and r.priority == mod.priority
            )
        )
        return kept + (rule_from_mod(mod),)
    if cmd is FlowModCommand.MODIFY:
        out: List[SnapshotRule] = []
        hit = False
        for r in rules:
            if (
                r.table_id == mod.table_id
                and r.match == mod.match
                and r.priority == mod.priority
            ):
                out.append(
                    SnapshotRule(
                        table_id=r.table_id,
                        priority=r.priority,
                        match=r.match,
                        actions=mod.actions,
                        cookie=mod.cookie,
                    )
                )
                hit = True
            else:
                out.append(r)
        if not hit:
            out.append(rule_from_mod(mod))
        return tuple(out)
    if cmd is FlowModCommand.DELETE:
        cookie = mod.cookie or None
        return tuple(
            r
            for r in rules
            if not (
                r.table_id == mod.table_id
                and r.match.is_subset_of(mod.match)
                and (cookie is None or r.cookie == cookie)
            )
        )
    # DELETE_STRICT
    return tuple(
        r
        for r in rules
        if not (
            r.table_id == mod.table_id
            and r.match == mod.match
            and r.priority == mod.priority
        )
    )


def describe_mod(mod: FlowMod) -> str:
    actions = ",".join(type(a).__name__ for a in mod.actions)
    return (
        f"{mod.command.value} t{mod.table_id} p{mod.priority} "
        f"c{mod.cookie} [{mod.match.describe()}] -> ({actions})"
    )


def _identities(rules: Sequence[SnapshotRule]) -> Set[tuple]:
    return {r.identity() for r in rules}


def _cannot_create_loops(mod: FlowMod) -> bool:
    """True when ``mod`` provably cannot introduce a forwarding loop.

    An ADD/MODIFY whose actions only drop shrinks the forwarding
    relation (it replaces an identical (table, match, priority) rule or
    masks lower priorities, and forwards nothing itself), and a subset
    of a loop-free relation is loop-free.  A DELETE can unmask a looping
    lower-priority rule, so it never qualifies.  Lets the gate skip the
    full-propagation loop query for ACL-style churn.
    """
    if mod.command not in (FlowModCommand.ADD, FlowModCommand.MODIFY):
        return False
    return all(isinstance(action, Drop) for action in mod.actions)


# ----------------------------------------------------------------------
# Internal bookkeeping
# ----------------------------------------------------------------------


@dataclass
class _Pending:
    """One intercepted FlowMod awaiting its verdict."""

    channel: ControlChannel
    message: FlowMod
    switch: str
    controller: str
    enqueued_at: float
    batch_key: Optional[tuple]


@dataclass
class _Batch:
    """One flow_transaction() worth of FlowMods (transactional unit)."""

    key: tuple
    forwarded: List[Tuple[ControlChannel, FlowMod]] = field(default_factory=list)
    aborted: bool = False


@dataclass
class _BacklogEntry:
    """A FlowMod forwarded unverified (pass-through), owed a re-check."""

    channel: ControlChannel
    message: FlowMod
    switch: str
    forwarded_at: float


class PreventiveGate:
    """Verify-then-install interposition on the FlowMod path."""

    #: repair ladder: priorities tried for the demotion rewrite, all
    #: below the provider's guard tier (6/8) and routing tier (10)
    REPAIR_PRIORITIES = (1, 0)

    def __init__(self, network: "Network", config: Optional[GateConfig] = None) -> None:
        self.network = network
        self.config = config or GateConfig()
        self.policy = self.config.policy
        self.metrics = GateMetrics()
        self.decisions: List[GateDecision] = []
        self.audit_log: List[GateAuditRecord] = []
        self.shadow = ShadowTable()
        self.state = GATE_ACTIVE
        self.armed = False
        self._service: Optional["RVaaSController"] = None
        self._exempt: Set[str] = set()
        self._queue: List[_Pending] = []
        self._pump_scheduled = False
        self._probe_scheduled = False
        self._sequence = 0
        #: monotone negative versions for speculative snapshots — must
        #: never collide with a real mirror version (the verifier's
        #: analysis cache is version-keyed)
        self._spec_version = 0
        self._batches: Dict[tuple, _Batch] = {}
        #: switch -> [(forwarded_at, FlowMod)] not yet visible in mirror
        self._overlay: Dict[str, List[Tuple[float, FlowMod]]] = {}
        self._backlog: List[_BacklogEntry] = []
        self._pending_rollbacks: List[Tuple[ControlChannel, str, FlowMod]] = []
        self._pressure = 0
        self._last_pressure_at = 0.0
        self._rng: Optional[random.Random] = None
        self._pinned_content: Optional[str] = None
        #: base-snapshot answers memoised per content hash (one dict per
        #: client policy); quiet switches re-verify against a cached base
        self._base_answers: Dict[str, Dict[str, Dict[str, object]]] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def install(self) -> "PreventiveGate":
        """Register on the network so every control channel (present and
        future) routes its to-switch FlowMods through this gate."""
        self.network.flowmod_gate = self
        for channel in self.network.channels:
            self.attach(channel)
        return self

    def attach(self, channel: ControlChannel) -> None:
        channel.flowmod_gate = self

    def bind_service(self, service: "RVaaSController") -> None:
        """Adopt the verification machinery of ``service`` and arm.

        The gate reuses the service's engine (content-addressed compiled
        artifacts + incremental atom-matrix repair), verifier, monitor
        mirror, and signing key.  The service's own FlowMods (punt-rule
        installs, repairs) are exempt — the gate must never deadlock the
        verifier against itself.
        """
        self._service = service
        self._exempt.add(service.name)
        self._rng = self.network.sim.derive_rng("gate")
        policy = self.config.policy
        if not policy.clients and policy.auto_clients:
            derived = GatePolicy.for_registrations(
                service.registrations,
                forbidden_regions=policy.forbidden_regions,
                protect_interception=policy.protect_interception,
                fail_open=policy.fail_open,
                transactional=policy.transactional,
                repair=policy.repair,
                quarantine=policy.quarantine,
            )
            policy = derived
        self.policy = policy
        self.armed = True

    # ------------------------------------------------------------------
    # FlowModGateHook protocol
    # ------------------------------------------------------------------

    def intercepts(self, channel: ControlChannel, message: OpenFlowMessage) -> bool:
        if not self.armed or self.policy.is_null():
            return False
        if not isinstance(message, FlowMod):
            return False
        return channel.controller_end.name not in self._exempt

    def intercept(self, channel: ControlChannel, message: OpenFlowMessage) -> None:
        assert isinstance(message, FlowMod)
        self.metrics.intercepted += 1
        now = self.network.sim.now
        batch_key = self._batch_key(channel)
        item = _Pending(
            channel=channel,
            message=message,
            switch=channel.switch_end.name,
            controller=channel.controller_end.name,
            enqueued_at=now,
            batch_key=batch_key,
        )
        batch = self._batch_for(batch_key)
        if batch is not None and batch.aborted:
            # A sibling was refused: the whole transaction is dead.
            self._finish(item, GATE_BLOCK, reason="batch-aborted")
            return
        self._check_health()
        if self.state != GATE_ACTIVE:
            self._disposition(item, "gate-degraded")
            return
        if len(self._queue) >= self.config.max_pending:
            oldest = self._queue.pop(0)
            self.metrics.shed += 1
            self._audit(oldest.switch, "shed", oldest.message, "admission queue full")
            self._pressure_tick()
            self._disposition(oldest, "shed")
            if self.state != GATE_ACTIVE:
                # Shedding tipped the gate over; newcomer takes the
                # degraded disposition rather than a doomed queue slot.
                self._disposition(item, "gate-degraded")
                return
        self._queue.append(item)
        if len(self._queue) > self.metrics.queue_peak:
            self.metrics.queue_peak = len(self._queue)
        self._schedule_pump()

    # ------------------------------------------------------------------
    # Queue pump (virtual-time verification deadline accounting)
    # ------------------------------------------------------------------

    def _schedule_pump(self) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        self.network.sim.schedule(self.config.verify_cost, self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        if not self._queue:
            return
        item = self._queue.pop(0)
        now = self.network.sim.now
        if now - item.enqueued_at > self.config.verify_deadline:
            self.metrics.deadline_misses += 1
            self._audit(
                item.switch,
                "deadline-missed",
                item.message,
                f"waited {now - item.enqueued_at:.3f}s",
            )
            self._pressure_tick()
            self._disposition(item, "deadline-missed")
        else:
            self._process(item)
        if self._queue:
            self._schedule_pump()

    def _process(self, item: _Pending, attempt: int = 0) -> None:
        batch = self._batch_for(item.batch_key)
        if batch is not None and batch.aborted:
            self._finish(item, GATE_BLOCK, reason="batch-aborted")
            return
        injector = self.network.fault_injector
        if injector is not None and getattr(injector, "gate_verify_fails", None):
            if injector.gate_verify_fails(item.switch):
                self.metrics.verify_faults += 1
                if attempt >= self.config.verify_retries:
                    self._audit(
                        item.switch,
                        "verify-exhausted",
                        item.message,
                        f"{attempt + 1} attempts failed",
                    )
                    self._pressure_tick()
                    self._disposition(item, "verify-exhausted")
                    return
                self.metrics.retries += 1
                assert self._rng is not None
                delay = self.config.retry_backoff * (1.0 + self._rng.random())
                self.network.sim.schedule(
                    delay, lambda: self._retry(item, attempt + 1)
                )
                return
        self._decide(item)
        self._pressure = 0

    def _retry(self, item: _Pending, attempt: int) -> None:
        now = self.network.sim.now
        if now - item.enqueued_at > self.config.verify_deadline:
            self.metrics.deadline_misses += 1
            self._pressure_tick()
            self._disposition(item, "deadline-missed")
            return
        self._process(item, attempt)

    # ------------------------------------------------------------------
    # The verdict
    # ------------------------------------------------------------------

    def _decide(self, item: _Pending) -> None:
        mod = item.message
        base_rules = self._base_rules(item.switch)
        spec_rules = apply_flowmod(base_rules, mod)
        if _identities(base_rules) == _identities(spec_rules):
            # No-op on the data plane (re-ADD of an identical rule,
            # DELETE of nothing): forward without spending a verification.
            self.metrics.noop_allowed += 1
            self._forward(item, mod, GATE_ALLOW, reason="no-op", violations=())
            return
        violations = self._interception_violations(base_rules, spec_rules, mod)
        structural = bool(violations)
        if not structural:
            violations = self._policy_violations(
                item.switch, base_rules, spec_rules, mod
            )
        if not violations:
            self._forward(item, mod, GATE_ALLOW, reason="verified", violations=())
            return
        # Try the minimal rewrite before refusing.
        if self.policy.repair and mod.command in (
            FlowModCommand.ADD,
            FlowModCommand.MODIFY,
        ):
            repaired = self._try_repair(item, base_rules, mod)
            if repaired is not None:
                self._forward(
                    item,
                    repaired,
                    GATE_REPAIR,
                    reason=f"priority demoted to {repaired.priority}",
                    violations=tuple(violations),
                )
                return
        if (
            self.policy.quarantine
            and not structural
            and mod.command in (FlowModCommand.ADD, FlowModCommand.MODIFY)
        ):
            self._quarantine(item, tuple(violations))
            return
        self._refuse(item, GATE_BLOCK, tuple(violations))

    def _try_repair(
        self, item: _Pending, base_rules: Tuple[SnapshotRule, ...], mod: FlowMod
    ) -> Optional[FlowMod]:
        for priority in self.REPAIR_PRIORITIES:
            if priority >= mod.priority:
                continue
            candidate = dc_replace(mod, priority=priority)
            spec_rules = apply_flowmod(base_rules, candidate)
            if self._interception_violations(base_rules, spec_rules, candidate):
                continue
            if not self._policy_violations(
                item.switch, base_rules, spec_rules, candidate
            ):
                return candidate
        return None

    def _quarantine(self, item: _Pending, violations: Tuple[str, ...]) -> None:
        rule = rule_from_mod(item.message)
        self.shadow.add(
            ShadowEntry(
                time=self.network.sim.now,
                switch=item.switch,
                rule=rule,
                reason="; ".join(violations),
            )
        )
        monitor = self._service.monitor if self._service else None
        if monitor is not None:
            monitor.mark_untrusted(item.switch, rule.identity())
        self.metrics.quarantined += 1
        self._finish(
            item, GATE_QUARANTINE, reason="quarantined", violations=violations
        )
        self._abort_batch(item)

    def _refuse(
        self, item: _Pending, verdict: str, violations: Tuple[str, ...]
    ) -> None:
        self._finish(item, verdict, reason="refused", violations=violations)
        self._abort_batch(item)

    def _forward(
        self,
        item: _Pending,
        mod: FlowMod,
        verdict: str,
        *,
        reason: str,
        violations: Tuple[str, ...],
    ) -> None:
        try:
            item.channel.transmit_to_switch(mod)
        except ChannelError:
            self.metrics.forward_failures += 1
            self._audit(item.switch, "forward-failed", mod, "channel closed")
            self._finish(item, GATE_BLOCK, reason="channel closed", violations=())
            return
        if self.config.speculative_overlay:
            self._overlay.setdefault(item.switch, []).append(
                (self.network.sim.now, mod)
            )
        batch = self._batch_for(item.batch_key, create=True)
        if batch is not None:
            batch.forwarded.append((item.channel, mod))
        if verdict == GATE_REPAIR:
            self.metrics.repaired += 1
        else:
            self.metrics.allowed += 1
        self._record(item, verdict, reason, violations, rule=mod)

    def _finish(
        self,
        item: _Pending,
        verdict: str,
        *,
        reason: str = "",
        violations: Tuple[str, ...] = (),
    ) -> None:
        if verdict == GATE_BLOCK:
            self.metrics.blocked += 1
        self._record(item, verdict, reason, violations, rule=item.message)

    def _record(
        self,
        item: _Pending,
        verdict: str,
        reason: str,
        violations: Tuple[str, ...],
        *,
        rule: FlowMod,
    ) -> None:
        decision = GateDecision(
            sequence=self._next_sequence(),
            time=self.network.sim.now,
            switch=item.switch,
            verdict=verdict,
            rule=describe_mod(rule),
            reason=reason,
            violations=violations,
            state=self.state,
        )
        self.decisions.append(self._signed(decision))

    # ------------------------------------------------------------------
    # Verification backends
    # ------------------------------------------------------------------

    def _base_rules(self, switch: str) -> Tuple[SnapshotRule, ...]:
        monitor = self._require_monitor()
        rules = monitor.current_rules(switch)
        for mod in self._overlay_mods(switch):
            rules = apply_flowmod(rules, mod)
        return rules

    def _overlay_mods(self, switch: str) -> Tuple[FlowMod, ...]:
        entries = self._overlay.get(switch)
        if not entries:
            return ()
        monitor = self._require_monitor()
        mirror = monitor.current_rules(switch)
        now = self.network.sim.now
        kept: List[Tuple[float, FlowMod]] = []
        for when, mod in entries:
            if now - when > self.config.overlay_ttl:
                continue
            # Mirror caught up when applying the mod changes nothing.
            if _identities(apply_flowmod(mirror, mod)) == _identities(mirror):
                continue
            kept.append((when, mod))
        if kept:
            self._overlay[switch] = kept
        else:
            self._overlay.pop(switch, None)
        return tuple(mod for _when, mod in kept)

    def _speculative(
        self, overrides: Dict[str, Tuple[SnapshotRule, ...]]
    ) -> NetworkSnapshot:
        monitor = self._require_monitor()
        self._spec_version -= 1
        return monitor.speculative_snapshot(overrides, version=self._spec_version)

    def _interception_violations(
        self,
        base_rules: Tuple[SnapshotRule, ...],
        spec_rules: Tuple[SnapshotRule, ...],
        mod: FlowMod,
    ) -> List[str]:
        if not self.policy.protect_interception:
            return []
        violations: List[str] = []
        if mod.command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT):
            removed = _identities(base_rules) - _identities(spec_rules)
            for rule in base_rules:
                if rule.identity() in removed and rule.cookie == RVAAS_COOKIE:
                    violations.append(
                        f"interception:deletes punt rule [{rule.match.describe()}]"
                    )
        else:
            punts = any(isinstance(a, ToController) for a in mod.actions)
            if (
                mod.table_id == 0
                and mod.priority >= INTERCEPT_PRIORITY
                and not punts
            ):
                for punt_match in interception_matches():
                    if mod.match.overlaps(punt_match):
                        violations.append(
                            "interception:shadows punt traffic "
                            f"[{punt_match.describe()}] at p{mod.priority}"
                        )
                        break
        return violations

    def _policy_violations(
        self,
        switch: str,
        base_rules: Tuple[SnapshotRule, ...],
        spec_rules: Tuple[SnapshotRule, ...],
        mod: Optional[FlowMod] = None,
    ) -> List[str]:
        if not self.policy.clients:
            return []
        overrides = {
            name: self._base_rules(name)
            for name in list(self._overlay)
            if name != switch
        }
        base_overrides = dict(overrides)
        # Always pin the caller's view of the decided switch: base_rules
        # may differ from the raw mirror (overlay applied, or a backlog
        # re-verification diffing around an already-installed rule).
        base_overrides[switch] = base_rules
        base_snap = self._speculative(base_overrides)
        spec_overrides = dict(overrides)
        spec_overrides[switch] = spec_rules
        spec_snap = self._speculative(spec_overrides)
        base = self._baseline_answers(base_snap)
        violations: List[str] = []
        spec_answers: Dict[str, Dict[str, object]] = {}
        reuse_loops = mod is not None and _cannot_create_loops(mod)
        for cp in self.policy.clients:
            base_ans = base[cp.client]
            spec_ans = self._client_answers(
                spec_snap,
                cp,
                loops_reuse=(
                    base_ans.get("loops") if reuse_loops else None  # type: ignore[arg-type]
                ),
            )
            spec_answers[cp.client] = spec_ans
            violations.extend(self._compare(cp, base_ans, spec_ans))
        if not violations:
            # A clean speculative state is about to become the real one
            # (the rule forwards, the mirror catches up): remembering its
            # answers makes the next decision's baseline a cache hit, so
            # steady-state churn costs one verification sweep, not two.
            self._remember_answers(spec_snap.content_hash(), spec_answers)
        return violations

    def _baseline_answers(
        self, base_snap: NetworkSnapshot
    ) -> Dict[str, Dict[str, object]]:
        content = base_snap.content_hash()
        cached = self._base_answers.get(content)
        if cached is not None:
            return cached
        self._pin(content)
        answers = {
            cp.client: self._client_answers(base_snap, cp)
            for cp in self.policy.clients
        }
        self._remember_answers(content, answers)
        return answers

    def _remember_answers(
        self, content: str, answers: Dict[str, Dict[str, object]]
    ) -> None:
        if len(self._base_answers) >= 8:
            self._base_answers.pop(next(iter(self._base_answers)))
        self._base_answers[content] = answers

    def _client_answers(
        self,
        snapshot: NetworkSnapshot,
        cp: ClientGatePolicy,
        *,
        loops_reuse: Optional[frozenset] = None,
    ) -> Dict[str, object]:
        service = self._service
        assert service is not None
        registration = service.registrations[cp.client]
        verifier = service.verifier
        answers: Dict[str, object] = {}
        if cp.protect_delivery:
            # Per host, not per client: the client-level union would mask
            # a blackhole of one host pair behind another host's intact
            # reachability.
            per_host: Dict[str, frozenset] = {}
            for host in registration.hosts:
                sub = dc_replace(registration, hosts=(host,))
                per_host[host.name] = frozenset(
                    verifier.reachable_destinations(sub, snapshot).endpoints
                )
            answers["endpoints"] = per_host
        if cp.isolation:
            answers["violating"] = frozenset(
                verifier.isolation(registration, snapshot).violating_endpoints
            )
        if cp.pin_traversal:
            answers["traversal"] = verifier.traversal_switches(
                registration, snapshot
            )
        if cp.loop_free:
            if loops_reuse is not None:
                # The FlowMod provably cannot create a loop (drop-only
                # ADD/MODIFY): spec loops are a subset of base loops, so
                # the diff is empty by construction — skip the full
                # propagation and carry the baseline answer forward.
                answers["loops"] = loops_reuse
            else:
                answers["loops"] = frozenset(
                    verifier.forwarding_loops(registration, snapshot)
                )
        if cp.forbidden_regions:
            answers["regions"] = frozenset(
                verifier.waypoint_avoidance(
                    registration, snapshot, cp.forbidden_regions
                ).violating_regions
            )
        return answers

    @staticmethod
    def _compare(
        cp: ClientGatePolicy,
        base: Dict[str, object],
        spec: Dict[str, object],
    ) -> List[str]:
        violations: List[str] = []
        if cp.protect_delivery:
            base_hosts: Dict[str, frozenset] = base["endpoints"]  # type: ignore[assignment]
            spec_hosts: Dict[str, frozenset] = spec["endpoints"]  # type: ignore[assignment]
            for host_name, had in sorted(base_hosts.items()):
                lost = had - spec_hosts.get(host_name, frozenset())
                if lost:
                    where = sorted((e.switch, e.port) for e in lost)
                    violations.append(
                        f"delivery:{cp.client}:{host_name}:lost={where}"
                    )
        if cp.isolation:
            fresh = spec["violating"] - base["violating"]  # type: ignore[operator]
            if fresh:
                where = sorted((e.switch, e.port) for e in fresh)
                violations.append(f"isolation:{cp.client}:new={where}")
        if cp.pin_traversal:
            detour = spec["traversal"] - base["traversal"]  # type: ignore[operator]
            if detour:
                violations.append(
                    f"traversal:{cp.client}:new={sorted(detour)}"
                )
        if cp.loop_free:
            loops = spec["loops"] - base["loops"]  # type: ignore[operator]
            if loops:
                violations.append(f"loop:{cp.client}:at={sorted(loops)}")
        if cp.forbidden_regions:
            entered = spec["regions"] - base["regions"]  # type: ignore[operator]
            if entered:
                violations.append(f"geo:{cp.client}:regions={sorted(entered)}")
        return violations

    def _pin(self, content: str) -> None:
        service = self._service
        if service is None or content == self._pinned_content:
            return
        if self._pinned_content is not None:
            service.engine.unpin_content(self._pinned_content)
        service.engine.pin_content(content)
        self._pinned_content = content

    # ------------------------------------------------------------------
    # Batches and rollback
    # ------------------------------------------------------------------

    def _batch_key(self, channel: ControlChannel) -> Optional[tuple]:
        if not self.policy.transactional:
            return None
        app = channel.controller_app
        txn = getattr(app, "current_transaction", None)
        if txn is None:
            return None
        return (channel.controller_end.name, txn)

    def _batch_for(
        self, key: Optional[tuple], *, create: bool = False
    ) -> Optional[_Batch]:
        if key is None:
            return None
        batch = self._batches.get(key)
        if batch is None and create:
            batch = _Batch(key=key)
            self._batches[key] = batch
        return batch

    def _abort_batch(self, item: _Pending) -> None:
        batch = self._batch_for(item.batch_key, create=item.batch_key is not None)
        if batch is None or batch.aborted:
            return
        batch.aborted = True
        self.metrics.batches_aborted += 1
        for channel, mod in reversed(batch.forwarded):
            self._rollback_one(channel, channel.switch_end.name, mod)
        batch.forwarded.clear()

    def _rollback_one(
        self, channel: ControlChannel, switch: str, mod: FlowMod
    ) -> None:
        if mod.command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT):
            # Forwarded deletes cannot be undone without the deleted
            # rule's full definition; record the debt honestly.
            self._audit(switch, "rollback-skipped", mod, "cannot restore a delete")
            return
        undo = FlowMod(
            command=FlowModCommand.DELETE_STRICT,
            match=mod.match,
            priority=mod.priority,
            table_id=mod.table_id,
        )
        entries = self._overlay.get(switch)
        if entries:
            self._overlay[switch] = [(w, m) for w, m in entries if m is not mod]
        try:
            channel.transmit_to_switch(undo)
        except ChannelError:
            self.metrics.rollbacks_deferred += 1
            self._pending_rollbacks.append((channel, switch, undo))
            self._audit(switch, "rollback-deferred", mod, "channel closed")
            return
        self.metrics.rollbacks += 1
        self._audit(switch, "rollback", mod, "transaction aborted")

    # ------------------------------------------------------------------
    # Degradation and recovery
    # ------------------------------------------------------------------

    def _check_health(self) -> None:
        if self.state != GATE_ACTIVE or self._service is None:
            return
        monitor = self._service.monitor
        if monitor is None:
            return
        lost = monitor.health.lost()
        if lost:
            self._enter_degraded(f"control channels lost: {', '.join(lost)}")

    def _pressure_tick(self) -> None:
        self._pressure += 1
        self._last_pressure_at = self.network.sim.now
        if self._pressure >= self.config.degrade_after and self.state == GATE_ACTIVE:
            self._enter_degraded(
                f"{self._pressure} consecutive verification pressure events"
            )

    def _enter_degraded(self, reason: str) -> None:
        self.state = GATE_DEGRADED
        self.metrics.degraded_entries += 1
        if self.policy.fail_open:
            self.metrics.fail_open_windows += 1
        self._audit("", "degraded", None, reason)
        # Everything queued takes the degraded disposition immediately;
        # holding it for a verdict that is not coming would be worse.
        drained, self._queue = self._queue, []
        for queued in drained:
            self._disposition(queued, "gate-degraded")
        self._schedule_probe()

    def _schedule_probe(self) -> None:
        if self._probe_scheduled:
            return
        self._probe_scheduled = True
        self.network.sim.schedule(self.config.recover_after, self._recovery_probe)

    def _recovery_probe(self) -> None:
        self._probe_scheduled = False
        if self.state != GATE_DEGRADED:
            return
        monitor = self._service.monitor if self._service else None
        lost = monitor.health.lost() if monitor is not None else ()
        quiet = (
            self.network.sim.now - self._last_pressure_at
            >= self.config.recover_after
        )
        if lost or not quiet:
            self._schedule_probe()
            return
        self._recover()

    def _recover(self) -> None:
        self.state = GATE_RECOVERING
        self._audit("", "recovering", None, "draining unverified backlog")
        backlog, self._backlog = self._backlog, []
        for entry in backlog:
            self._reverify(entry)
        rollbacks, self._pending_rollbacks = self._pending_rollbacks, []
        for channel, switch, undo in rollbacks:
            try:
                channel.transmit_to_switch(undo)
            except ChannelError:
                self._pending_rollbacks.append((channel, switch, undo))
                continue
            self.metrics.rollbacks += 1
            self._audit(switch, "rollback", undo, "deferred rollback flushed")
        self.metrics.recovery_drains += 1
        self.state = GATE_ACTIVE
        self._pressure = 0
        self._audit("", "recovered", None, "gate active")

    def _reverify(self, entry: _BacklogEntry) -> None:
        """Re-check one pass-through rule against the *current* state."""
        mod = entry.message
        monitor = self._require_monitor()
        mirror = monitor.current_rules(entry.switch)
        if mod.command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT):
            # A delete cannot be re-derived; check the surviving state
            # against the contracts in absolute terms instead.
            violations = self._absolute_violations()
        else:
            identity = rule_from_mod(mod).identity()
            minus = tuple(r for r in mirror if r.identity() != identity)
            plus = apply_flowmod(minus, mod)
            violations = self._interception_violations(minus, plus, mod)
            if not violations:
                violations = self._policy_violations(entry.switch, minus, plus, mod)
        if not violations:
            self.metrics.backlog_reverified += 1
            self._audit(entry.switch, "reverify-clean", mod, "pass-through upheld")
            return
        self.metrics.backlog_remediated += 1
        self._audit(
            entry.switch, "reverify-violation", mod, "; ".join(violations)
        )
        if mod.command in (FlowModCommand.ADD, FlowModCommand.MODIFY):
            rule = rule_from_mod(mod)
            self.shadow.add(
                ShadowEntry(
                    time=self.network.sim.now,
                    switch=entry.switch,
                    rule=rule,
                    reason="; ".join(violations),
                )
            )
            monitor.mark_untrusted(entry.switch, rule.identity())
            undo = FlowMod(
                command=FlowModCommand.DELETE_STRICT,
                match=mod.match,
                priority=mod.priority,
                table_id=mod.table_id,
            )
            try:
                entry.channel.transmit_to_switch(undo)
                self.metrics.rollbacks += 1
                self._audit(entry.switch, "rollback", mod, "reverify remediation")
            except ChannelError:
                self.metrics.rollbacks_deferred += 1
                self._pending_rollbacks.append((entry.channel, entry.switch, undo))

    def _absolute_violations(self) -> List[str]:
        """Contract checks on the live mirror (no base to diff against)."""
        service = self._service
        assert service is not None
        snapshot = self._speculative({})
        violations: List[str] = []
        for cp in self.policy.clients:
            if not cp.isolation:
                continue
            registration = service.registrations[cp.client]
            answer = service.verifier.isolation(registration, snapshot)
            if not answer.isolated:
                where = sorted(
                    (e.switch, e.port) for e in answer.violating_endpoints
                )
                violations.append(f"isolation:{cp.client}:new={where}")
        return violations

    # ------------------------------------------------------------------
    # Dispositions (what happens when verification cannot)
    # ------------------------------------------------------------------

    def _disposition(self, item: _Pending, reason: str) -> None:
        """Fail-open or fail-closed an item the gate could not verify."""
        if self.policy.fail_open:
            try:
                item.channel.transmit_to_switch(item.message)
            except ChannelError:
                self.metrics.forward_failures += 1
                self._audit(item.switch, "forward-failed", item.message, reason)
                return
            self.metrics.passed_through += 1
            self._audit(item.switch, "pass-through", item.message, reason)
            self._backlog.append(
                _BacklogEntry(
                    channel=item.channel,
                    message=item.message,
                    switch=item.switch,
                    forwarded_at=self.network.sim.now,
                )
            )
            if self.config.speculative_overlay:
                self._overlay.setdefault(item.switch, []).append(
                    (self.network.sim.now, item.message)
                )
            batch = self._batch_for(item.batch_key, create=True)
            if batch is not None:
                batch.forwarded.append((item.channel, item.message))
        else:
            self.metrics.fail_closed_rejects += 1
            self._audit(item.switch, "fail-closed-reject", item.message, reason)
            self._abort_batch(item)

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------

    def _audit(
        self, switch: str, event: str, mod: Optional[FlowMod], reason: str
    ) -> None:
        record = GateAuditRecord(
            sequence=self._next_sequence(),
            time=self.network.sim.now,
            switch=switch,
            event=event,
            rule=describe_mod(mod) if mod is not None else "",
            reason=reason,
            state=self.state,
        )
        self.audit_log.append(self._signed(record))

    def _signed(self, record):
        service = self._service
        if service is None:
            return record
        return dc_replace(record, signature=_sign(record, service.keypair.private))

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    def _require_monitor(self):
        assert self._service is not None and self._service.monitor is not None, (
            "gate used before bind_service()/service.start()"
        )
        return self._service.monitor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        counters = self.metrics.snapshot_counters()
        counters["state"] = self.state
        counters["decisions"] = len(self.decisions)
        counters["audit_records"] = len(self.audit_log)
        counters["shadow_entries"] = len(self.shadow)
        counters["pending"] = len(self._queue)
        counters["backlog"] = len(self._backlog)
        return counters

    def decisions_for(self, switch: str) -> Tuple[GateDecision, ...]:
        return tuple(d for d in self.decisions if d.switch == switch)
