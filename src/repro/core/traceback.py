"""Attack traceback over snapshot history (paper §IV-C b).

"A slightly more complex service may also maintain some history of the
recent past, allowing RVaaS for example to traceback the ingress port of
an attack."

Given a victim host and the retained snapshot history, the traceback
replays the logical verification over every historical configuration to
reconstruct *when* undeclared connectivity toward the victim existed,
*which ingress ports* could have originated it, and *which rules*
enabled it (the rule-signature diff at the transition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.history import SnapshotHistory
from repro.core.protocol import ClientRegistration
from repro.core.queries import Endpoint
from repro.core.verifier import LogicalVerifier

PortRef = Tuple[str, int]


@dataclass(frozen=True)
class ExposureWindow:
    """A contiguous interval during which the victim was exposed."""

    opened_at: float
    closed_at: Optional[float]  # None = still open at the latest entry
    ingress_ports: Tuple[Endpoint, ...]
    enabling_rules: FrozenSet[tuple]  # signatures added when it opened
    disabling_rules: FrozenSet[tuple]  # signatures removed when it closed

    @property
    def still_open(self) -> bool:
        return self.closed_at is None

    def duration(self, now: Optional[float] = None) -> Optional[float]:
        end = self.closed_at if self.closed_at is not None else now
        if end is None:
            return None
        return end - self.opened_at


@dataclass
class TracebackReport:
    """Everything the history reveals about attacks on one victim host."""

    victim_client: str
    victim_host: str
    windows: List[ExposureWindow] = field(default_factory=list)
    entries_analyzed: int = 0

    @property
    def ever_exposed(self) -> bool:
        return bool(self.windows)

    def ingress_ports(self) -> FrozenSet[PortRef]:
        ports: set[PortRef] = set()
        for window in self.windows:
            ports.update((e.switch, e.port) for e in window.ingress_ports)
        return frozenset(ports)


class AttackTraceback:
    """Replays history snapshots to localise attacks in time and space."""

    def __init__(
        self,
        history: SnapshotHistory,
        registrations: Dict[str, ClientRegistration],
    ) -> None:
        if not history.retain_snapshots:
            raise ValueError(
                "traceback requires a history created with retain_snapshots=True"
            )
        self.history = history
        self.registrations = dict(registrations)
        self.verifier = LogicalVerifier(self.registrations)

    # ------------------------------------------------------------------
    # Core analysis
    # ------------------------------------------------------------------

    def _undeclared_sources(
        self, registration: ClientRegistration, snapshot, victim_host: str
    ) -> Tuple[Endpoint, ...]:
        """Sources that could reach the victim but are not declared."""
        answer = self.verifier.reaching_sources(
            registration, snapshot, destination_host=victim_host
        )
        declared = {
            self.verifier.resolve_endpoint(*host.access_point)
            for host in registration.hosts
        }
        return tuple(
            sorted(
                set(answer.endpoints) - declared,
                key=lambda e: (e.switch, e.port),
            )
        )

    def trace(self, client: str, victim_host: str) -> TracebackReport:
        """Reconstruct every exposure window for ``victim_host``."""
        registration = self.registrations[client]
        if all(host.name != victim_host for host in registration.hosts):
            raise KeyError(f"{victim_host!r} is not one of {client}'s hosts")
        report = TracebackReport(victim_client=client, victim_host=victim_host)

        open_window: Optional[dict] = None
        previous_signatures: Optional[FrozenSet[tuple]] = None
        for entry in self.history.entries():
            if entry.snapshot is None:
                continue
            report.entries_analyzed += 1
            undeclared = self._undeclared_sources(
                registration, entry.snapshot, victim_host
            )
            signatures = entry.rule_signatures
            if undeclared and open_window is None:
                added = (
                    signatures - previous_signatures
                    if previous_signatures is not None
                    else frozenset()
                )
                open_window = {
                    "opened_at": entry.taken_at,
                    "ingress": set(undeclared),
                    "enabling": frozenset(added),
                }
            elif undeclared and open_window is not None:
                open_window["ingress"].update(undeclared)
            elif not undeclared and open_window is not None:
                removed = (
                    previous_signatures - signatures
                    if previous_signatures is not None
                    else frozenset()
                )
                report.windows.append(
                    ExposureWindow(
                        opened_at=open_window["opened_at"],
                        closed_at=entry.taken_at,
                        ingress_ports=tuple(
                            sorted(
                                open_window["ingress"],
                                key=lambda e: (e.switch, e.port),
                            )
                        ),
                        enabling_rules=open_window["enabling"],
                        disabling_rules=frozenset(removed),
                    )
                )
                open_window = None
            previous_signatures = signatures

        if open_window is not None:
            report.windows.append(
                ExposureWindow(
                    opened_at=open_window["opened_at"],
                    closed_at=None,
                    ingress_ports=tuple(
                        sorted(
                            open_window["ingress"], key=lambda e: (e.switch, e.port)
                        )
                    ),
                    enabling_rules=open_window["enabling"],
                    disabling_rules=frozenset(),
                )
            )
        return report

    def trace_all(self, client: str) -> Dict[str, TracebackReport]:
        """Traceback every host of one client."""
        registration = self.registrations[client]
        return {
            host.name: self.trace(client, host.name)
            for host in registration.hosts
        }
