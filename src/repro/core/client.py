"""Client-side software: the query library and the auth responder.

:class:`RVaaSClient` is the library a client runs on (one of) its hosts:
it seals queries to the RVaaS public key, sends them as magic-header
packets, and verifies/decrypts the signed integrity replies.

:class:`AuthResponder` is the §IV-A3 user-space daemon: "clients run a
software which responds to our authentication requests, in user space,
publishing themselves by sending a UDP packet".  :class:`SilentResponder`
models a host that ignores challenges — the case the issued-request count
in the reply exposes.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.protocol import (
    AuthChallenge,
    AuthReply,
    QueryRequest,
    QueryResponse,
    SealedNotice,
    SealedResponse,
    ViolationNotice,
    seal_request,
    sign_auth_reply,
    unseal_notice,
    unseal_response,
    verify_challenge,
)
from repro.core.queries import Query
from repro.crypto.enclave import AttestationVerifier, Measurement, Quote
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.sign import SignatureError
from repro.dataplane.host import Host
from repro.netlib.constants import RVAAS_AUTH_PORT, RVAAS_MAGIC_PORT
from repro.netlib.packet import Packet

from repro.core.inband import RVAAS_SERVICE_IP


@dataclass
class QueryHandle:
    """Tracks one outstanding query until its verified answer arrives."""

    nonce: int
    query: Query
    sent_at: float
    response: Optional[QueryResponse] = None
    answered_at: Optional[float] = None
    error: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.response is not None or self.error is not None

    @property
    def latency(self) -> Optional[float]:
        if self.answered_at is None:
            return None
        return self.answered_at - self.sent_at


class AttestationFailure(Exception):
    """The service failed remote attestation — do not trust its key."""


class RVaaSClient:
    """The client library bound to one host."""

    def __init__(
        self,
        host: Host,
        client_name: str,
        keypair: KeyPair,
        rvaas_public: PublicKey,
        *,
        rng: Optional[random.Random] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.host = host
        self.client_name = client_name
        self.keypair = keypair
        self.rvaas_public = rvaas_public
        self.rng = rng or random.Random(hash(client_name) & 0xFFFF)
        self._clock = clock or (lambda: 0.0)
        self._pending: Dict[int, QueryHandle] = {}
        self._callbacks: Dict[int, Callable[[QueryHandle], None]] = {}
        self.completed: List[QueryHandle] = []
        self.notices: List[ViolationNotice] = []
        self._notice_callbacks: List[Callable[[ViolationNotice], None]] = []
        self._nonces = itertools.count(self.rng.getrandbits(32) << 8)
        host.register_udp_handler(RVAAS_MAGIC_PORT, self._on_response_packet)

    # ------------------------------------------------------------------
    # Attestation (establishing trust in the service key)
    # ------------------------------------------------------------------

    @staticmethod
    def verify_service(
        quote: Quote,
        service_key: PublicKey,
        expected_measurement: Measurement,
        verifier: AttestationVerifier,
    ) -> None:
        """Check the quote proves the genuine RVaaS code holds ``service_key``.

        Raises :class:`AttestationFailure` otherwise.  Clients call this
        once before trusting any response signature (§IV-A: "Through
        attestation, the client can verify that RVaaS is the one that
        securely responds to its queries").
        """
        from repro.crypto.enclave import AttestationError

        try:
            verifier.verify_quote(quote, expected_measurement)
        except AttestationError as exc:
            raise AttestationFailure(str(exc)) from exc
        if quote.report_data != service_key.fingerprint():
            raise AttestationFailure(
                "quote does not bind the presented service key"
            )

    # ------------------------------------------------------------------
    # Query submission (Fig. 1, step 1)
    # ------------------------------------------------------------------

    def submit(
        self,
        query: Query,
        on_answer: Optional[Callable[[QueryHandle], None]] = None,
    ) -> QueryHandle:
        """Seal and send one query; the handle resolves when answered."""
        nonce = next(self._nonces)
        request = QueryRequest(
            client=self.client_name,
            query=query,
            nonce=nonce,
            sent_at=self._clock(),
        )
        sealed = seal_request(
            request, self.rvaas_public, self.keypair.private, self.rng
        )
        handle = QueryHandle(nonce=nonce, query=query, sent_at=self._clock())
        self._pending[nonce] = handle
        if on_answer is not None:
            self._callbacks[nonce] = on_answer
        self.host.send_udp(
            RVAAS_SERVICE_IP,
            RVAAS_MAGIC_PORT,
            sealed,
            sport=RVAAS_MAGIC_PORT,
        )
        return handle

    # ------------------------------------------------------------------
    # Response handling (Fig. 2, step 4)
    # ------------------------------------------------------------------

    def on_notice(self, callback: Callable[[ViolationNotice], None]) -> None:
        """Register a callback for pushed violation notices."""
        self._notice_callbacks.append(callback)

    def _on_response_packet(self, packet: Packet) -> None:
        payload = packet.payload
        if isinstance(payload, SealedNotice):
            self._on_notice_packet(payload)
            return
        if not isinstance(payload, SealedResponse):
            return
        try:
            response = unseal_response(
                payload, self.keypair.private, self.rvaas_public
            )
        except (SignatureError, ValueError):
            # Forged or corrupted reply: ignore; the matching handle stays
            # pending, which the client observes as a timeout.
            return
        handle = self._pending.pop(response.nonce, None)
        if handle is None:
            return
        handle.response = response
        handle.answered_at = self._clock()
        self.completed.append(handle)
        callback = self._callbacks.pop(response.nonce, None)
        if callback is not None:
            callback(handle)

    def _on_notice_packet(self, sealed: SealedNotice) -> None:
        try:
            notice = unseal_notice(
                sealed, self.keypair.private, self.rvaas_public
            )
        except (SignatureError, ValueError):
            return  # forged push alert: ignored
        if notice.client != self.client_name:
            return
        self.notices.append(notice)
        for callback in self._notice_callbacks:
            callback(notice)

    def pending_count(self) -> int:
        return len(self._pending)


class AuthResponder:
    """The per-host daemon answering RVaaS authentication requests."""

    def __init__(
        self,
        host: Host,
        client_name: str,
        keypair: KeyPair,
        rvaas_public: PublicKey,
    ) -> None:
        self.host = host
        self.client_name = client_name
        self.keypair = keypair
        self.rvaas_public = rvaas_public
        self.challenges_answered = 0
        self.challenges_rejected = 0
        host.register_udp_handler(RVAAS_AUTH_PORT, self._on_challenge)

    def _on_challenge(self, packet: Packet) -> None:
        challenge = packet.payload
        if not isinstance(challenge, AuthChallenge):
            return
        if not verify_challenge(challenge, self.rvaas_public):
            # Not from the genuine service — never disclose presence to
            # an unauthenticated prober (topology confidentiality).
            self.challenges_rejected += 1
            return
        reply = sign_auth_reply(
            AuthReply(
                host=self.host.name,
                client=self.client_name,
                nonce=challenge.nonce,
                round_id=challenge.round_id,
            ),
            self.keypair.private,
        )
        self.challenges_answered += 1
        self.host.send_udp(
            RVAAS_SERVICE_IP,
            RVAAS_AUTH_PORT,
            reply,
            sport=RVAAS_AUTH_PORT,
        )


class SilentResponder:
    """A host that receives challenges but never answers (untrusted client).

    The paper's model allows clients that "may for example not inform the
    sender about having received packets"; the issued-request count in
    the integrity reply makes such silence visible.
    """

    def __init__(self, host: Host) -> None:
        self.host = host
        self.challenges_ignored = 0
        host.register_udp_handler(RVAAS_AUTH_PORT, self._on_challenge)

    def _on_challenge(self, packet: Packet) -> None:
        if isinstance(packet.payload, AuthChallenge):
            self.challenges_ignored += 1
