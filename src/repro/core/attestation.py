"""Binding the RVaaS service to an attested enclave (§I-B, §IV-A).

The deployment story: the provider (or a certification authority)
provisions a secure server; the RVaaS application is loaded into an
enclave; the enclave generates the service key pair *inside* and quotes
its own measurement with the key fingerprint as report data.  Clients
verify the quote before trusting any response signature; the provider
verifies the same quote to convince itself "the correct RVaaS application
is operating on the server, and not a fake one that may leak sensitive
information".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.enclave import (
    AttestationVerifier,
    Enclave,
    Measurement,
    Quote,
)
from repro.crypto.keys import KeyPair, generate_keypair

#: The code identity of this reproduction's RVaaS build; clients pin it.
RVAAS_CODE_IDENTITY = "rvaas-core-1.0.0"


@dataclass(frozen=True)
class AttestedService:
    """Everything a freshly attested RVaaS deployment hands out."""

    enclave: Enclave
    service_keypair: KeyPair
    quote: Quote

    @property
    def measurement(self) -> Measurement:
        return self.enclave.measurement


def expected_measurement() -> Measurement:
    """The measurement clients should pin for this RVaaS version."""
    return Measurement.of_code(RVAAS_CODE_IDENTITY)


def setup_attested_service(
    attestation_key: KeyPair,
    rng: random.Random,
    *,
    code_identity: str = RVAAS_CODE_IDENTITY,
    service_name: str = "rvaas",
) -> AttestedService:
    """Load the RVaaS enclave and produce its key-binding quote."""
    enclave = Enclave(code_identity, attestation_key)
    service_keypair = enclave.run(
        generate_keypair, service_name, rng=rng
    )
    quote = enclave.quote(report_data=service_keypair.public.fingerprint())
    return AttestedService(
        enclave=enclave, service_keypair=service_keypair, quote=quote
    )


def provider_accepts(
    service: AttestedService, verifier: AttestationVerifier
) -> bool:
    """The provider-side check before hosting the server (§IV-A)."""
    from repro.crypto.enclave import AttestationError

    try:
        verifier.verify_quote(service.quote, expected_measurement())
    except AttestationError:
        return False
    return service.quote.report_data == service.service_keypair.public.fingerprint()
