"""Routing-Verification-as-a-Service — the paper's contribution.

The package wires together the three mechanisms of §IV-A:

* :mod:`~repro.core.monitor` — passive + randomly-timed active
  configuration monitoring over the RVaaS controller's own secure
  OpenFlow sessions;
* :mod:`~repro.core.verifier` — logical data-plane verification (HSA)
  answering the client query taxonomy of :mod:`~repro.core.queries`;
* :mod:`~repro.core.inband` — in-band client interaction: magic-header
  query interception, authentication-request rounds, signed responses.

:class:`~repro.core.service.RVaaSController` is the deployable artifact:
a stand-alone, attested controller (:mod:`~repro.core.attestation`)
independent of the provider's control plane.
:class:`~repro.core.client.RVaaSClient` is the client-side library;
:class:`~repro.core.multiprovider.RVaaSFederation` chains services across
provider domains (§IV-C).
"""

from repro.core.attestation import AttestedService, setup_attested_service
from repro.core.client import AuthResponder, RVaaSClient, SilentResponder
from repro.core.emulation import EmulationVerifier, ShadowNetwork
from repro.core.engine import EngineMetrics, SnapshotDelta, VerificationEngine
from repro.core.history import SnapshotHistory
from repro.core.replication import (
    CompromisedReplica,
    QuorumError,
    QuorumResult,
    ReplicatedRVaaS,
)
from repro.core.traceback import AttackTraceback, ExposureWindow, TracebackReport
from repro.core.monitor import ConfigurationMonitor, MonitorMode
from repro.core.multiprovider import ProviderDomain, RVaaSFederation
from repro.core.protocol import (
    AuthChallenge,
    AuthReply,
    ClientRegistration,
    QueryRequest,
    QueryResponse,
)
from repro.core.queries import (
    Answer,
    BandwidthQuery,
    ExposureHistoryQuery,
    FairnessQuery,
    GeoLocationQuery,
    IsolationQuery,
    PathLengthQuery,
    Query,
    ReachableDestinationsQuery,
    ReachingSourcesQuery,
    TransferFunctionQuery,
    WaypointAvoidanceQuery,
)
from repro.core.service import RVaaSController, TamperAlarm
from repro.core.snapshot import NetworkSnapshot
from repro.core.verifier import LogicalVerifier

__all__ = [
    "Answer",
    "BandwidthQuery",
    "AttackTraceback",
    "AttestedService",
    "AuthChallenge",
    "AuthReply",
    "AuthResponder",
    "ClientRegistration",
    "CompromisedReplica",
    "ConfigurationMonitor",
    "EmulationVerifier",
    "EngineMetrics",
    "SnapshotDelta",
    "VerificationEngine",
    "ExposureHistoryQuery",
    "ExposureWindow",
    "QuorumError",
    "QuorumResult",
    "ReplicatedRVaaS",
    "ShadowNetwork",
    "TracebackReport",
    "FairnessQuery",
    "GeoLocationQuery",
    "IsolationQuery",
    "LogicalVerifier",
    "MonitorMode",
    "NetworkSnapshot",
    "PathLengthQuery",
    "ProviderDomain",
    "Query",
    "QueryRequest",
    "QueryResponse",
    "RVaaSClient",
    "RVaaSController",
    "RVaaSFederation",
    "ReachableDestinationsQuery",
    "ReachingSourcesQuery",
    "SilentResponder",
    "SnapshotHistory",
    "TamperAlarm",
    "TransferFunctionQuery",
    "WaypointAvoidanceQuery",
    "setup_attested_service",
]
