"""Replicated independent RVaaS servers (paper §I-A, §IV-A).

"To provide the RVaaS service, it is sufficient to deploy a single
secure server ...; additional (independent) servers can increase the
security further."  And: "different entities (e.g., a certification
authority) may provide different independent controllers, reducing the
attack surface further."

This module deploys *k* fully independent RVaaS controllers — separate
keys, enclaves, monitors, and OpenFlow sessions — on the same network,
and lets a client cross-check their answers.  Because the data plane is
the shared ground truth, honest replicas agree; a replica whose answers
deviate (compromised, buggy, or fed a stale snapshot) is out-voted and
named.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import MonitorMode
from repro.core.protocol import ClientRegistration
from repro.core.queries import Query
from repro.core.service import RVaaSController
from repro.crypto.keys import generate_keypair
from repro.crypto.sign import canonical_bytes
from repro.dataplane.network import Network


@dataclass
class QuorumResult:
    """Outcome of one cross-checked query."""

    answer: object  # the majority answer
    agreeing: Tuple[str, ...]  # replica names behind the majority
    dissenting: Tuple[str, ...]  # replicas whose answer deviated
    unanimous: bool
    #: replicas that raised instead of answering (e.g. mid-outage);
    #: unavailable is not the same as dissenting — a crashed replica
    #: must not be counted as voting against the majority
    unavailable: Tuple[str, ...] = ()

    @property
    def suspicious_replicas(self) -> Tuple[str, ...]:
        return self.dissenting


class QuorumError(Exception):
    """No majority answer exists (split verdicts, or nobody answered)."""


class ReplicatedRVaaS:
    """A set of independent verification servers plus quorum logic."""

    def __init__(self, replicas: Sequence[RVaaSController]) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas = list(replicas)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    @classmethod
    def deploy(
        cls,
        network: Network,
        registrations: Dict[str, ClientRegistration],
        *,
        count: int = 3,
        seed: int = 0,
        monitor_mode: MonitorMode = MonitorMode.HYBRID,
        mean_poll_interval: float = 5.0,
    ) -> "ReplicatedRVaaS":
        """Start ``count`` independent services on ``network``.

        Each replica gets its own key pair (as if operated by a distinct
        certification authority) and its own secure sessions to every
        switch.
        """
        rng = random.Random(seed ^ 0x5EC5)
        replicas = []
        for index in range(count):
            service = RVaaSController(
                generate_keypair(f"rvaas-replica-{index}", rng=rng),
                registrations,
                name=f"rvaas-{index}",
                monitor_mode=monitor_mode,
                mean_poll_interval=mean_poll_interval,
                record_history=False,
            )
            service.start(network)
            replicas.append(service)
        return cls(replicas)

    # ------------------------------------------------------------------
    # Cross-checked queries
    # ------------------------------------------------------------------

    def cross_check(self, client: str, query: Query) -> QuorumResult:
        """Ask every replica and majority-vote the canonicalised answers.

        A replica that raises (crashed, restarting, snapshot machinery
        wedged) is reported as *unavailable* and excluded from the vote
        — one faulty replica must not take the whole quorum down.
        """
        answers: List[Tuple[str, object, bytes]] = []
        unavailable: List[str] = []
        for replica in self.replicas:
            try:
                answer = replica.answer_locally(client, query)
            except Exception:  # noqa: BLE001 — isolate per replica
                unavailable.append(replica.name)
                continue
            answers.append((replica.name, answer, canonical_bytes(answer)))
        if not answers:
            raise QuorumError(
                "no replica answered (unavailable: " + ",".join(unavailable) + ")"
            )
        buckets: Dict[bytes, List[int]] = {}
        for index, (_name, _answer, digest) in enumerate(answers):
            buckets.setdefault(digest, []).append(index)
        ranked = sorted(buckets.values(), key=len, reverse=True)
        majority = ranked[0]
        if len(ranked) > 1 and len(ranked[0]) == len(ranked[1]):
            raise QuorumError(
                "no majority: replicas split "
                + " vs ".join(
                    ",".join(answers[i][0] for i in group) for group in ranked
                )
            )
        agreeing = tuple(answers[i][0] for i in majority)
        dissenting = tuple(
            name
            for index, (name, _a, _d) in enumerate(answers)
            if index not in majority
        )
        return QuorumResult(
            answer=answers[majority[0]][1],
            agreeing=agreeing,
            dissenting=dissenting,
            unanimous=not dissenting,
            unavailable=tuple(unavailable),
        )

    def __len__(self) -> int:
        return len(self.replicas)


class CompromisedReplica(RVaaSController):
    """A verification server that lies: it doctors every answer.

    Models the residual risk the paper's replication argument addresses:
    even the *verifier* may be subverted.  This replica claims isolation
    holds and hides violating endpoints, whatever the snapshot says.
    """

    def answer_locally(self, client: str, query: Query):
        from dataclasses import replace

        from repro.core.queries import (
            IsolationAnswer,
            ReachableDestinationsAnswer,
        )

        answer = super().answer_locally(client, query)
        if isinstance(answer, IsolationAnswer):
            return replace(
                answer, isolated=True, violating_endpoints=()
            )
        if isinstance(answer, ReachableDestinationsAnswer):
            declared = {
                self.verifier.resolve_endpoint(*host.access_point)
                for host in self.registrations[client].hosts
            }
            return replace(
                answer,
                endpoints=tuple(
                    e for e in answer.endpoints if e in declared
                ),
            )
        return answer
