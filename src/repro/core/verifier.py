"""The logical verification engine: answers queries over a snapshot.

Implements §IV-A2: "relevant routes are computed in the logical space,
given the current network snapshot collected by the RVaaS controller"
via Header Space Analysis.  Every public method takes the querying
client's registration and a :class:`~repro.core.snapshot.NetworkSnapshot`
and returns one of the answer dataclasses of :mod:`repro.core.queries` —
endpoint-level information only, never internal paths (§IV-A
confidentiality).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from repro.core.protocol import ClientRegistration, HostRecord
from repro.core.queries import (
    Answer,
    BandwidthAnswer,
    BandwidthQuery,
    BandwidthReport,
    Endpoint,
    FairnessAnswer,
    FairnessQuery,
    GeoLocationAnswer,
    GeoLocationQuery,
    IsolationAnswer,
    IsolationQuery,
    MeterReport,
    PathLengthAnswer,
    PathLengthQuery,
    PathLengthReport,
    Query,
    ReachableDestinationsAnswer,
    ReachableDestinationsQuery,
    ReachingSourcesAnswer,
    ReachingSourcesQuery,
    TrafficScope,
    TransferFunctionAnswer,
    TransferFunctionEntry,
    TransferFunctionQuery,
    WaypointAvoidanceAnswer,
    WaypointAvoidanceQuery,
)
from repro.core.engine import VerificationEngine
from repro.core.snapshot import NetworkSnapshot
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.reachability import ReachabilityResult
from repro.hsa.wildcard import Wildcard
from repro.netlib.addresses import IPv4Address, IPv4Network
from repro.netlib.constants import (
    ETH_TYPE_LLDP,
    IP_PROTO_UDP,
    RVAAS_AUTH_PORT,
    RVAAS_MAGIC_PORT,
)
from repro.openflow.actions import Meter as MeterAction

#: The header spaces legitimately punted to the control plane by the
#: RVaaS interception rules; controller zones outside them indicate a
#: rule that copies client traffic to the (untrusted) control plane.
_RVAAS_PUNT_SPACE = HeaderSpace(
    (
        Wildcard.from_fields(ip_proto=IP_PROTO_UDP, tp_dst=RVAAS_MAGIC_PORT),
        Wildcard.from_fields(ip_proto=IP_PROTO_UDP, tp_dst=RVAAS_AUTH_PORT),
        Wildcard.from_fields(eth_type=ETH_TYPE_LLDP),
    )
)

#: Pseudo-endpoint reported when client traffic can be copied to the
#: provider's control plane.
CONTROL_PLANE_ENDPOINT = Endpoint(
    switch="<control-plane>", port=-1, host="<controller>", client=""
)


class LogicalVerifier:
    """Answers the query taxonomy for registered clients."""

    def __init__(
        self,
        registrations: Mapping[str, ClientRegistration],
        *,
        exclude_own_interception: bool = True,
        engine: Optional[VerificationEngine] = None,
        workers: int = 1,
    ) -> None:
        self.registrations = dict(registrations)
        self.exclude_own_interception = exclude_own_interception
        #: the shared compilation/analysis cache; every reachability
        #: propagation of every query class goes through it.  ``workers``
        #: sizes its fan-out pool when no engine is supplied (inverse
        #: queries and snapshot compilation parallelise; answers are
        #: identical for any worker count).
        self.engine = (
            engine if engine is not None else VerificationEngine(workers=workers)
        )
        self._port_owner: Dict[Tuple[str, int], Tuple[str, str]] = {}
        for registration in self.registrations.values():
            for host in registration.hosts:
                self._port_owner[host.access_point] = (
                    host.name,
                    registration.name,
                )
        self.queries_answered = 0
        self._analysis_cache: Tuple[
            Optional[int], Optional[NetworkSnapshot], Optional[NetworkSnapshot]
        ] = (None, None, None)
        #: row-level sub-answer cache (ISSUE 7): decoded endpoint sets
        #: keyed by (direction, content hash, access point, ip, scope).
        #: Distinct query classes on the same (client, scope, snapshot)
        #: share these sets — isolation re-reads what reachable just
        #: decoded — so the serving tier enables it (entries > 0) to
        #: amortise matrix-row decoding across a batch.  Off by default:
        #: the synchronous frontend keeps its historical cost profile.
        self._row_cache: "OrderedDict[tuple, Optional[frozenset]]" = OrderedDict()
        self._row_cache_entries = 0
        self._row_lock = threading.Lock()
        self.row_cache_hits = 0
        self.row_cache_misses = 0
        if self.engine.backend == "atom":
            # Register the predicates our query spaces are built from, so
            # they are unions of atoms and the matrix can serve them
            # exactly.  Queries whose spaces still fail to encode (e.g.
            # an unseeded traffic-scope constant) fall back per query.
            self.engine.seed_atoms(self._atom_seed_wildcards())

    def _atom_seed_wildcards(self) -> List[Wildcard]:
        """Predicates the atom universe must refine for exact serving."""
        seeds: List[Wildcard] = [Wildcard.from_fields(vlan_id=0)]
        seeds.extend(_RVAAS_PUNT_SPACE.wildcards)
        for registration in self.registrations.values():
            for host in registration.hosts:
                seeds.append(Wildcard.from_fields(ip_src=host.ip))
                seeds.append(Wildcard.from_fields(ip_dst=host.ip))
        return seeds

    # ------------------------------------------------------------------
    # Analysis view of a snapshot
    # ------------------------------------------------------------------

    def _analysis_snapshot(self, snapshot: NetworkSnapshot) -> NetworkSnapshot:
        """The snapshot as seen by data-traffic analysis.

        RVaaS's *own* interception rules (identified by cookie, exact
        match, and punt-only action) are elided: they are the service's
        signalling plane, not part of the client's routing service, and
        carrying their high-priority shadows through every switch
        multiplies wildcard-union sizes by orders of magnitude.  A rule
        merely *claiming* the cookie but differing in match or action is
        kept — an adversary cannot hide behaviour behind the cookie.
        """
        if not self.exclude_own_interception:
            return snapshot
        cached_version, cached_raw, cached = self._analysis_cache
        if cached is not None and cached_version == snapshot.version:
            return cached
        from repro.core.inband import RVAAS_COOKIE, interception_matches
        from repro.openflow.actions import ToController

        own_matches = set(interception_matches())

        def is_own(rule) -> bool:
            return (
                rule.cookie == RVAAS_COOKIE
                and rule.match in own_matches
                and len(rule.actions) == 1
                and isinstance(rule.actions[0], ToController)
            )

        # Share rule tuples and per-switch content hashes wherever we can,
        # so the engine's per-switch cache keys cost O(changed switches)
        # per version instead of rehashing the whole network: a switch the
        # filter leaves untouched reuses the raw snapshot's hash (same
        # rule identities, hence same digest), and a filtered switch whose
        # raw rules did not change since the previous version carries its
        # previous filtered hash forward.
        filtered_rules: Dict[str, Tuple] = {}
        seeded_hashes: Dict[str, str] = {}
        for switch, rules in snapshot.rules.items():
            kept = tuple(r for r in rules if not is_own(r))
            if len(kept) == len(rules):
                filtered_rules[switch] = rules
                seeded_hashes[switch] = snapshot.switch_content_hash(switch)
                continue
            filtered_rules[switch] = kept
            if (
                cached_raw is not None
                and switch in cached_raw.rules
                and cached_raw.switch_content_hash(switch)
                == snapshot.switch_content_hash(switch)
            ):
                seeded_hashes[switch] = cached.switch_content_hash(switch)

        filtered = NetworkSnapshot(
            version=snapshot.version,
            taken_at=snapshot.taken_at,
            rules=filtered_rules,
            meters=snapshot.meters,
            wiring=snapshot.wiring,
            edge_ports=snapshot.edge_ports,
            switch_ports=snapshot.switch_ports,
            locations=snapshot.locations,
            link_capacities=snapshot.link_capacities,
            _switch_hashes=seeded_hashes,
        )
        self._analysis_cache = (snapshot.version, snapshot, filtered)
        return filtered

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def answer(
        self,
        query: Query,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
    ) -> Answer:
        """Answer any supported query (logical part only)."""
        self.queries_answered += 1
        if isinstance(query, ReachableDestinationsQuery):
            return self.reachable_destinations(registration, snapshot, query.scope)
        if isinstance(query, ReachingSourcesQuery):
            return self.reaching_sources(
                registration, snapshot, query.scope, query.destination_host
            )
        if isinstance(query, IsolationQuery):
            return self.isolation(registration, snapshot, query.scope)
        if isinstance(query, GeoLocationQuery):
            return self.geo_location(registration, snapshot, query.scope)
        if isinstance(query, WaypointAvoidanceQuery):
            return self.waypoint_avoidance(
                registration, snapshot, query.forbidden_regions, query.scope
            )
        if isinstance(query, PathLengthQuery):
            return self.path_length(
                registration, snapshot, query.destination_host, query.scope
            )
        if isinstance(query, FairnessQuery):
            return self.fairness(registration, snapshot, query.scope)
        if isinstance(query, BandwidthQuery):
            return self.bandwidth(
                registration,
                snapshot,
                destination_host=query.destination_host,
                minimum_mbps=query.minimum_mbps,
                scope=query.scope,
            )
        if isinstance(query, TransferFunctionQuery):
            return self.transfer_function(registration, snapshot, query.scope)
        raise TypeError(f"unsupported query type: {type(query).__name__}")

    # ------------------------------------------------------------------
    # Header space construction
    # ------------------------------------------------------------------

    def _outbound_space(
        self, host: HostRecord, scope: TrafficScope
    ) -> HeaderSpace:
        """The traffic this host emits: its source IP, untagged, in scope."""
        fields = {"ip_src": host.ip, "vlan_id": 0}
        fields.update(scope.constraints())
        return HeaderSpace.single(Wildcard.from_fields(**fields))

    def _inbound_space(
        self, host: HostRecord, scope: TrafficScope
    ) -> HeaderSpace:
        """Traffic addressed to this host — any source (spoofing allowed)."""
        fields = {"ip_dst": host.ip, "vlan_id": 0}
        fields.update(scope.constraints())
        return HeaderSpace.single(Wildcard.from_fields(**fields))

    # ------------------------------------------------------------------
    # Endpoint resolution
    # ------------------------------------------------------------------

    def resolve_endpoint(self, switch: str, port: int) -> Endpoint:
        host, client = self._port_owner.get((switch, port), ("", ""))
        return Endpoint(switch=switch, port=port, host=host, client=client)

    def _endpoints_from_result(
        self, result: ReachabilityResult, *, include_control_plane: bool = True
    ) -> List[Endpoint]:
        endpoints = {
            self.resolve_endpoint(zone.switch, zone.port)
            for zone in result.zones
            if zone.kind in ("edge", "unbound")
        }
        if include_control_plane:
            for zone in result.zones:
                if zone.kind != "controller":
                    continue
                leaked = zone.space.subtract(_RVAAS_PUNT_SPACE)
                if not leaked.is_empty():
                    endpoints.add(CONTROL_PLANE_ENDPOINT)
        return sorted(endpoints, key=lambda e: (e.switch, e.port))

    # ------------------------------------------------------------------
    # Matrix serving (atom backend)
    # ------------------------------------------------------------------

    def _atom_pair(self, analysis: NetworkSnapshot):
        """(AtomSpace, ReachabilityMatrix) for this snapshot, or None."""
        if self.engine.backend != "atom":
            return None
        return self.engine.atom_artifacts(analysis)

    def _matrix_outbound_endpoints(
        self, pair, host: HostRecord, scope: TrafficScope
    ) -> Optional[set]:
        """Endpoints the host's outbound traffic reaches — pure lookups.

        Mirrors :meth:`_endpoints_from_result` on the precomputed
        matrix: edge/unbound zones are one AND against the row's reach
        bits; the control-plane check applies the zone's rewrite pins to
        the matching segment and tests it against the punt complement —
        both exact at atom granularity.  ``None`` means this query
        cannot be served exactly (unencodable space, unknown ingress)
        and the caller must take the wildcard path.
        """
        space, matrix = pair
        bits = space.encode_space(self._outbound_space(host, scope))
        if bits is None:
            return None
        row = matrix.row((host.switch, host.port))
        if row is None:
            return None
        punt_bits = space.encode_space(_RVAAS_PUNT_SPACE)
        if punt_bits is None:
            return None
        endpoints = set()
        for (kind, switch, port), reach_bits in row.reach.items():
            if kind != "controller" and reach_bits & bits:
                endpoints.add(self.resolve_endpoint(switch, port))
        leak_mask = space.full_bits & ~punt_bits
        leaked = False
        for zone_key, per_pins in row.zones.items():
            if leaked or zone_key[0] != "controller":
                continue
            for pins, zone_bits in per_pins.items():
                segment = zone_bits & bits
                if segment and space.apply_pins(segment, pins) & leak_mask:
                    endpoints.add(CONTROL_PLANE_ENDPOINT)
                    leaked = True
                    break
        return endpoints

    def _matrix_reaching_sources(
        self, pair, host: HostRecord, scope: TrafficScope
    ) -> Optional[set]:
        """Edge ports whose traffic reaches the host — inverse transfer
        as a column scan over the per-ingress rows."""
        space, matrix = pair
        bits = space.encode_space(self._inbound_space(host, scope))
        if bits is None:
            return None
        target = ("edge", host.switch, host.port)
        endpoints = set()
        for ref in matrix.ingresses():
            if ref == (host.switch, host.port):
                continue
            row = matrix.row(ref)
            if row is not None and row.reach.get(target, 0) & bits:
                endpoints.add(self.resolve_endpoint(*ref))
        return endpoints

    def _locations_key(self, snapshot: NetworkSnapshot) -> tuple:
        """Fingerprint of the switch→region assignment (geo cache key)."""
        entries = []
        for name in sorted(snapshot.switch_names()):
            location = snapshot.location_of(name)
            entries.append((name, location.region if location else None))
        return tuple(entries)

    def _matrix_regions(
        self,
        pair,
        host: HostRecord,
        scope: TrafficScope,
        snapshot: NetworkSnapshot,
    ) -> Optional[set]:
        """Regions the host's outbound traffic can traverse."""
        space, matrix = pair
        bits = space.encode_space(self._outbound_space(host, scope))
        if bits is None:
            return None
        row = matrix.row((host.switch, host.port))
        if row is None:
            return None
        regions = set()
        for switch, traversed_bits in row.traversed.items():
            if traversed_bits & bits:
                location = snapshot.location_of(switch)
                if location is not None:
                    regions.add(location.region)
        return regions

    # ------------------------------------------------------------------
    # Row-level sub-answer cache (serving tier)
    # ------------------------------------------------------------------

    def enable_row_cache(self, entries: int = 8192) -> None:
        """Turn on endpoint-set memoisation for matrix-served lookups.

        Safe because the cached value is a pure function of the cache
        key: the analysis snapshot's content hash pins the matrix, the
        access point + host address pin the row, and the scope pins the
        encoded header set (geo lookups add a fingerprint of the switch
        locations, which are not part of the content hash).  Entries are
        frozensets handed back by reference — callers union them into
        their own accumulators and must never mutate them.
        """
        self._row_cache_entries = max(0, int(entries))
        if self._row_cache_entries == 0:
            with self._row_lock:
                self._row_cache.clear()

    def _cached_rows(
        self,
        kind: str,
        analysis: NetworkSnapshot,
        host: HostRecord,
        scope: TrafficScope,
        compute,
        extra: object = None,
    ) -> Optional[frozenset]:
        if self._row_cache_entries <= 0:
            computed = compute()
            return None if computed is None else frozenset(computed)
        key = (
            kind,
            analysis.content_hash(),
            host.switch,
            host.port,
            host.ip,
            scope,
            extra,
        )
        with self._row_lock:
            if key in self._row_cache:
                self.row_cache_hits += 1
                self._row_cache.move_to_end(key)
                return self._row_cache[key]
            self.row_cache_misses += 1
        computed = compute()
        frozen = None if computed is None else frozenset(computed)
        with self._row_lock:
            self._row_cache[key] = frozen
            while len(self._row_cache) > self._row_cache_entries:
                self._row_cache.popitem(last=False)
        return frozen

    # ------------------------------------------------------------------
    # Serving-tier hooks (scheduler integration)
    # ------------------------------------------------------------------

    def ready(self, snapshot: NetworkSnapshot) -> bool:
        """Whether answering on ``snapshot`` costs lookups, not compiles.

        The scheduler's stale-but-honest fast path routes a batch at the
        last verified snapshot when this returns ``False`` for a
        mid-churn one.
        """
        analysis = self._analysis_snapshot(snapshot)
        return self.engine.is_compiled(analysis.content_hash())

    def warm(self, snapshot: NetworkSnapshot) -> None:
        """Compile ``snapshot``'s artifacts so later queries are lookups."""
        self.engine.compile(self._analysis_snapshot(snapshot))

    def propagation_jobs(
        self,
        registration: ClientRegistration,
        query: Query,
        analysis: NetworkSnapshot,
    ) -> List[Tuple[str, int, HeaderSpace]]:
        """The forward propagations answering ``query`` would run.

        Used by :meth:`prewarm` to batch compatible reachability lookups
        across a whole scheduler batch before the per-query answering
        loop (which then hits the engine's memo table).  Only forward
        query classes enumerate jobs; inverse sweeps and history queries
        return an empty list.
        """
        if not isinstance(
            query,
            (
                ReachableDestinationsQuery,
                IsolationQuery,
                GeoLocationQuery,
                WaypointAvoidanceQuery,
                PathLengthQuery,
                BandwidthQuery,
                TransferFunctionQuery,
            ),
        ):
            return []
        return [
            (host.switch, host.port, self._outbound_space(host, query.scope))
            for host in registration.hosts
        ]

    def prewarm(
        self, pairs: Iterable[Tuple[str, Query]], snapshot: NetworkSnapshot
    ) -> int:
        """Run a batch's forward propagations in one engine fan-out.

        On the atom backend the matrix already serves these classes, so
        prewarming would only duplicate fallback work; the wildcard
        backend genuinely shares the fan-out.  Returns the number of
        jobs submitted.
        """
        if self.engine.backend == "atom":
            return 0
        analysis = self._analysis_snapshot(snapshot)
        jobs: List[Tuple[str, int, HeaderSpace]] = []
        for client, query in pairs:
            registration = self.registrations.get(client)
            if registration is None:
                continue
            jobs.extend(self.propagation_jobs(registration, query, analysis))
        if jobs:
            self.engine.analyze_batch(analysis, jobs)
        return len(jobs)

    def _count_serving(self, served, query_class: str) -> bool:
        """Telemetry: record a matrix-served query or a fallback.

        Counted per host and per query class, so operators can read
        from :class:`EngineMetrics` (and the CLI ``stats`` command)
        exactly which classes the matrix serves and which still bounce
        to wildcard propagation.
        """
        self.engine.metrics.count_query_class(query_class, served is not None)
        return served is not None

    def _count_wildcard_only(self, query_class: str, registration) -> None:
        """Per-class fallback accounting for classes the matrix never
        serves (path enumeration and per-path attributes need concrete
        hop sequences, which the endpoint-level matrix does not keep)."""
        if self.engine.backend != "atom":
            return
        for _host in registration.hosts:
            self.engine.metrics.count_query_class(query_class, False)

    # ------------------------------------------------------------------
    # Query implementations
    # ------------------------------------------------------------------

    def _outbound_result(
        self, analysis: NetworkSnapshot, host: HostRecord, scope: TrafficScope
    ) -> ReachabilityResult:
        """One memoized propagation of this host's outbound traffic.

        Every query class that walks the client's forward reachability
        (destinations, isolation, geo, waypoint, path length, bandwidth,
        transfer function) shares this engine call — on an unchanged
        snapshot the propagation runs once, however many queries follow.
        """
        return self.engine.analyze(
            analysis, host.switch, host.port, self._outbound_space(host, scope)
        )

    def reachable_destinations(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        scope: TrafficScope = TrafficScope(),
    ) -> ReachableDestinationsAnswer:
        analysis = self._analysis_snapshot(snapshot)
        pair = self._atom_pair(analysis)
        endpoints: set[Endpoint] = set()
        for host in registration.hosts:
            served = (
                self._cached_rows(
                    "out",
                    analysis,
                    host,
                    scope,
                    lambda: self._matrix_outbound_endpoints(pair, host, scope),
                )
                if pair is not None
                else None
            )
            if pair is not None and self._count_serving(
                served, "reachable_destinations"
            ):
                endpoints.update(served)
                continue
            result = self._outbound_result(analysis, host, scope)
            endpoints.update(self._endpoints_from_result(result))
        return ReachableDestinationsAnswer(
            endpoints=tuple(sorted(endpoints, key=lambda e: (e.switch, e.port)))
        )

    def reaching_sources(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        scope: TrafficScope = TrafficScope(),
        destination_host: str = "",
    ) -> ReachingSourcesAnswer:
        analysis = self._analysis_snapshot(snapshot)
        endpoints: set[Endpoint] = set()
        hosts = [
            host
            for host in registration.hosts
            if not destination_host or host.name == destination_host
        ]
        pair = self._atom_pair(analysis)
        for host in hosts:
            served = (
                self._cached_rows(
                    "in",
                    analysis,
                    host,
                    scope,
                    lambda: self._matrix_reaching_sources(pair, host, scope),
                )
                if pair is not None
                else None
            )
            if pair is not None and self._count_serving(
                served, "reaching_sources"
            ):
                endpoints.update(served)
                continue
            sources = self.engine.sources_reaching(
                analysis, host.switch, host.port, self._inbound_space(host, scope)
            )
            for switch, port in sources:
                endpoints.add(self.resolve_endpoint(switch, port))
        return ReachingSourcesAnswer(
            endpoints=tuple(sorted(endpoints, key=lambda e: (e.switch, e.port)))
        )

    def isolation(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        scope: TrafficScope = TrafficScope(),
    ) -> IsolationAnswer:
        """The join-attack detector of §IV-B1.

        Outbound: endpoints my traffic can reach.  Inbound: endpoints
        whose traffic (any source address — attackers spoof) can reach
        me.  Both must be subsets of my declared access points.
        """
        declared = {
            self.resolve_endpoint(*host.access_point)
            for host in registration.hosts
        }
        outbound = set(
            self.reachable_destinations(registration, snapshot, scope).endpoints
        )
        inbound = set(
            self.reaching_sources(registration, snapshot, scope).endpoints
        )
        violations = (outbound | inbound) - declared
        ordered = tuple(sorted(violations, key=lambda e: (e.switch, e.port)))
        return IsolationAnswer(
            isolated=not violations,
            declared_endpoints=tuple(
                sorted(declared, key=lambda e: (e.switch, e.port))
            ),
            violating_endpoints=ordered,
        )

    def geo_location(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        scope: TrafficScope = TrafficScope(),
    ) -> GeoLocationAnswer:
        """Which regions can the client's traffic pass through (§IV-B2)."""
        analysis = self._analysis_snapshot(snapshot)
        pair = self._atom_pair(analysis)
        regions: set[str] = set()
        # Switch locations are not covered by the content hash, so geo
        # rows carry a fingerprint of them in the cache key.
        locations = (
            self._locations_key(snapshot) if pair is not None else None
        )
        for host in registration.hosts:
            served = (
                self._cached_rows(
                    "geo",
                    analysis,
                    host,
                    scope,
                    lambda: self._matrix_regions(pair, host, scope, snapshot),
                    extra=locations,
                )
                if pair is not None
                else None
            )
            if pair is not None and self._count_serving(served, "geo_location"):
                regions.update(served)
                continue
            result = self._outbound_result(analysis, host, scope)
            for switch in result.switches_traversed:
                location = snapshot.location_of(switch)
                if location is not None:
                    regions.add(location.region)
        return GeoLocationAnswer(regions=tuple(sorted(regions)))

    def waypoint_avoidance(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        forbidden_regions: Tuple[str, ...],
        scope: TrafficScope = TrafficScope(),
    ) -> WaypointAvoidanceAnswer:
        geo = self.geo_location(registration, snapshot, scope)
        violating = tuple(
            sorted(set(geo.regions) & set(forbidden_regions))
        )
        return WaypointAvoidanceAnswer(
            avoided=not violating, violating_regions=violating
        )

    def traversal_switches(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        scope: TrafficScope = TrafficScope(),
    ) -> frozenset:
        """Switches the client's outbound traffic can traverse.

        The preventive gate's path-pinning primitive: a diversion detour
        routes traffic through *new* switches while leaving endpoints
        (and possibly regions) identical, so comparing this set between
        the live and a speculative snapshot catches rerouting that the
        isolation and geo checks cannot.  Served from matrix rows on the
        atom backend (one AND per traversed switch), wildcard propagation
        otherwise.
        """
        analysis = self._analysis_snapshot(snapshot)
        pair = self._atom_pair(analysis)
        traversed: set = set()
        for host in registration.hosts:
            served = None
            if pair is not None:
                space, matrix = pair
                bits = space.encode_space(self._outbound_space(host, scope))
                row = (
                    matrix.row((host.switch, host.port))
                    if bits is not None
                    else None
                )
                if row is not None:
                    served = {
                        switch
                        for switch, traversed_bits in row.traversed.items()
                        if traversed_bits & bits
                    }
            if pair is not None and self._count_serving(
                served, "traversal_switches"
            ):
                traversed.update(served)
                continue
            result = self._outbound_result(analysis, host, scope)
            traversed.update(result.switches_traversed)
        return frozenset(traversed)

    def forwarding_loops(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        scope: TrafficScope = TrafficScope(),
    ) -> Tuple[Tuple[str, int], ...]:
        """Ports at which the client's outbound traffic enters a loop.

        The emulated (and any real) data plane has no TTL safety net, so
        the preventive gate refuses configurations that introduce
        forwarding loops — e.g. a mirror rule whose duplicated copy is
        routed straight back to the mirroring switch.  Loops are only
        surfaced by full propagation, so this is a wildcard-path query
        (the atom matrix terminates loops instead of reporting them).
        """
        analysis = self._analysis_snapshot(snapshot)
        self._count_wildcard_only("forwarding_loops", registration)
        points: set = set()
        for host in registration.hosts:
            result = self._outbound_result(analysis, host, scope)
            for loop in result.loops:
                points.add((loop.switch, loop.port))
        return tuple(sorted(points))

    def path_length(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        destination_host: str = "",
        scope: TrafficScope = TrafficScope(),
    ) -> PathLengthAnswer:
        """Route-optimality: actual worst-case hops vs topology shortest."""
        analysis = self._analysis_snapshot(snapshot)
        self._count_wildcard_only("path_length", registration)
        graph = _graph_from_wiring(snapshot)
        reports: List[PathLengthReport] = []
        for host in registration.hosts:
            result = self._outbound_result(analysis, host, scope)
            worst: Dict[Tuple[str, int], int] = {}
            for path in result.paths:
                zone = path.endpoint
                if zone.kind != "edge":
                    continue
                endpoint = self.resolve_endpoint(zone.switch, zone.port)
                if destination_host and endpoint.host != destination_host:
                    continue
                key = (zone.switch, zone.port)
                worst[key] = max(worst.get(key, 0), path.length())
            for (switch, port), actual in sorted(worst.items()):
                try:
                    optimal = (
                        nx.shortest_path_length(graph, host.switch, switch) + 1
                    )
                except (nx.NetworkXNoPath, nx.NodeNotFound):
                    optimal = actual
                reports.append(
                    PathLengthReport(
                        destination=self.resolve_endpoint(switch, port),
                        actual_hops=actual,
                        optimal_hops=optimal,
                    )
                )
        return PathLengthAnswer(reports=tuple(reports))

    def fairness(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        scope: TrafficScope = TrafficScope(),
    ) -> FairnessAnswer:
        """Network-neutrality check over the meter tables (§IV-C).

        Meter attribution: a metered rule belongs to the client whose
        address the match *constrains* — the sender when ``ip_src`` is
        set, otherwise the receiver when ``ip_dst`` is set.  A meter with
        neither constraint limits everyone uniformly and counts on both
        sides of the comparison (uniform limits are neutral by
        construction).
        """
        my_ips = {IPv4Address(ip) for ip in registration.host_ips}

        def constrains_mine(wanted) -> Optional[bool]:
            """None = unconstrained; else does the constraint cover me?"""
            if wanted is None:
                return None
            if isinstance(wanted, IPv4Network):
                return any(wanted.contains(addr) for addr in my_ips)
            return wanted in my_ips

        meter_rates = {
            (meter.switch, meter.meter_id): meter.band.rate_kbps
            for meter in snapshot.meters
        }
        mine: List[MeterReport] = []
        other_rates: List[int] = []
        for switch, rules in snapshot.rules.items():
            for rule in rules:
                meter_ids = [
                    action.meter_id
                    for action in rule.actions
                    if isinstance(action, MeterAction)
                ]
                if not meter_ids:
                    continue
                src_mine = constrains_mine(rule.match.ip_src)
                dst_mine = constrains_mine(rule.match.ip_dst)
                if src_mine is not None:
                    is_mine, is_other = src_mine, not src_mine
                elif dst_mine is not None:
                    is_mine, is_other = dst_mine, not dst_mine
                else:
                    is_mine = is_other = True  # uniform limit
                for meter_id in meter_ids:
                    rate = meter_rates.get((switch, meter_id))
                    if rate is None:
                        continue
                    if is_mine:
                        mine.append(
                            MeterReport(
                                switch=switch,
                                rate_kbps=rate,
                                scope_description=rule.match.describe(),
                            )
                        )
                    if is_other:
                        other_rates.append(rate)
        baseline = min(other_rates) if other_rates else None
        if not mine:
            neutral = True
        elif baseline is None:
            neutral = False  # only my traffic is rate-limited
        else:
            neutral = min(report.rate_kbps for report in mine) >= baseline
        return FairnessAnswer(
            neutral=neutral,
            meters_on_my_traffic=tuple(mine),
            baseline_rate_kbps=baseline,
        )

    def bandwidth(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        *,
        destination_host: str = "",
        minimum_mbps: float = 0.0,
        scope: TrafficScope = TrafficScope(),
    ) -> BandwidthAnswer:
        """Bottleneck bandwidth of the client's routes (QoS query, §IV-A).

        For every destination endpoint the client's traffic can reach,
        reports the bottleneck link capacity along the worst and best
        path the *configuration* can take (capacities come from the
        wiring plan / SLA, which RVaaS holds).  A diversion through a
        thin transit link shows up as a drop in ``min_bottleneck_mbps``
        — without revealing which links exist.
        """
        analysis = self._analysis_snapshot(snapshot)
        self._count_wildcard_only("bandwidth", registration)
        per_destination: Dict[Tuple[str, int], List[float]] = {}
        for host in registration.hosts:
            result = self._outbound_result(analysis, host, scope)
            for path in result.paths:
                zone = path.endpoint
                if zone.kind != "edge":
                    continue
                endpoint = self.resolve_endpoint(zone.switch, zone.port)
                if destination_host and endpoint.host != destination_host:
                    continue
                bottleneck = float("inf")
                for link_a, link_b in path.links():
                    capacity = snapshot.link_capacities.get(
                        frozenset((link_a, link_b))
                    )
                    if capacity is not None:
                        bottleneck = min(bottleneck, capacity)
                per_destination.setdefault(
                    (zone.switch, zone.port), []
                ).append(bottleneck)
        reports = tuple(
            BandwidthReport(
                destination=self.resolve_endpoint(switch, port),
                min_bottleneck_mbps=min(bottlenecks),
                max_bottleneck_mbps=max(bottlenecks),
            )
            for (switch, port), bottlenecks in sorted(per_destination.items())
        )
        return BandwidthAnswer(reports=reports, minimum_mbps=minimum_mbps)

    def transfer_function(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        scope: TrafficScope = TrafficScope(),
    ) -> TransferFunctionAnswer:
        """Endpoint-level compact transfer function of the routing service."""
        analysis = self._analysis_snapshot(snapshot)
        self._count_wildcard_only("transfer_function", registration)
        entries: List[TransferFunctionEntry] = []
        for host in registration.hosts:
            ingress = self.resolve_endpoint(*host.access_point)
            result = self._outbound_result(analysis, host, scope)
            for zone in result.edge_zones():
                entries.append(
                    TransferFunctionEntry(
                        ingress=ingress,
                        egress=self.resolve_endpoint(zone.switch, zone.port),
                        header_constraint=zone.space.describe(),
                    )
                )
        entries.sort(key=lambda e: (e.ingress.switch, e.ingress.port, e.egress.switch, e.egress.port))
        return TransferFunctionAnswer(entries=tuple(entries))

    # ------------------------------------------------------------------
    # Targets for the in-band tester
    # ------------------------------------------------------------------

    def auth_targets(
        self,
        registration: ClientRegistration,
        snapshot: NetworkSnapshot,
        scope: TrafficScope = TrafficScope(),
    ) -> Tuple[Tuple[str, int], ...]:
        """Edge ports to challenge in the Fig. 1/2 authentication round:
        every edge endpoint the client's traffic can reach."""
        answer = self.reachable_destinations(registration, snapshot, scope)
        return tuple(
            (e.switch, e.port) for e in answer.endpoints if e.port >= 0
        )


def _graph_from_wiring(snapshot: NetworkSnapshot) -> nx.Graph:
    graph = nx.Graph()
    for switch in snapshot.switch_names():
        graph.add_node(switch)
    for (a, _pa), (b, _pb) in snapshot.wiring.items():
        graph.add_edge(a, b)
    return graph
