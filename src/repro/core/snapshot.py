"""Configuration snapshots: the state RVaaS verifies against.

A :class:`NetworkSnapshot` is a frozen view of everything the monitor
knows at one instant: per-switch flow rules and meters, the wiring plan,
edge ports, and element locations.  It compiles lazily into the HSA
:class:`~repro.hsa.network_tf.NetworkTransferFunction` used by the
logical verifier, and hashes into a compact content fingerprint used by
the history / flapping detector.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.dataplane.topology import GeoLocation
from repro.hsa.network_tf import NetworkTransferFunction, PortRef
from repro.hsa.transfer import SnapshotRule, SwitchTransferFunction, compile_switch_tf
from repro.openflow.meters import MeterBand


@dataclass(frozen=True)
class SnapshotMeter:
    """One meter as recorded in a snapshot."""

    switch: str
    meter_id: int
    band: MeterBand


@dataclass
class NetworkSnapshot:
    """An immutable-by-convention view of the network configuration."""

    version: int
    taken_at: float
    rules: Mapping[str, Tuple[SnapshotRule, ...]]  # switch -> rules
    meters: Tuple[SnapshotMeter, ...]
    wiring: Mapping[PortRef, PortRef]
    edge_ports: Mapping[str, frozenset[int]]
    switch_ports: Mapping[str, Tuple[int, ...]]
    locations: Mapping[str, GeoLocation] = field(default_factory=dict)
    #: capacity of each inter-switch link, keyed by the unordered switch
    #: pair (from the wiring plan / SLA, used by bandwidth queries)
    link_capacities: Mapping[frozenset, float] = field(default_factory=dict)
    _network_tf: Optional[NetworkTransferFunction] = field(
        default=None, repr=False, compare=False
    )
    #: per-switch rule-content hashes; may be pre-seeded by the monitor
    #: (structural sharing across versions), filled lazily otherwise
    _switch_hashes: Dict[str, str] = field(
        default_factory=dict, repr=False, compare=False
    )
    _content_hash: Optional[str] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Derived artifacts
    # ------------------------------------------------------------------

    def network_tf(self) -> NetworkTransferFunction:
        """Compile (and cache) the HSA network transfer function."""
        if self._network_tf is None:
            tfs: Dict[str, SwitchTransferFunction] = {}
            for switch, rules in self.rules.items():
                tfs[switch] = compile_switch_tf(
                    switch, rules, self.switch_ports.get(switch, ())
                )
            object.__setattr__(
                self,
                "_network_tf",
                NetworkTransferFunction(tfs, self.wiring, self.edge_ports),
            )
        return self._network_tf

    def rule_count(self) -> int:
        return sum(len(rules) for rules in self.rules.values())

    def switch_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.rules))

    def location_of(self, switch: str) -> Optional[GeoLocation]:
        return self.locations.get(switch)

    def meters_on(self, switch: str) -> Tuple[SnapshotMeter, ...]:
        return tuple(m for m in self.meters if m.switch == switch)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def switch_content_hash(self, switch: str) -> str:
        """Stable fingerprint of one switch's rule set.

        This is the cache key of the engine's per-switch compiled
        transfer functions: two snapshot versions in which a switch holds
        the same rules hash identically, so the compiled artifact is
        structurally shared.  Hashes are memoized per snapshot instance
        (and pre-seeded by the monitor for unchanged switches).
        """
        cached = self._switch_hashes.get(switch)
        if cached is not None:
            return cached
        digest = switch_rules_hash(switch, self.rules.get(switch, ()))
        self._switch_hashes[switch] = digest
        return digest

    def content_hash(self) -> str:
        """Stable fingerprint of the *configuration* (not version/time).

        Derived from the per-switch hashes (so unchanged switches reuse
        their memoized digest) plus meters, wiring, edge ports and
        switch ports — i.e. everything that influences compiled
        verification artifacts (switch ports feed Flood expansion and
        shadow-network construction).
        """
        if self._content_hash is not None:
            return self._content_hash
        hasher = hashlib.sha256()
        for switch in sorted(self.rules):
            hasher.update(switch.encode())
            hasher.update(self.switch_content_hash(switch).encode())
        for meter in sorted(self.meters, key=lambda m: (m.switch, m.meter_id)):
            hasher.update(repr((meter.switch, meter.meter_id, meter.band)).encode())
        for here in sorted(self.wiring):
            hasher.update(repr((here, self.wiring[here])).encode())
        for switch in sorted(self.edge_ports):
            hasher.update(
                repr((switch, tuple(sorted(self.edge_ports[switch])))).encode()
            )
        for switch in sorted(self.switch_ports):
            hasher.update(
                repr((switch, tuple(sorted(self.switch_ports[switch])))).encode()
            )
        digest = hasher.hexdigest()
        object.__setattr__(self, "_content_hash", digest)
        return digest

    def rule_signatures(self) -> frozenset[tuple]:
        """The set of (switch, rule identity) pairs, for diffing."""
        return frozenset(
            (switch, rule.identity())
            for switch, rules in self.rules.items()
            for rule in rules
        )

    def diff(self, other: "NetworkSnapshot") -> tuple[frozenset, frozenset]:
        """(added, removed) rule signatures relative to ``other``."""
        mine, theirs = self.rule_signatures(), other.rule_signatures()
        return (mine - theirs, theirs - mine)

    def approximate_size_bytes(self) -> int:
        """Rough memory footprint, for the resource experiment (E5).

        Counts every retained constituent — rules *including their match
        and action payloads*, meters, the wiring plan, edge and switch
        port sets, locations, and link capacities — not just the rule
        container objects, which undercounted by an order of magnitude.
        """
        import sys

        total = sys.getsizeof(self)
        for switch, rules in self.rules.items():
            total += sys.getsizeof(switch) + sys.getsizeof(rules)
            for rule in rules:
                total += sys.getsizeof(rule)
                total += sys.getsizeof(rule.match)
                total += sys.getsizeof(rule.actions)
                total += sum(sys.getsizeof(action) for action in rule.actions)
        for meter in self.meters:
            total += sys.getsizeof(meter) + sys.getsizeof(meter.band)
        for here, there in self.wiring.items():
            total += sys.getsizeof(here) + sys.getsizeof(there)
        for switch, ports in self.edge_ports.items():
            total += sys.getsizeof(ports)
        for switch, ports in self.switch_ports.items():
            total += sys.getsizeof(ports)
        for location in self.locations.values():
            total += sys.getsizeof(location)
        total += sum(
            sys.getsizeof(pair) for pair in self.link_capacities
        )
        return total


def switch_rules_hash(switch: str, rules: Tuple[SnapshotRule, ...]) -> str:
    """SHA-256 over one switch's rule-identity digests, in install order.

    Order-sensitive on purpose: :class:`SwitchTransferFunction`
    compilation depends on install order (the stable priority sort keeps
    first-installed-wins tie-breaks between equal-priority rules, and
    replacement dedup keeps the later rule), so two rule sequences with
    the same multiset but different order may compile differently and
    must not share a cache key — e.g. a rule removed and re-added under
    flapping.  Per-rule digests are cached on the (immutable,
    structurally shared) rule objects, so rehashing a switch after a
    FlowMod only pays for the rules that are actually new.
    """
    hasher = hashlib.sha256()
    hasher.update(switch.encode())
    for rule in rules:
        hasher.update(rule.identity_digest())
    return hasher.hexdigest()
