"""Configuration snapshots: the state RVaaS verifies against.

A :class:`NetworkSnapshot` is a frozen view of everything the monitor
knows at one instant: per-switch flow rules and meters, the wiring plan,
edge ports, and element locations.  It compiles lazily into the HSA
:class:`~repro.hsa.network_tf.NetworkTransferFunction` used by the
logical verifier, and hashes into a compact content fingerprint used by
the history / flapping detector.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.dataplane.topology import GeoLocation
from repro.hsa.network_tf import NetworkTransferFunction, PortRef
from repro.hsa.transfer import SnapshotRule, SwitchTransferFunction
from repro.openflow.meters import MeterBand


@dataclass(frozen=True)
class SnapshotMeter:
    """One meter as recorded in a snapshot."""

    switch: str
    meter_id: int
    band: MeterBand


@dataclass
class NetworkSnapshot:
    """An immutable-by-convention view of the network configuration."""

    version: int
    taken_at: float
    rules: Mapping[str, Tuple[SnapshotRule, ...]]  # switch -> rules
    meters: Tuple[SnapshotMeter, ...]
    wiring: Mapping[PortRef, PortRef]
    edge_ports: Mapping[str, frozenset[int]]
    switch_ports: Mapping[str, Tuple[int, ...]]
    locations: Mapping[str, GeoLocation] = field(default_factory=dict)
    #: capacity of each inter-switch link, keyed by the unordered switch
    #: pair (from the wiring plan / SLA, used by bandwidth queries)
    link_capacities: Mapping[frozenset, float] = field(default_factory=dict)
    _network_tf: Optional[NetworkTransferFunction] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Derived artifacts
    # ------------------------------------------------------------------

    def network_tf(self) -> NetworkTransferFunction:
        """Compile (and cache) the HSA network transfer function."""
        if self._network_tf is None:
            tfs: Dict[str, SwitchTransferFunction] = {}
            for switch, rules in self.rules.items():
                n_tables = max((r.table_id for r in rules), default=0) + 1
                tfs[switch] = SwitchTransferFunction(
                    switch,
                    rules,
                    ports=self.switch_ports.get(switch, ()),
                    n_tables=max(n_tables, 2),
                )
            object.__setattr__(
                self,
                "_network_tf",
                NetworkTransferFunction(tfs, self.wiring, self.edge_ports),
            )
        return self._network_tf

    def rule_count(self) -> int:
        return sum(len(rules) for rules in self.rules.values())

    def switch_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.rules))

    def location_of(self, switch: str) -> Optional[GeoLocation]:
        return self.locations.get(switch)

    def meters_on(self, switch: str) -> Tuple[SnapshotMeter, ...]:
        return tuple(m for m in self.meters if m.switch == switch)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def content_hash(self) -> str:
        """Stable fingerprint of the *configuration* (not version/time)."""
        hasher = hashlib.sha256()
        for switch in sorted(self.rules):
            hasher.update(switch.encode())
            for rule in sorted(self.rules[switch], key=lambda r: repr(r.identity())):
                hasher.update(repr(rule.identity()).encode())
        for meter in sorted(self.meters, key=lambda m: (m.switch, m.meter_id)):
            hasher.update(repr((meter.switch, meter.meter_id, meter.band)).encode())
        return hasher.hexdigest()

    def rule_signatures(self) -> frozenset[tuple]:
        """The set of (switch, rule identity) pairs, for diffing."""
        return frozenset(
            (switch, rule.identity())
            for switch, rules in self.rules.items()
            for rule in rules
        )

    def diff(self, other: "NetworkSnapshot") -> tuple[frozenset, frozenset]:
        """(added, removed) rule signatures relative to ``other``."""
        mine, theirs = self.rule_signatures(), other.rule_signatures()
        return (mine - theirs, theirs - mine)

    def approximate_size_bytes(self) -> int:
        """Rough memory footprint, for the resource experiment (E5)."""
        import sys

        total = sys.getsizeof(self)
        for rules in self.rules.values():
            total += sum(sys.getsizeof(rule) for rule in rules)
        return total
