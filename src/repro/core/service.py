"""The RVaaS controller: the deployable verification service.

Ties together configuration monitoring, logical verification, and
in-band client interaction (§IV-A), runs inside an attested enclave
(:mod:`repro.core.attestation`), maintains snapshot history against
short-lived reconfiguration attacks, and protects its own interception
rules (an adversary deleting them is detected and they are reinstalled).

One secure server is sufficient (§I-A); multiple independent instances
can be attached to the same network for defence in depth — they share
nothing but the switch certificates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional

from repro.controlplane.controller import ControllerApp
from repro.core.engine import VerificationEngine
from repro.core.history import SnapshotHistory
from repro.core.inband import (
    INTERCEPT_PRIORITY,
    RVAAS_COOKIE,
    AuthRoundOutcome,
    InBandTester,
)
from repro.core.monitor import ConfigurationMonitor, MonitorMode
from repro.core.protocol import (
    STATUS_OK,
    ClientRegistration,
    FreshnessReport,
    QueryRequest,
    QueryResponse,
    SealedRequest,
    ViolationNotice,
    seal_notice,
    seal_response,
    unseal_request,
)
from repro.core.queries import (
    AuthEvidence,
    Endpoint,
    ExposureHistoryAnswer,
    ExposureHistoryQuery,
    ExposureWindowSummary,
    HostExposureReport,
    IsolationAnswer,
    IsolationQuery,
    Query,
    ReachableDestinationsAnswer,
    ReachableDestinationsQuery,
)
from repro.core.snapshot import NetworkSnapshot
from repro.core.verifier import LogicalVerifier
from repro.crypto.enclave import Enclave
from repro.crypto.keys import KeyPair
from repro.crypto.sign import SignatureError
from repro.dataplane.network import Network
from repro.netlib.addresses import IPv4Address
from repro.netlib.constants import (
    ETH_TYPE_LLDP,
    RVAAS_AUTH_PORT,
    RVAAS_MAGIC_PORT,
)
from repro.openflow.messages import FlowMonitorUpdate, PacketIn
from repro.serving.clock import MonotonicClock
from repro.serving.scheduler import (
    PendingQuery,
    QueryScheduler,
    ServeOutcome,
    ServingConfig,
)


from repro.core.queries import TrafficScope as _TrafficScope

_EMPTY_SCOPE = _TrafficScope()


@dataclass(frozen=True)
class TamperAlarm:
    """An integrity event RVaaS raises about its own operation."""

    time: float
    kind: str  # "interception-removed" | "wiring-mismatch" | "bad-request"
    switch: str
    details: str


class RVaaSController(ControllerApp):
    """The stand-alone, trusted verification controller."""

    def __init__(
        self,
        keypair: KeyPair,
        registrations: Dict[str, ClientRegistration],
        *,
        name: str = "rvaas",
        enclave: Optional[Enclave] = None,
        monitor_mode: MonitorMode = MonitorMode.HYBRID,
        mean_poll_interval: float = 5.0,
        randomize_polls: bool = True,
        auth_timeout: float = 0.25,
        auth_retries: int = 0,
        poll_timeout: float = 0.25,
        max_poll_retries: int = 3,
        record_history: bool = True,
        serving: Optional[ServingConfig] = None,
    ) -> None:
        super().__init__(name)
        self.keypair = keypair
        self.registrations = dict(registrations)
        self.enclave = enclave
        # One engine instance is the compilation path for everything
        # this controller verifies: the logical verifier's queries, the
        # watch/audit paths, and the history's content hashing.
        self.engine = VerificationEngine()
        self.verifier = LogicalVerifier(self.registrations, engine=self.engine)
        # Full snapshots are retained so AttackTraceback can replay the
        # recent past (paper §IV-C); the ring buffer bounds memory.
        self.history = SnapshotHistory(retain_snapshots=True, engine=self.engine)
        self.alarms: List[TamperAlarm] = []
        self.queries_served = 0
        self._monitor_mode = monitor_mode
        self._mean_poll_interval = mean_poll_interval
        self._randomize_polls = randomize_polls
        self._auth_timeout = auth_timeout
        self._auth_retries = auth_retries
        self._poll_timeout = poll_timeout
        self._max_poll_retries = max_poll_retries
        self._record_history = record_history
        self.watch_errors = 0
        self.interception_repairs = 0
        self._last_history_version = -1
        self.monitor: Optional[ConfigurationMonitor] = None
        self.inband: Optional[InBandTester] = None
        #: monotonic view of controller time: freshness ages are
        #: computed on it so a replayed or rewound simulator can never
        #: make a reply claim evidence from the future (ISSUE 7)
        self.clock = MonotonicClock(lambda: self.now)
        self._serving_config = serving
        #: the multi-tenant serving tier; None runs the historical
        #: synchronous one-request-at-a-time path
        self.scheduler: Optional[QueryScheduler] = None
        # Invariant watching (proactive alerting).
        self._watched_clients: List[str] = []
        self._watch_verdicts: Dict[str, bool] = {}  # client -> isolated?
        self._watch_pending = False
        #: content hash of the snapshot the last watch check verified;
        #: a coalesced check against byte-identical configuration reuses
        #: the previous verdicts instead of re-answering every query
        self._watch_content_hash: Optional[str] = None
        self.watch_checks_skipped = 0
        self.notices_pushed = 0
        #: the preventive verify-then-install gate, once attached
        self.gate = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Release persistent executors (engine pools, scheduler shards).

        Idempotent, and the controller stays functional afterwards —
        closed pools degrade to inline serial execution — so a scenario
        can shut down mid-simulation without losing answers.
        """
        if self.scheduler is not None:
            self.scheduler.close()
        self.engine.close()

    def start(self, network: Network) -> None:
        """Attach to every switch, install interception, begin monitoring."""
        self.attach(network)
        self.inband = InBandTester(
            self,
            self.keypair,
            self.registrations,
            auth_timeout=self._auth_timeout,
            auth_retries=self._auth_retries,
        )
        self.inband.install_interception()
        self.monitor = ConfigurationMonitor(
            self,
            network.topology,
            mode=self._monitor_mode,
            mean_poll_interval=self._mean_poll_interval,
            randomize_polls=self._randomize_polls,
            poll_timeout=self._poll_timeout,
            max_poll_retries=self._max_poll_retries,
        )
        self.monitor.on_poll_complete(self._after_poll)
        self.monitor.on_delta(self.engine.apply_delta)
        self.monitor.start()
        if self._serving_config is not None:
            # The serving tier shares the controller's monotonic clock
            # (one high-water mark for freshness and rate limiting) and
            # unlocks the verifier's row-level sub-answer cache: batches
            # of distinct queries over one snapshot decode each matrix
            # row once instead of once per query class.
            self.verifier.enable_row_cache()
            self.scheduler = QueryScheduler(
                answer_fn=self._scheduler_answer,
                snapshot_fn=self.snapshot,
                freshness_fn=self._freshness,
                clock=self.clock,
                config=self._serving_config,
                ready_fn=self.verifier.ready,
                warm_fn=self.verifier.warm,
                schedule_fn=lambda delay, cb: network.sim.schedule(delay, cb),
            )

    def attach_gate(self, gate) -> None:
        """Arm a :class:`~repro.core.gate.PreventiveGate` on this service.

        The gate adopts this controller's engine, verifier, monitor
        mirror and signing key (and exempts this controller's own
        FlowMods from interception).  Call after :meth:`start` so the
        monitor exists; the gate itself must have been installed on the
        network *before* any provider channel opened.
        """
        assert self.monitor is not None, "start() before attach_gate()"
        self.gate = gate
        gate.bind_service(self)

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def on_monitor_update(self, switch: str, message: FlowMonitorUpdate) -> None:
        assert self.monitor is not None
        self.monitor.handle_monitor_update(switch, message)
        self._self_protect(switch, message)
        self._maybe_record_history()
        self._schedule_watch_check()

    def on_packet_in(self, switch: str, message: PacketIn) -> None:
        packet = message.packet
        if packet is None:
            return
        if packet.eth_type == ETH_TYPE_LLDP:
            assert self.monitor is not None
            self.monitor.handle_probe(switch, message)
        elif packet.tp_dst == RVAAS_MAGIC_PORT:
            self._handle_query_packet(switch, message)
        elif packet.tp_dst == RVAAS_AUTH_PORT:
            assert self.inband is not None
            self.inband.handle_auth_reply((switch, message.in_port), message)

    # ------------------------------------------------------------------
    # Self-protection
    # ------------------------------------------------------------------

    def _self_protect(self, switch: str, message: FlowMonitorUpdate) -> None:
        """Detect (and repair) tampering with our interception rules."""
        if (
            message.event == "removed"
            and message.cookie == RVAAS_COOKIE
            # Only explicit deletions are hostile; timeouts cannot happen
            # (interception rules are permanent) and "replaced" merely
            # means another (replicated) RVaaS instance re-asserted the
            # same rule.
            and message.reason not in ("timeout", "replaced")
        ):
            self.alarms.append(
                TamperAlarm(
                    time=self.now,
                    kind="interception-removed",
                    switch=switch,
                    details=message.match.describe(),
                )
            )
            assert self.inband is not None
            self.inband.install_interception_on(switch)

    def _after_poll(self, switch: str, when: float) -> None:
        # A punt rule whose FlowMod was lost in transit never appears in
        # the mirror and never raises a "removed" event; the poll is the
        # one place the gap shows, so repair it here.  Not an alarm —
        # channel loss is not tampering.
        assert self.monitor is not None and self.inband is not None
        self.interception_repairs += self.inband.reassert_interception(
            switch, self.monitor.current_rules(switch)
        )
        self._maybe_record_history()

    def _maybe_record_history(self) -> None:
        if not self._record_history or self.monitor is None:
            return
        if self.monitor.version == self._last_history_version:
            return
        self._last_history_version = self.monitor.version
        self.history.record(self.snapshot())

    # ------------------------------------------------------------------
    # Query handling (the Fig. 1 / Fig. 2 pipeline)
    # ------------------------------------------------------------------

    def _handle_query_packet(self, switch: str, message: PacketIn) -> None:
        packet = message.packet
        assert packet is not None
        payload = packet.payload
        if not isinstance(payload, SealedRequest):
            return
        origin = (switch, message.in_port)
        try:
            request = self._unseal(payload)
        except (SignatureError, ValueError, KeyError) as exc:
            self.alarms.append(
                TamperAlarm(
                    time=self.now,
                    kind="bad-request",
                    switch=switch,
                    details=str(exc),
                )
            )
            return
        if self.scheduler is not None:
            self.scheduler.submit(
                request.client,
                request.query,
                nonce=request.nonce,
                on_done=self._on_scheduled,
                context=(request, origin),
            )
            return
        self._serve(request, origin)

    def _unseal(self, sealed: SealedRequest) -> QueryRequest:
        registration = self.registrations.get(sealed.client)
        if registration is None:
            raise KeyError(f"unknown client: {sealed.client!r}")
        unseal = lambda: unseal_request(
            sealed, self.keypair.private, registration.public_key
        )
        if self.enclave is not None:
            return self.enclave.run(unseal)
        return unseal()

    def _serve(self, request: QueryRequest, origin: tuple[str, int]) -> None:
        """Run the logical analysis, optionally an auth round, and reply."""
        self.queries_served += 1
        registration = self.registrations[request.client]
        snapshot = self.snapshot()
        if isinstance(request.query, ExposureHistoryQuery):
            answer = self.exposure_history(
                request.client, victim_host=request.query.victim_host
            )
        else:
            answer = self.verifier.answer(request.query, registration, snapshot)
        if self._needs_auth_round(request.query):
            assert self.inband is not None
            targets = self.verifier.auth_targets(
                registration, snapshot, request.query.scope
            )
            self.inband.start_round(
                targets,
                request.nonce,
                lambda outcome: self._respond_with_auth(
                    request, origin, snapshot, answer, outcome
                ),
            )
        else:
            self._respond(request, origin, snapshot, answer, issued=0, received=0)

    # ------------------------------------------------------------------
    # Scheduled serving (the ISSUE 7 tier)
    # ------------------------------------------------------------------

    def _scheduler_answer(self, client: str, query: Query, snapshot):
        """The scheduler's engine entry point: one answer per unique key."""
        if isinstance(query, ExposureHistoryQuery):
            return self.exposure_history(client, victim_host=query.victim_host)
        return self.verifier.answer(query, self.registrations[client], snapshot)

    def _on_scheduled(self, pending: PendingQuery, outcome: ServeOutcome) -> None:
        """Fan one scheduler outcome back out into a sealed reply."""
        request, origin = pending.context
        if outcome.status != STATUS_OK:
            self._respond_refusal(request, origin, outcome)
            return
        self.queries_served += 1
        snapshot = outcome.snapshot
        answer = outcome.answer
        if self._needs_auth_round(request.query):
            # Authentication is per-request evidence (liveness *now*),
            # so it is never coalesced: each admitted request runs its
            # own round and grafts the evidence onto the shared answer.
            assert self.inband is not None
            registration = self.registrations[request.client]
            targets = self.verifier.auth_targets(
                registration, snapshot, request.query.scope
            )
            self.inband.start_round(
                targets,
                request.nonce,
                lambda auth_outcome: self._respond_with_auth(
                    request, origin, snapshot, answer, auth_outcome
                ),
            )
        else:
            self._respond(request, origin, snapshot, answer, issued=0, received=0)

    def _respond_refusal(
        self, request: QueryRequest, origin: tuple[str, int], outcome: ServeOutcome
    ) -> None:
        """Seal an explicit OVERLOADED / RATE_LIMITED reply (no answer).

        The refusal is still signed and still carries the freshest
        report the service has: a shed client can tell honest overload
        from an adversary eating its packets.
        """
        assert self.network is not None and self.inband is not None
        registration = self.registrations[request.client]
        snapshot = outcome.snapshot
        response = QueryResponse(
            client=request.client,
            nonce=request.nonce,
            answer=None,
            snapshot_version=snapshot.version if snapshot is not None else -1,
            answered_at=self.clock.now(),
            freshness=outcome.freshness,
            status=outcome.status,
        )
        sealed = seal_response(
            response,
            registration.public_key,
            self.keypair.private,
            self.network.sim.rng,
        )
        switch, port = origin
        record = registration.host_at(switch, port)
        client_ip = IPv4Address(record.ip) if record else IPv4Address(0)
        self.inband.send_response(switch, port, client_ip, sealed)

    @staticmethod
    def _needs_auth_round(query: Query) -> bool:
        return (
            isinstance(query, (IsolationQuery, ReachableDestinationsQuery))
            and query.authenticate
        )

    def _respond_with_auth(
        self,
        request: QueryRequest,
        origin: tuple[str, int],
        snapshot: NetworkSnapshot,
        answer,
        outcome: AuthRoundOutcome,
    ) -> None:
        evidence = self._evidence_from(outcome)
        if isinstance(answer, (IsolationAnswer, ReachableDestinationsAnswer)):
            answer = dc_replace(answer, auth=evidence)
        self._respond(
            request,
            origin,
            snapshot,
            answer,
            issued=outcome.issued,
            received=outcome.received,
        )

    def _evidence_from(self, outcome: AuthRoundOutcome) -> AuthEvidence:
        authenticated = tuple(
            self.verifier.resolve_endpoint(switch, port)
            for (switch, port) in sorted(outcome.verified)
        )
        silent = tuple(
            self.verifier.resolve_endpoint(switch, port)
            for (switch, port) in sorted(outcome.silent_targets())
        )
        return AuthEvidence(
            requests_issued=outcome.issued,
            replies_received=outcome.received,
            authenticated_endpoints=authenticated,
            silent_endpoints=silent,
        )

    def _respond(
        self,
        request: QueryRequest,
        origin: tuple[str, int],
        snapshot: NetworkSnapshot,
        answer,
        *,
        issued: int,
        received: int,
    ) -> None:
        assert self.network is not None and self.inband is not None
        registration = self.registrations[request.client]
        response = QueryResponse(
            client=request.client,
            nonce=request.nonce,
            answer=answer,
            snapshot_version=snapshot.version,
            answered_at=self.now,
            auth_requests_issued=issued,
            auth_replies_received=received,
            freshness=self._freshness(snapshot),
        )
        sealed = seal_response(
            response,
            registration.public_key,
            self.keypair.private,
            self.network.sim.rng,
        )
        switch, port = origin
        record = registration.host_at(switch, port)
        client_ip = IPv4Address(record.ip) if record else IPv4Address(0)
        self.inband.send_response(switch, port, client_ip, sealed)

    def _freshness(self, snapshot: NetworkSnapshot) -> FreshnessReport:
        """Staleness disclosure for a reply derived from ``snapshot``.

        Degrade honestly: the verdict is computed on the evidence we
        have, and the reply states exactly how old that evidence is and
        which switches we currently cannot vouch for.

        Ages are computed on the controller's monotonic clock: under
        replayed or simulated time ``self.now`` can step backwards
        across a snapshot's ``taken_at``, and a clamped-to-zero age
        would silently hide real staleness while a raw subtraction
        would report a *negative* one (evidence from the future).
        """
        assert self.monitor is not None
        staleness = self.monitor.switch_staleness()
        return FreshnessReport(
            snapshot_age=max(0.0, self.clock.now() - snapshot.taken_at),
            max_switch_staleness=max(staleness.values(), default=0.0),
            degraded_switches=self.monitor.health.degraded(),
            lost_switches=self.monitor.health.lost(),
        )

    # ------------------------------------------------------------------
    # Direct (out-of-band) access for experiments and operators
    # ------------------------------------------------------------------

    def snapshot(self) -> NetworkSnapshot:
        assert self.monitor is not None, "service not started"
        return self.monitor.snapshot()

    def answer_locally(self, client: str, query: Query):
        """Run a query synchronously on the current snapshot.

        Bypasses the in-band protocol (no crypto, no auth round) — used
        by benchmarks isolating verifier cost, and by operators with
        console access to the RVaaS box.
        """
        if isinstance(query, ExposureHistoryQuery):
            return self.exposure_history(client, victim_host=query.victim_host)
        registration = self.registrations[client]
        return self.verifier.answer(query, registration, self.snapshot())

    def exposure_history(
        self, client: str, *, victim_host: str = ""
    ) -> ExposureHistoryAnswer:
        """Answer the §IV-C history query from the retained snapshots."""
        from repro.core.traceback import AttackTraceback

        traceback = AttackTraceback(self.history, self.registrations)
        registration = self.registrations[client]
        hosts = [
            record.name
            for record in registration.hosts
            if not victim_host or record.name == victim_host
        ]
        reports = []
        entries = 0
        for host in hosts:
            trace = traceback.trace(client, host)
            entries = max(entries, trace.entries_analyzed)
            reports.append(
                HostExposureReport(
                    host=host,
                    windows=tuple(
                        ExposureWindowSummary(
                            opened_at=window.opened_at,
                            closed_at=window.closed_at,
                            ingress_endpoints=window.ingress_ports,
                        )
                        for window in trace.windows
                    ),
                )
            )
        return ExposureHistoryAnswer(
            reports=tuple(reports), history_entries_analyzed=entries
        )

    # ------------------------------------------------------------------
    # Invariant watching: proactive isolation alerts
    # ------------------------------------------------------------------

    def watch_isolation(self, client: str) -> None:
        """Subscribe ``client`` to proactive isolation alerts.

        On every configuration change RVaaS re-verifies the client's
        isolation (coalesced per event batch); the moment the verdict
        flips to *violated*, a signed, encrypted
        :class:`~repro.core.protocol.ViolationNotice` is pushed in-band
        to the client's first access point — no polling needed.
        """
        if client not in self.registrations:
            raise KeyError(f"unknown client: {client!r}")
        if client not in self._watched_clients:
            self._watched_clients.append(client)
            self._watch_verdicts[client] = self._isolation_verdict(client)

    def _isolation_verdict(self, client: str) -> bool:
        answer = self.verifier.isolation(
            self.registrations[client], self.snapshot()
        )
        return answer.isolated

    def _schedule_watch_check(self) -> None:
        """Coalesce per-FlowMod events into one re-verification."""
        if not self._watched_clients or self._watch_pending:
            return
        assert self.network is not None
        self._watch_pending = True
        self.network.sim.schedule(0.001, self._run_watch_check)

    def _run_watch_check(self) -> None:
        self._watch_pending = False
        snapshot = self.snapshot()
        content = snapshot.content_hash()
        # Snapshot the subscriber list: a callback below may subscribe or
        # unsubscribe a client, and mutating the list while iterating it
        # would skip (or double-check) a neighbour.
        clients = list(self._watched_clients)
        if content == self._watch_content_hash and all(
            client in self._watch_verdicts for client in clients
        ):
            # The configuration is byte-identical to what the previous
            # check verified: every verdict (and hence every notice
            # decision) would come out the same, so the whole round is
            # one hash comparison.  New subscribers still get checked.
            self.watch_checks_skipped += 1
            return
        self._watch_content_hash = content
        for client in clients:
            try:
                self._check_watched_client(client, snapshot)
            except Exception as exc:  # noqa: BLE001 — isolate per client
                # One client's verification blowing up must not silence
                # alerts for every other subscriber.
                self.watch_errors += 1
                self.alarms.append(
                    TamperAlarm(
                        time=self.now,
                        kind="watch-error",
                        switch="",
                        details=f"{client}: {exc!r}",
                    )
                )

    def _check_watched_client(
        self, client: str, snapshot: Optional[NetworkSnapshot] = None
    ) -> None:
        registration = self.registrations[client]
        answer = self.verifier.isolation(
            registration, snapshot if snapshot is not None else self.snapshot()
        )
        was_isolated = self._watch_verdicts.get(client, True)
        self._watch_verdicts[client] = answer.isolated
        if was_isolated and not answer.isolated:
            self._push_notice(
                client,
                ViolationNotice(
                    client=client,
                    invariant="isolation",
                    raised_at=self.now,
                    snapshot_version=self.monitor.version if self.monitor else 0,
                    details=(
                        "isolation violated by "
                        + ", ".join(
                            e.labelled() for e in answer.violating_endpoints
                        )
                    ),
                    violating_endpoints=answer.violating_endpoints,
                ),
            )

    def _push_notice(self, client: str, notice: ViolationNotice) -> None:
        assert self.network is not None and self.inband is not None
        registration = self.registrations[client]
        host = registration.hosts[0]
        sealed = seal_notice(
            notice,
            registration.public_key,
            self.keypair.private,
            self.network.sim.rng,
        )
        self.inband.send_response(
            host.switch, host.port, IPv4Address(host.ip), sealed
        )
        self.notices_pushed += 1

    def audit_dead_ends(self, client: str) -> list:
        """Operator-level audit: where does this client's traffic die?

        Returns the mid-path :class:`~repro.hsa.reachability.DropZone`
        list (depth > 0): traffic that was accepted and forwarded, then
        silently discarded — the structural signature of a blackhole.
        Ingress policy drops (anti-spoofing guards, isolation) at
        depth 0 are excluded.  This is an operator/auditor API; it names
        internal switches, so it is intentionally not exposed through
        the client query interface.
        """
        registration = self.registrations[client]
        analysis = self.verifier._analysis_snapshot(self.snapshot())
        dead_ends = []
        for host in registration.hosts:
            result = self.engine.analyze(
                analysis,
                host.switch,
                host.port,
                self.verifier._outbound_space(host, _EMPTY_SCOPE),
                collect_drops=True,
            )
            dead_ends.extend(z for z in result.drops if z.depth > 0)
        return dead_ends

    def probe_topology_now(self) -> None:
        assert self.monitor is not None
        self.monitor.probe_topology()

    def check_wiring(self) -> bool:
        """Verify observed adjacencies against the declared wiring plan."""
        assert self.monitor is not None
        missing, unexpected = self.monitor.verify_wiring()
        if missing or unexpected:
            self.alarms.append(
                TamperAlarm(
                    time=self.now,
                    kind="wiring-mismatch",
                    switch="",
                    details=f"missing={sorted(missing)} unexpected={sorted(unexpected)}",
                )
            )
            return False
        return True
