"""Multi-provider federation: recursive queries across domains (§IV-C a).

"Queries may not be limited to a single provider but may recursively
span consecutive networks along a route.  In this case, queries need to
be propagated between the RVaaS servers of the respective providers."

Model: one physical internetwork partitioned into provider domains, each
with its own RVaaS controller attached to (and monitoring) only its own
switches.  A federated query starts at the client's home domain; whenever
the analysed traffic exits through an inter-domain link, the surviving
header space is handed to the peer domain's RVaaS server (one federated
message), which continues the analysis on *its* snapshot.  Endpoint-level
answers compose; internal paths never cross the trust boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.protocol import ClientRegistration
from repro.core.queries import Endpoint, TrafficScope
from repro.core.service import RVaaSController
from repro.core.snapshot import NetworkSnapshot
from repro.dataplane.topology import Topology
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.network_tf import PortRef
from repro.hsa.reachability import ReachabilityAnalyzer
from repro.hsa.wildcard import Wildcard


@dataclass
class ProviderDomain:
    """One provider: a switch set plus its own RVaaS service."""

    name: str
    switches: frozenset[str]
    service: RVaaSController

    def owns(self, switch: str) -> bool:
        return switch in self.switches


@dataclass
class FederatedAnswer:
    """Result of a recursive cross-domain reachability query."""

    endpoints: Tuple[Endpoint, ...]
    domains_involved: Tuple[str, ...]
    federated_messages: int
    max_chain_depth: int


@dataclass
class _WorkItem:
    domain: str
    switch: str
    port: int
    space: HeaderSpace
    depth: int


def restrict_snapshot(
    snapshot: NetworkSnapshot, switches: frozenset[str]
) -> NetworkSnapshot:
    """A domain-local view: only this domain's rules and internal wiring.

    Inter-domain links disappear from the wiring, so the HSA propagation
    naturally terminates at boundary ports (zones of kind "unbound"),
    which the federation then hands to the peer domain.
    """
    return NetworkSnapshot(
        version=snapshot.version,
        taken_at=snapshot.taken_at,
        rules={s: r for s, r in snapshot.rules.items() if s in switches},
        meters=tuple(m for m in snapshot.meters if m.switch in switches),
        wiring={
            here: there
            for here, there in snapshot.wiring.items()
            if here[0] in switches and there[0] in switches
        },
        edge_ports={
            s: ports for s, ports in snapshot.edge_ports.items() if s in switches
        },
        switch_ports={
            s: ports for s, ports in snapshot.switch_ports.items() if s in switches
        },
        locations={
            s: loc for s, loc in snapshot.locations.items() if s in switches
        },
        link_capacities={
            pair: capacity
            for pair, capacity in snapshot.link_capacities.items()
            if pair <= switches
        },
    )


class RVaaSFederation:
    """Coordinates recursive queries across provider domains."""

    def __init__(
        self,
        domains: List[ProviderDomain],
        topology: Topology,
        *,
        max_depth: int = 16,
    ) -> None:
        self.domains = {domain.name: domain for domain in domains}
        self.topology = topology
        self.max_depth = max_depth
        self._domain_of_switch: Dict[str, str] = {}
        for domain in domains:
            for switch in domain.switches:
                if switch in self._domain_of_switch:
                    raise ValueError(f"switch {switch} assigned to two domains")
                self._domain_of_switch[switch] = domain.name
        self._global_wiring = topology.wiring()

    def domain_of(self, switch: str) -> ProviderDomain:
        return self.domains[self._domain_of_switch[switch]]

    def boundary_peer(self, switch: str, port: int) -> Optional[PortRef]:
        """The far end of an inter-domain link, if (switch, port) is one."""
        peer = self._global_wiring.get((switch, port))
        if peer is None:
            return None
        if self._domain_of_switch[peer[0]] == self._domain_of_switch[switch]:
            return None
        return peer

    # ------------------------------------------------------------------
    # Recursive reachability
    # ------------------------------------------------------------------

    def reachable_destinations(
        self,
        registration: ClientRegistration,
        *,
        scope: TrafficScope = TrafficScope(),
    ) -> FederatedAnswer:
        """Which endpoints (in any domain) can the client's traffic reach?"""
        endpoints: set[Endpoint] = set()
        involved: set[str] = set()
        seen: Dict[PortRef, HeaderSpace] = {}
        messages = 0
        max_depth = 0

        work: List[_WorkItem] = []
        for host in registration.hosts:
            fields = {"ip_src": host.ip, "vlan_id": 0}
            fields.update(scope.constraints())
            work.append(
                _WorkItem(
                    domain=self._domain_of_switch[host.switch],
                    switch=host.switch,
                    port=host.port,
                    space=HeaderSpace.single(Wildcard.from_fields(**fields)),
                    depth=0,
                )
            )

        while work:
            item = work.pop()
            if item.depth > self.max_depth:
                continue
            covered = seen.get((item.switch, item.port))
            space = item.space if covered is None else item.space.subtract(covered)
            if space.is_empty():
                continue
            seen[(item.switch, item.port)] = (
                space if covered is None else covered.union(space)
            )
            domain = self.domains[item.domain]
            involved.add(domain.name)
            max_depth = max(max_depth, item.depth)
            snapshot = restrict_snapshot(domain.service.snapshot(), domain.switches)
            analyzer = ReachabilityAnalyzer(snapshot.network_tf())
            result = analyzer.analyze(item.switch, item.port, space)
            for zone in result.zones:
                if zone.kind == "edge":
                    endpoints.add(
                        self._resolve_endpoint(domain, zone.switch, zone.port)
                    )
                elif zone.kind == "unbound":
                    peer = self.boundary_peer(zone.switch, zone.port)
                    if peer is None:
                        continue
                    peer_switch, peer_port = peer
                    messages += 1  # one RVaaS->RVaaS federated request
                    work.append(
                        _WorkItem(
                            domain=self._domain_of_switch[peer_switch],
                            switch=peer_switch,
                            port=peer_port,
                            space=zone.space,
                            depth=item.depth + 1,
                        )
                    )
        return FederatedAnswer(
            endpoints=tuple(sorted(endpoints, key=lambda e: (e.switch, e.port))),
            domains_involved=tuple(sorted(involved)),
            federated_messages=messages,
            max_chain_depth=max_depth,
        )

    def _resolve_endpoint(
        self, domain: ProviderDomain, switch: str, port: int
    ) -> Endpoint:
        return domain.service.verifier.resolve_endpoint(switch, port)

    # ------------------------------------------------------------------
    # Federated geo query
    # ------------------------------------------------------------------

    def regions_traversed(
        self,
        registration: ClientRegistration,
        *,
        scope: TrafficScope = TrafficScope(),
    ) -> Tuple[str, ...]:
        """Union of regions crossed in every involved domain."""
        regions: set[str] = set()
        seen: Dict[PortRef, HeaderSpace] = {}
        work: List[_WorkItem] = []
        for host in registration.hosts:
            fields = {"ip_src": host.ip, "vlan_id": 0}
            fields.update(scope.constraints())
            work.append(
                _WorkItem(
                    domain=self._domain_of_switch[host.switch],
                    switch=host.switch,
                    port=host.port,
                    space=HeaderSpace.single(Wildcard.from_fields(**fields)),
                    depth=0,
                )
            )
        while work:
            item = work.pop()
            if item.depth > self.max_depth:
                continue
            covered = seen.get((item.switch, item.port))
            space = item.space if covered is None else item.space.subtract(covered)
            if space.is_empty():
                continue
            seen[(item.switch, item.port)] = (
                space if covered is None else covered.union(space)
            )
            domain = self.domains[item.domain]
            snapshot = restrict_snapshot(domain.service.snapshot(), domain.switches)
            analyzer = ReachabilityAnalyzer(snapshot.network_tf())
            result = analyzer.analyze(item.switch, item.port, space)
            for switch in result.switches_traversed:
                location = snapshot.location_of(switch)
                if location is not None:
                    regions.add(location.region)
            for zone in result.zones:
                if zone.kind != "unbound":
                    continue
                peer = self.boundary_peer(zone.switch, zone.port)
                if peer is None:
                    continue
                work.append(
                    _WorkItem(
                        domain=self._domain_of_switch[peer[0]],
                        switch=peer[0],
                        port=peer[1],
                        space=zone.space,
                        depth=item.depth + 1,
                    )
                )
        return tuple(sorted(regions))
