"""Multi-provider federation: recursive queries across domains (§IV-C a).

"Queries may not be limited to a single provider but may recursively
span consecutive networks along a route.  In this case, queries need to
be propagated between the RVaaS servers of the respective providers."

Model: one physical internetwork partitioned into provider domains, each
with its own RVaaS controller attached to (and monitoring) only its own
switches.  A federated query starts at the client's home domain; whenever
the analysed traffic exits through an inter-domain link, the surviving
header space is handed to the peer domain's RVaaS server (one federated
message), which continues the analysis on *its* snapshot.  Endpoint-level
answers compose; internal paths never cross the trust boundary.

Per-domain analysis routes through each domain's
:class:`~repro.core.engine.VerificationEngine` (content-hash cached,
delta-repaired), never through an ad-hoc
``ReachabilityAnalyzer(snapshot.network_tf())`` rebuild.  On the atom
backend the federation composes per-provider
:class:`~repro.hsa.atoms.ReachabilityMatrix` rows at inter-domain links
("matrix" mode): each domain compiles once, exports boundary-port rows
via :meth:`~repro.core.engine.VerificationEngine.atom_rows`, and a
cross-domain hop is an atom-bitset intersection plus one decode/encode
at the trust boundary — with per-item fallback to engine-cached wildcard
propagation whenever a handed-over space is not a union of the peer's
atoms, so answers are exact in every mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.engine import VerificationEngine
from repro.core.protocol import ClientRegistration
from repro.core.queries import Endpoint, TrafficScope
from repro.core.service import RVaaSController
from repro.core.snapshot import NetworkSnapshot
from repro.dataplane.topology import Topology
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.network_tf import PortRef
from repro.hsa.reachability import ReachabilityAnalyzer
from repro.hsa.wildcard import Wildcard

#: Query execution modes (see :meth:`RVaaSFederation.federated_query`).
#: "matrix" composes per-domain reachability-matrix rows at boundary
#: ports (atom backend; falls back per item); "serial" propagates
#: wildcard header spaces per hop through the engine's memoised
#: analyzer; "recompile" is the pre-engine legacy path that rebuilds
#: the domain NTF on every work item — kept as the E22 baseline.
FEDERATION_MODES = ("matrix", "serial", "recompile")


@dataclass
class ProviderDomain:
    """One provider: a switch set plus the service answering for it.

    Two flavours compose in the same federation: a full
    :class:`~repro.core.service.RVaaSController` (testbed deployments —
    the domain's engine, snapshot and endpoint resolution come from the
    service), or a lightweight static domain built with
    :meth:`from_snapshot` (AS-scale workloads, where instantiating
    hundreds of live controllers would drown the experiment in
    simulation cost rather than verification cost).
    """

    name: str
    switches: frozenset[str]
    service: Optional[RVaaSController] = None
    #: static domains: returns the (global or domain) snapshot to
    #: restrict; ignored when ``service`` is set
    snapshot_fn: Optional[Callable[[], NetworkSnapshot]] = None
    #: the domain's verification engine; defaults to the service's
    #: engine, or a fresh one for static domains (lazily)
    engine: Optional[VerificationEngine] = None
    #: maps a (switch, port) edge zone to a labelled endpoint; defaults
    #: to the service verifier's resolver
    resolve_fn: Optional[Callable[[str, int], Endpoint]] = None

    def owns(self, switch: str) -> bool:
        return switch in self.switches

    @classmethod
    def from_snapshot(
        cls,
        name: str,
        switches: frozenset[str],
        snapshot: NetworkSnapshot,
        *,
        engine: Optional[VerificationEngine] = None,
        resolve_fn: Optional[Callable[[str, int], Endpoint]] = None,
    ) -> "ProviderDomain":
        """A service-less domain verifying a fixed snapshot."""
        return cls(
            name=name,
            switches=frozenset(switches),
            snapshot_fn=lambda: snapshot,
            engine=engine,
            resolve_fn=resolve_fn,
        )

    def current_snapshot(self) -> NetworkSnapshot:
        if self.service is not None:
            return self.service.snapshot()
        if self.snapshot_fn is not None:
            return self.snapshot_fn()
        raise ValueError(f"domain {self.name} has neither service nor snapshot")

    def verification_engine(
        self,
        default_factory: Optional[Callable[[], VerificationEngine]] = None,
    ) -> VerificationEngine:
        if self.engine is None:
            if self.service is not None:
                self.engine = self.service.engine
            elif default_factory is not None:
                self.engine = default_factory()
            else:
                self.engine = VerificationEngine()
        return self.engine

    def resolve_endpoint(self, switch: str, port: int) -> Endpoint:
        if self.resolve_fn is not None:
            return self.resolve_fn(switch, port)
        if self.service is not None:
            return self.service.verifier.resolve_endpoint(switch, port)
        return Endpoint(switch=switch, port=port)


@dataclass(frozen=True)
class FederatedAnswer:
    """The common envelope of every federated query.

    One propagation discovers both the endpoint answer and the regions
    crossed, so :meth:`RVaaSFederation.reachable_destinations` and
    :meth:`RVaaSFederation.regions_traversed` return this same envelope
    with identical accounting.  ``truncated`` follows the
    ``FreshnessReport`` honesty discipline: a depth-limited exploration
    must be distinguishable from a complete one, so work items dropped
    at ``max_depth`` are counted, never silently discarded.
    """

    endpoints: Tuple[Endpoint, ...]
    regions: Tuple[str, ...]
    domains_involved: Tuple[str, ...]
    federated_messages: int
    max_chain_depth: int
    truncated: bool = False
    dropped_items: int = 0
    mode: str = "serial"


@dataclass
class _WorkItem:
    domain: str
    switch: str
    port: int
    space: HeaderSpace
    depth: int


@dataclass
class _DomainContext:
    """Per-domain compiled view, cached across work items and queries.

    Keyed on the restricted-snapshot content hash: a domain consulted by
    fifty work items restricts and hashes its snapshot once, and the
    engine's content-addressed caches make every repeat propagation a
    lookup.  ``source`` pins the provider snapshot object the context
    was derived from, so the steady-state validity check is an identity
    comparison, not a re-restriction.
    """

    domain: ProviderDomain
    source: NetworkSnapshot
    snapshot: NetworkSnapshot
    content: str
    engine: VerificationEngine
    #: the query-seed tuple last pushed into this engine (matrix mode)
    seeded: Tuple[Wildcard, ...] = ()


def restrict_snapshot(
    snapshot: NetworkSnapshot, switches: frozenset[str]
) -> NetworkSnapshot:
    """A domain-local view: only this domain's rules and internal wiring.

    Inter-domain links disappear from the wiring, so the HSA propagation
    naturally terminates at boundary ports (zones of kind "unbound" —
    never "edge": edge ports are host attachments declared by the
    snapshot, and the restriction only ever filters that set), which the
    federation then hands to the peer domain.  Per-switch rule hashes
    are shared with the source snapshot (the rule tuples are the same
    objects), so hashing the restricted view costs O(domain) even when
    the source hashes were monitor-seeded.
    """
    return NetworkSnapshot(
        version=snapshot.version,
        taken_at=snapshot.taken_at,
        rules={s: r for s, r in snapshot.rules.items() if s in switches},
        meters=tuple(m for m in snapshot.meters if m.switch in switches),
        wiring={
            here: there
            for here, there in snapshot.wiring.items()
            if here[0] in switches and there[0] in switches
        },
        edge_ports={
            s: ports for s, ports in snapshot.edge_ports.items() if s in switches
        },
        switch_ports={
            s: ports for s, ports in snapshot.switch_ports.items() if s in switches
        },
        locations={
            s: loc for s, loc in snapshot.locations.items() if s in switches
        },
        link_capacities={
            pair: capacity
            for pair, capacity in snapshot.link_capacities.items()
            if pair <= switches
        },
        _switch_hashes={
            s: snapshot.switch_content_hash(s)
            for s in snapshot.rules
            if s in switches
        },
    )


class RVaaSFederation:
    """Coordinates recursive queries across provider domains."""

    def __init__(
        self,
        domains: List[ProviderDomain],
        topology: Topology,
        *,
        max_depth: int = 16,
        workers: Optional[int] = None,
        pool_mode: Optional[str] = None,
    ) -> None:
        self.domains = {domain.name: domain for domain in domains}
        self.topology = topology
        self.max_depth = max_depth
        #: fan-out width/mode for engines this federation creates for
        #: service-less domains; ``None`` defers to ``RVAAS_POOL_*``.
        #: Domains of the same width share one compile farm, so one
        #: domain's warm parts (the atom space, unchanged switch rules
        #: at a shared boundary digest) benefit its peers.
        self.workers = workers
        self.pool_mode = pool_mode
        self._owned_engines: List[VerificationEngine] = []
        self._domain_of_switch: Dict[str, str] = {}
        for domain in domains:
            for switch in domain.switches:
                if switch in self._domain_of_switch:
                    raise ValueError(f"switch {switch} assigned to two domains")
                self._domain_of_switch[switch] = domain.name
        self._global_wiring = topology.wiring()
        self._contexts: Dict[str, _DomainContext] = {}

    def domain_of(self, switch: str) -> ProviderDomain:
        return self.domains[self._domain_of_switch[switch]]

    def boundary_peer(self, switch: str, port: int) -> Optional[PortRef]:
        """The far end of an inter-domain link, if (switch, port) is one."""
        peer = self._global_wiring.get((switch, port))
        if peer is None:
            return None
        if self._domain_of_switch[peer[0]] == self._domain_of_switch[switch]:
            return None
        return peer

    # ------------------------------------------------------------------
    # Per-domain compiled artifacts
    # ------------------------------------------------------------------

    def _domain_context(self, name: str) -> _DomainContext:
        domain = self.domains[name]
        source = domain.current_snapshot()
        ctx = self._contexts.get(name)
        if ctx is not None and ctx.source is source:
            return ctx
        restricted = restrict_snapshot(source, domain.switches)
        content = restricted.content_hash()
        if ctx is not None and ctx.content == content:
            # Same configuration under a new snapshot object (e.g. the
            # monitor re-froze an unchanged mirror): keep the compiled
            # context, just re-pin the identity check.
            ctx.source = source
            return ctx
        ctx = _DomainContext(
            domain=domain,
            source=source,
            snapshot=restricted,
            content=content,
            engine=domain.verification_engine(self._make_engine),
        )
        self._contexts[name] = ctx
        return ctx

    def _make_engine(self) -> VerificationEngine:
        engine = VerificationEngine(
            workers=self.workers, pool_mode=self.pool_mode
        )
        self._owned_engines.append(engine)
        return engine

    def prewarm(self) -> None:
        """Compile every domain's restricted snapshot eagerly.

        Each domain's per-switch compiles and matrix rows fan over its
        engine's pool — on the process farm when ``pool_mode`` says so —
        instead of being paid lazily inside the first federated query's
        work loop.  The work loop itself stays serial by design (its
        message counts are part of the audited answers).
        """
        for name in sorted(self.domains):
            ctx = self._domain_context(name)
            ctx.engine.compile(ctx.snapshot)

    def close(self) -> None:
        """Close engines this federation created (idempotent).

        Engines borrowed from a domain's service (or injected by the
        caller) are left alone — their owners manage their lifecycle.
        """
        for engine in self._owned_engines:
            engine.close()

    # ------------------------------------------------------------------
    # The federated query core (all modes, all query classes)
    # ------------------------------------------------------------------

    def federated_query(
        self,
        registration: ClientRegistration,
        *,
        scope: TrafficScope = TrafficScope(),
        mode: Optional[str] = None,
    ) -> FederatedAnswer:
        """Propagate the client's traffic across every domain it crosses.

        ``mode=None`` picks "matrix" (which degrades gracefully to the
        engine-cached serial path per item on the wildcard backend or
        when a boundary space refuses to encode).  All modes return the
        same endpoint and region sets; they differ only in cost.
        """
        if mode is None:
            mode = "matrix"
        if mode not in FEDERATION_MODES:
            raise ValueError(f"unknown federation mode: {mode!r}")

        endpoints: set[Endpoint] = set()
        regions: set[str] = set()
        involved: set[str] = set()
        #: wildcard-currency coverage per ingress (serial/recompile hops)
        seen_spaces: Dict[PortRef, HeaderSpace] = {}
        #: atom-currency coverage per ingress (matrix hops); the two
        #: ledgers record what was actually processed in each currency —
        #: a mixed sequence at one ingress may redo overlapping work but
        #: never miss any (answers are sets)
        seen_bits: Dict[PortRef, int] = {}
        messages = 0
        max_depth = 0
        dropped = 0

        seeds = tuple(
            Wildcard.from_fields(
                ip_src=host.ip, vlan_id=0, **scope.constraints()
            )
            for host in registration.hosts
        )

        work: List[_WorkItem] = []
        for host in registration.hosts:
            fields = {"ip_src": host.ip, "vlan_id": 0}
            fields.update(scope.constraints())
            work.append(
                _WorkItem(
                    domain=self._domain_of_switch[host.switch],
                    switch=host.switch,
                    port=host.port,
                    space=HeaderSpace.single(Wildcard.from_fields(**fields)),
                    depth=0,
                )
            )

        while work:
            item = work.pop()
            if item.depth > self.max_depth:
                dropped += 1
                continue
            ctx = self._domain_context(item.domain)
            step = None
            if mode == "matrix":
                step = self._matrix_step(
                    ctx, item, seeds, endpoints, regions, involved,
                    seen_bits, work,
                )
            if step is None:
                # serial/recompile modes, and the matrix mode's per-item
                # fallback (wildcard backend, atom overflow, or a handed
                # space that is not a union of this domain's atoms)
                step = self._serial_step(
                    ctx, item, mode, endpoints, regions, involved,
                    seen_spaces, work,
                )
            if step is not None and step[0] == "ok":
                max_depth = max(max_depth, item.depth)
                messages += step[1]

        return FederatedAnswer(
            endpoints=tuple(sorted(endpoints, key=lambda e: (e.switch, e.port))),
            regions=tuple(sorted(regions)),
            domains_involved=tuple(sorted(involved)),
            federated_messages=messages,
            max_chain_depth=max_depth,
            truncated=dropped > 0,
            dropped_items=dropped,
            mode=mode,
        )

    def _serial_step(
        self,
        ctx: _DomainContext,
        item: _WorkItem,
        mode: str,
        endpoints: set,
        regions: set,
        involved: set,
        seen_spaces: Dict[PortRef, HeaderSpace],
        work: List[_WorkItem],
    ) -> Tuple:
        """One wildcard-propagation hop.

        Returns ``("ok", messages_sent)`` when the item carried new
        traffic, ``("covered",)`` when an earlier item at the same
        ingress already propagated all of it.
        """
        ref = (item.switch, item.port)
        covered = seen_spaces.get(ref)
        space = item.space if covered is None else item.space.subtract(covered)
        if space.is_empty():
            return ("covered",)
        seen_spaces[ref] = space if covered is None else covered.union(space)
        involved.add(ctx.domain.name)
        if mode == "recompile":
            # The legacy cache-bypassing path: restrict + rebuild the
            # NTF + a fresh analyzer for every single work item.  Kept
            # only as the E22 baseline and exercised by its bench.
            snapshot = restrict_snapshot(
                ctx.domain.current_snapshot(), ctx.domain.switches
            )
            result = ReachabilityAnalyzer(snapshot.network_tf()).analyze(
                item.switch, item.port, space
            )
        else:
            result = ctx.engine.analyze(
                ctx.snapshot, item.switch, item.port, space
            )
        messages = 0
        for switch in result.switches_traversed:
            location = ctx.snapshot.location_of(switch)
            if location is not None:
                regions.add(location.region)
        for zone in result.zones:
            if zone.kind == "edge":
                endpoints.add(ctx.domain.resolve_endpoint(zone.switch, zone.port))
            elif zone.kind == "unbound":
                peer = self.boundary_peer(zone.switch, zone.port)
                if peer is None:
                    continue
                messages += 1  # one RVaaS->RVaaS federated request
                work.append(
                    _WorkItem(
                        domain=self._domain_of_switch[peer[0]],
                        switch=peer[0],
                        port=peer[1],
                        space=zone.space,
                        depth=item.depth + 1,
                    )
                )
        return ("ok", messages)

    def _matrix_step(
        self,
        ctx: _DomainContext,
        item: _WorkItem,
        seeds: Tuple[Wildcard, ...],
        endpoints: set,
        regions: set,
        involved: set,
        seen_bits: Dict[PortRef, int],
        work: List[_WorkItem],
    ) -> Optional[Tuple]:
        """One matrix-composed hop.

        The whole cross-domain hop is bitset algebra against this
        domain's precomputed :class:`ReachabilityMatrix` row for the
        ingress — plus exactly one decode at each boundary exit, which
        is the only place header spaces must exist in wildcard form
        (they are the inter-provider wire format).  Returns ``None`` to
        fall back to :meth:`_serial_step`: wildcard backend, atom-limit
        overflow, or an incoming space that is not a union of this
        domain's atoms (encode would approximate, and federation never
        approximates).
        """
        engine = ctx.engine
        if engine.backend != "atom":
            return None
        if ctx.seeded != seeds:
            # Make the query's injected spaces exactly encodable in this
            # domain's universe (no-op once the constraints are known).
            engine.seed_atoms(seeds)
            ctx.seeded = seeds
        ref = (item.switch, item.port)
        artifacts = engine.atom_rows(ctx.snapshot, (ref,))
        if artifacts is None:
            return None
        space, matrix = artifacts
        bits = space.encode_space(item.space)
        if bits is None:
            return None
        row = matrix.row(ref)
        if row is None:
            return None
        covered = seen_bits.get(ref, 0)
        bits &= ~covered
        if bits == 0:
            return ("covered",)
        seen_bits[ref] = covered | bits
        involved.add(ctx.domain.name)
        for switch, touched in row.traversed.items():
            if touched & bits:
                location = ctx.snapshot.location_of(switch)
                if location is not None:
                    regions.add(location.region)
        messages = 0
        for zone, zone_bits in row.reach.items():
            if not zone_bits & bits:
                continue  # the row covers the full space; not our traffic
            kind, switch, port = zone
            if kind == "edge":
                endpoints.add(ctx.domain.resolve_endpoint(switch, port))
            elif kind == "unbound":
                peer = self.boundary_peer(switch, port)
                if peer is None:
                    continue
                arrived = matrix.arrived_space(ref, zone, bits)
                if not arrived:
                    continue
                messages += 1  # one RVaaS->RVaaS federated request
                work.append(
                    _WorkItem(
                        domain=self._domain_of_switch[peer[0]],
                        switch=peer[0],
                        port=peer[1],
                        space=space.decode(arrived),
                        depth=item.depth + 1,
                    )
                )
        return ("ok", messages)

    # ------------------------------------------------------------------
    # Query classes (one envelope, identical accounting)
    # ------------------------------------------------------------------

    def reachable_destinations(
        self,
        registration: ClientRegistration,
        *,
        scope: TrafficScope = TrafficScope(),
        mode: Optional[str] = None,
    ) -> FederatedAnswer:
        """Which endpoints (in any domain) can the client's traffic reach?"""
        return self.federated_query(registration, scope=scope, mode=mode)

    def regions_traversed(
        self,
        registration: ClientRegistration,
        *,
        scope: TrafficScope = TrafficScope(),
        mode: Optional[str] = None,
    ) -> FederatedAnswer:
        """Union of regions crossed in every involved domain.

        Same envelope (and accounting) as
        :meth:`reachable_destinations` — read ``answer.regions``.
        """
        return self.federated_query(registration, scope=scope, mode=mode)
