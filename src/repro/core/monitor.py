"""Configuration monitoring: the RVaaS controller's view of the network.

Implements §IV-A1: "the controller maintains an up-to-date snapshot of
the network configuration, either passively (monitoring events) or
actively (query the switch state or issue and later intercept LLDP-like
packets through all internal ports)."

Three mechanisms, individually switchable:

* **Passive**: subscribe to every switch's flow monitor; apply add /
  remove / modify events to the in-memory rule mirror as they arrive.
* **Active**: poll full flow-stats dumps.  Poll times are drawn from an
  exponential distribution — "at random times, which are hard to guess
  for the adversary" — because a periodic schedule can be evaded by a
  synchronized short-lived reconfiguration attack (experiment E6).
* **Topology probing**: LLDP-style probe packets injected via Packet-Out
  on every internal port and intercepted at the neighbour, verifying the
  physical wiring against the declared plan.

Resilience (ISSUE 3): the paper assumes reliable OpenFlow sessions, but
a production monitor must survive lossy channels and switch restarts
without silently serving a stale mirror.  Every active poll therefore
carries a timeout; unanswered polls are retried with jittered
exponential backoff up to a bound, feed the per-switch
:class:`~repro.core.health.ChannelHealthTracker` (healthy -> degraded ->
lost), and a switch recovering from LOST gets a full resync: the flow
monitor is resubscribed (subscriptions die with switch restarts) and a
complete state dump is polled.  Superseded or timed-out polls have their
reply callbacks cancelled so a reply that limps in late can never
overwrite fresher state.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.engine import SnapshotDelta
from repro.core.health import ChannelHealthTracker
from repro.core.snapshot import NetworkSnapshot, SnapshotMeter, switch_rules_hash
from repro.dataplane.topology import GeoLocation, Topology
from repro.hsa.transfer import SnapshotRule
from repro.netlib.addresses import MacAddress
from repro.netlib.constants import ETH_TYPE_LLDP
from repro.netlib.packet import Packet
from repro.openflow.messages import (
    FlowMonitorUpdate,
    FlowStatsReply,
    MeterStatsReply,
    PacketIn,
)

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoids a runtime import cycle with service.py
    from repro.controlplane.controller import ControllerApp


class MonitorMode(enum.Enum):
    """Which §IV-A1 monitoring mechanisms the service runs."""

    PASSIVE = "passive"
    ACTIVE = "active"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class TopologyObservation:
    """One LLDP-style probe interception: an observed physical adjacency."""

    from_switch: str
    from_port: int
    to_switch: str
    to_port: int


@dataclass
class MonitorMetrics:
    """Accounting read by the monitoring-overhead experiment (E11)
    and the fault-resilience experiment (E18)."""

    passive_updates: int = 0
    active_polls: int = 0
    poll_replies: int = 0
    probes_sent: int = 0
    probes_received: int = 0
    snapshots_built: int = 0
    #: snapshot() calls answered from the clean-mirror cache (nothing
    #: changed since the last freeze, so no rebuild happened)
    snapshots_reused: int = 0
    #: polls whose reply never arrived within ``poll_timeout``
    poll_timeouts: int = 0
    #: polls re-issued after a timeout (subset of ``active_polls``)
    poll_retries: int = 0
    #: in-flight polls cancelled because a newer poll replaced them
    polls_superseded: int = 0
    #: retry bursts that exhausted ``max_poll_retries`` (switch lost)
    poll_bursts_abandoned: int = 0
    #: full resyncs performed after a switch reconnected
    resyncs: int = 0


@dataclass
class _PendingPoll:
    """One in-flight active poll of one switch."""

    switch: str
    retry: int
    generation: int
    flow_xid: int = -1
    meter_xid: int = -1
    timeout_event: Optional[object] = None


class ConfigurationMonitor:
    """Maintains the rule/meter mirror and builds snapshots on demand."""

    def __init__(
        self,
        controller: "ControllerApp",
        topology: Topology,
        *,
        mode: MonitorMode = MonitorMode.HYBRID,
        mean_poll_interval: float = 5.0,
        randomize_polls: bool = True,
        poll_timeout: float = 0.25,
        max_poll_retries: int = 3,
        retry_backoff: float = 0.1,
        min_poll_interval: Optional[float] = None,
        poll_interval_cap: Optional[float] = None,
        health: Optional[ChannelHealthTracker] = None,
    ) -> None:
        self.controller = controller
        self.topology = topology
        self.mode = mode
        self.mean_poll_interval = mean_poll_interval
        self.randomize_polls = randomize_polls
        self.poll_timeout = poll_timeout
        self.max_poll_retries = max_poll_retries
        self.retry_backoff = retry_backoff
        # Clamp bounds for the exponential inter-poll delay: expovariate
        # can return ~0 (poll storms) or huge values (unbounded blind
        # windows an adversary can exploit for a short-lived
        # reconfiguration), so both tails are cut.
        self.min_poll_interval = (
            min_poll_interval
            if min_poll_interval is not None
            else mean_poll_interval / 50.0
        )
        self.poll_interval_cap = (
            poll_interval_cap
            if poll_interval_cap is not None
            else mean_poll_interval * 10.0
        )
        if not 0 < self.min_poll_interval <= self.poll_interval_cap:
            raise ValueError(
                "need 0 < min_poll_interval <= poll_interval_cap "
                f"(got {self.min_poll_interval}, {self.poll_interval_cap})"
            )
        self.health = health if health is not None else ChannelHealthTracker()
        self.metrics = MonitorMetrics()
        self._rules: Dict[str, Dict[tuple, SnapshotRule]] = {}
        self._meters: Dict[str, List[SnapshotMeter]] = {}
        self._version = 0
        self._change_listeners: List[Callable[[str], None]] = []
        self._poll_listeners: List[Callable[[str, float], None]] = []
        self._delta_listeners: List[Callable[[SnapshotDelta], None]] = []
        self._polling = False
        #: generation token guarding the polling loop and retry bursts:
        #: stop_polling()/start() bump it, so a stale scheduled tick (or
        #: a retry from before the restart) can never re-arm a second
        #: concurrent loop.
        self._poll_generation = 0
        #: at most one in-flight active poll per switch
        self._pending_polls: Dict[str, _PendingPoll] = {}
        self.poll_times: List[float] = []
        self.topology_observations: List[TopologyObservation] = []
        # Delta accumulators: everything that changed since the last
        # snapshot was frozen, in rule-signature currency.
        self._pending_added: Set[Tuple[str, tuple]] = set()
        self._pending_removed: Set[Tuple[str, tuple]] = set()
        self._dirty_switches: Set[str] = set()
        self._meters_dirty = False
        self._last_wiring: Optional[Dict[Tuple[str, int], Tuple[str, int]]] = None
        self._last_snapshot_version = -1
        #: per-switch rule hashes, shared with every snapshot we freeze;
        #: invalidated per switch on change so unchanged switches never
        #: rehash (the engine's cache key comes from here)
        self._switch_hash_cache: Dict[str, str] = {}
        #: last default-locations snapshot frozen from a clean mirror;
        #: reused (re-stamped) while nothing changes, so steady-state
        #: consumers like the serving tier pay O(1) per snapshot() call
        self._snapshot_cache: Optional[NetworkSnapshot] = None
        self.last_delta: Optional[SnapshotDelta] = None
        #: (switch, rule identity) pairs the preventive gate quarantined:
        #: tracked by the verifier but never to be trusted if they ever
        #: surface in the mirror (e.g. installed out-of-band).
        self._untrusted: Set[Tuple[str, tuple]] = set()

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Subscribe monitors and/or kick off the random polling loop."""
        assert self.controller.network is not None, "controller must be attached"
        if self.mode in (MonitorMode.PASSIVE, MonitorMode.HYBRID):
            for switch in self.controller.channels:
                self.controller.subscribe_flow_monitor(switch)
        if self.mode in (MonitorMode.ACTIVE, MonitorMode.HYBRID):
            self._poll_generation += 1
            self._polling = True
            self._schedule_next_poll(self._poll_generation)
        # An initial full poll seeds the mirror in every mode.
        self.poll_all()

    def stop_polling(self) -> None:
        # Bumping the generation invalidates any already-scheduled
        # _poll_tick and any in-flight retry burst, so a later start()
        # cannot end up with two concurrent polling loops.
        self._polling = False
        self._poll_generation += 1

    def on_change(self, listener: Callable[[str], None]) -> None:
        """Register a callback invoked with the switch name on any change."""
        self._change_listeners.append(listener)

    def on_poll_complete(self, listener: Callable[[str, float], None]) -> None:
        """Register a callback invoked as (switch, time) after each poll reply."""
        self._poll_listeners.append(listener)

    def on_delta(self, listener: Callable[[SnapshotDelta], None]) -> None:
        """Register a callback invoked with the :class:`SnapshotDelta`
        accompanying every frozen snapshot (the engine's invalidation feed)."""
        self._delta_listeners.append(listener)

    # ------------------------------------------------------------------
    # Passive path
    # ------------------------------------------------------------------

    def handle_monitor_update(self, switch: str, update: FlowMonitorUpdate) -> None:
        """Apply one flow-monitor event to the rule mirror."""
        self.metrics.passive_updates += 1
        # A passive update is positive proof the channel works.
        transition = self.health.record_success(switch, self.controller.now)
        if transition == "reconnected":
            self._resync(switch)
        rule = SnapshotRule(
            table_id=update.table_id,
            priority=update.priority,
            match=update.match,
            actions=tuple(update.actions),
            cookie=update.cookie,
        )
        mirror = self._rules.setdefault(switch, {})
        key = rule.identity()
        if update.event in ("added", "modified"):
            previous = mirror.get(key)
            mirror[key] = rule
            if previous is None:
                self._note_rule_change(switch, added={key})
            elif previous != rule:
                # Same identity, different payload (e.g. cookie).
                self._note_rule_change(switch)
        elif update.event == "removed":
            if mirror.pop(key, None) is not None:
                self._note_rule_change(switch, removed={key})
        self._bump(switch)

    # ------------------------------------------------------------------
    # Active path
    # ------------------------------------------------------------------

    def poll_all(self) -> None:
        """Poll every switch's full state right now."""
        for switch in list(self.controller.channels):
            self.poll_switch(switch)

    def poll_switch(self, switch: str, *, _retry: int = 0) -> None:
        """Request one switch's full state, with a reply timeout.

        At most one poll per switch is in flight: a newer poll cancels a
        still-pending older one (its reply, if it ever arrives, is
        dispatched nowhere).  An unanswered poll times out, is recorded
        against the switch's channel health, and is retried with
        jittered exponential backoff up to ``max_poll_retries``.
        """
        assert self.controller.network is not None
        sim = self.controller.network.sim
        previous = self._pending_polls.pop(switch, None)
        if previous is not None:
            self._cancel_pending(previous)
            self.metrics.polls_superseded += 1
        self.metrics.active_polls += 1
        if _retry:
            self.metrics.poll_retries += 1
        pending = _PendingPoll(
            switch=switch, retry=_retry, generation=self._poll_generation
        )
        pending.flow_xid = self.controller.request_flow_stats(
            switch, lambda reply, _p=pending: self._on_poll_reply(_p, reply)
        )
        pending.meter_xid = self.controller.request_meter_stats(
            switch, lambda reply, _sw=switch: self._apply_meter_stats(_sw, reply)
        )
        pending.timeout_event = sim.schedule(
            self.poll_timeout, lambda _p=pending: self._on_poll_timeout(_p)
        )
        self._pending_polls[switch] = pending

    def _cancel_pending(self, pending: _PendingPoll) -> None:
        """Forget an in-flight poll: no reply may fire, no timeout ticks."""
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()  # type: ignore[attr-defined]
        self.controller.cancel_stats_request(pending.flow_xid)
        self.controller.cancel_stats_request(pending.meter_xid)

    def _on_poll_reply(self, pending: _PendingPoll, reply: FlowStatsReply) -> None:
        if self._pending_polls.get(pending.switch) is pending:
            del self._pending_polls[pending.switch]
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()  # type: ignore[attr-defined]
        self.metrics.poll_replies += 1
        self._apply_stats(pending.switch, reply)
        transition = self.health.record_success(pending.switch, self.controller.now)
        if transition == "reconnected":
            self._resync(pending.switch)

    def _on_poll_timeout(self, pending: _PendingPoll) -> None:
        if self._pending_polls.get(pending.switch) is not pending:
            return  # superseded or answered in the meantime
        del self._pending_polls[pending.switch]
        # The reply may still limp in later; make sure it lands nowhere.
        self.controller.cancel_stats_request(pending.flow_xid)
        self.controller.cancel_stats_request(pending.meter_xid)
        self.metrics.poll_timeouts += 1
        self.health.record_timeout(pending.switch, self.controller.now)
        if pending.generation != self._poll_generation:
            return  # polling was stopped/restarted; drop the burst
        if pending.retry >= self.max_poll_retries:
            # Burst exhausted: the switch is (by now) marked lost; the
            # regular polling loop keeps probing at its normal cadence.
            self.metrics.poll_bursts_abandoned += 1
            return
        assert self.controller.network is not None
        sim = self.controller.network.sim
        # Jittered exponential backoff; jitter is drawn from the sim RNG
        # only on this (fault-triggered) path, so fault-free runs stay
        # byte-identical to the pre-resilience monitor.
        delay = self.retry_backoff * (2.0 ** pending.retry) * (0.5 + sim.rng.random())
        delay = min(delay, self.poll_interval_cap)
        generation = pending.generation
        retry = pending.retry + 1
        sim.schedule(
            delay, lambda: self._retry_poll(pending.switch, retry, generation)
        )

    def _retry_poll(self, switch: str, retry: int, generation: int) -> None:
        if generation != self._poll_generation:
            return
        if switch not in self.controller.channels:
            return
        self.poll_switch(switch, _retry=retry)

    def _resync(self, switch: str) -> None:
        """Full recovery after a reconnect (e.g. a switch restart).

        Flow-monitor subscriptions are per-session switch state and die
        with a restart, so passive updates have silently stopped;
        resubscribe, then pull a complete state dump so the mirror is
        rebuilt from scratch rather than patched.
        """
        self.metrics.resyncs += 1
        if self.mode in (MonitorMode.PASSIVE, MonitorMode.HYBRID):
            self.controller.subscribe_flow_monitor(switch)
        self.poll_switch(switch)

    def _apply_stats(self, switch: str, reply: FlowStatsReply) -> None:
        now = self.controller.now
        self.poll_times.append(now)
        mirror: Dict[tuple, SnapshotRule] = {}
        for entry in reply.entries:
            rule = SnapshotRule(
                table_id=entry.table_id,
                priority=entry.priority,
                match=entry.match,
                actions=tuple(entry.actions),
                cookie=entry.cookie,
            )
            mirror[rule.identity()] = rule
        previous = self._rules.get(switch, {})
        added = mirror.keys() - previous.keys()
        removed = previous.keys() - mirror.keys()
        modified = any(
            previous[key] != mirror[key] for key in mirror.keys() & previous.keys()
        )
        if added or removed or modified:
            self._note_rule_change(switch, added=added, removed=removed)
        self._rules[switch] = mirror
        self._bump(switch)
        for listener in self._poll_listeners:
            listener(switch, now)

    def _apply_meter_stats(self, switch: str, reply: MeterStatsReply) -> None:
        meters = [
            SnapshotMeter(switch=switch, meter_id=entry.meter_id, band=entry.band)
            for entry in reply.entries
        ]
        if meters != self._meters.get(switch, []):
            self._meters_dirty = True
        self._meters[switch] = meters

    def _note_rule_change(
        self,
        switch: str,
        *,
        added: Optional[set] = None,
        removed: Optional[set] = None,
    ) -> None:
        """Fold one observed change into the pending snapshot delta."""
        self._dirty_switches.add(switch)
        self._switch_hash_cache.pop(switch, None)
        for key in added or ():
            self._pending_added.add((switch, key))
            self._pending_removed.discard((switch, key))
        for key in removed or ():
            self._pending_removed.add((switch, key))
            self._pending_added.discard((switch, key))

    def _next_poll_delay(self) -> float:
        """Draw the next inter-poll delay, clamped to sane bounds.

        Exponential inter-poll times are memoryless, so an adversary
        observing past polls learns nothing about the next one — but the
        raw draw can be ~0 (a poll storm) or enormous (an unbounded
        blind window a short-lived reconfiguration can hide in), so it
        is clamped to [min_poll_interval, poll_interval_cap].
        """
        assert self.controller.network is not None
        sim = self.controller.network.sim
        if self.randomize_polls:
            delay = sim.rng.expovariate(1.0 / self.mean_poll_interval)
        else:
            delay = self.mean_poll_interval
        return min(max(delay, self.min_poll_interval), self.poll_interval_cap)

    def _schedule_next_poll(self, generation: Optional[int] = None) -> None:
        assert self.controller.network is not None
        sim = self.controller.network.sim
        if generation is None:
            generation = self._poll_generation
        sim.schedule(
            self._next_poll_delay(), lambda: self._poll_tick(generation)
        )

    def _poll_tick(self, generation: int) -> None:
        if not self._polling or generation != self._poll_generation:
            return
        self.poll_all()
        self._schedule_next_poll(generation)

    # ------------------------------------------------------------------
    # Topology probing (LLDP-like)
    # ------------------------------------------------------------------

    def probe_topology(self) -> None:
        """Inject a probe on every internal port of every switch."""
        probe_mac = MacAddress.from_host_index(0xFFFFFF)
        for (switch, port), _peer in self.topology.wiring().items():
            packet = Packet(
                eth_src=probe_mac,
                eth_dst=probe_mac,
                eth_type=ETH_TYPE_LLDP,
                payload=("rvaas-probe", switch, port),
            )
            self.controller.send_packet(switch, packet, port)
            self.metrics.probes_sent += 1

    def handle_probe(self, switch: str, message: PacketIn) -> None:
        """Record an intercepted probe as an observed adjacency."""
        packet = message.packet
        if packet is None or not isinstance(packet.payload, tuple):
            return
        kind, from_switch, from_port = packet.payload
        if kind != "rvaas-probe":
            return
        self.metrics.probes_received += 1
        self.topology_observations.append(
            TopologyObservation(
                from_switch=from_switch,
                from_port=from_port,
                to_switch=switch,
                to_port=message.in_port,
            )
        )

    def verify_wiring(self) -> Tuple[Set[tuple], Set[tuple]]:
        """(missing, unexpected) adjacencies vs the declared wiring plan."""
        declared = {
            (a, ap, b, bp) for (a, ap), (b, bp) in self.topology.wiring().items()
        }
        observed = {
            (o.from_switch, o.from_port, o.to_switch, o.to_port)
            for o in self.topology_observations
        }
        return declared - observed, observed - declared

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def _bump(self, switch: str) -> None:
        self._version += 1
        for listener in self._change_listeners:
            listener(switch)

    @property
    def version(self) -> int:
        return self._version

    def current_rules(self, switch: str) -> Tuple[SnapshotRule, ...]:
        return tuple(self._rules.get(switch, {}).values())

    def switch_staleness(self) -> Dict[str, float]:
        """Seconds since each monitored switch was last positively
        confirmed (poll reply or passive update), for freshness reports."""
        now = self.controller.now
        return {
            switch: self.health.staleness(switch, now)
            for switch in self.controller.channels
        }

    def mark_untrusted(self, switch: str, identity: tuple) -> None:
        """Record a gate-quarantined rule identity as untrusted."""
        self._untrusted.add((switch, identity))

    def clear_untrusted(self, switch: str, identity: tuple) -> None:
        self._untrusted.discard((switch, identity))

    def untrusted_in_mirror(self) -> Set[Tuple[str, tuple]]:
        """Quarantined identities that nevertheless appear in the mirror.

        Non-empty means a rule the gate refused to install surfaced
        anyway (installed out-of-band or replayed); the verifier treats
        any such switch as tampered.
        """
        return {
            (switch, identity)
            for (switch, identity) in self._untrusted
            if identity in self._rules.get(switch, {})
        }

    def speculative_snapshot(
        self,
        overrides: Dict[str, Tuple[SnapshotRule, ...]],
        *,
        version: int,
    ) -> NetworkSnapshot:
        """Freeze a *hypothetical* snapshot: the mirror with some switches'
        rule tuples replaced.

        Used by the preventive gate to verify a would-be configuration
        before any FlowMod is forwarded.  Unlike :meth:`snapshot` this
        never touches the delta accumulators, the snapshot cache, or any
        listener — it is a pure read.  Unchanged switches keep their
        cached content hashes, so engine artifacts (and the atom-matrix
        repair path) are structurally shared with the live snapshot;
        only overridden switches are rehashed.

        ``version`` must be unique per call and distinct from any real
        mirror version (the verifier's analysis cache is version-keyed);
        the gate passes a monotone negative counter.
        """
        assert self.controller.network is not None
        rules = {
            switch: tuple(mirror.values())
            for switch, mirror in self._rules.items()
        }
        for switch, switch_rules in overrides.items():
            rules[switch] = tuple(switch_rules)
        hashes = {
            switch: digest
            for switch, digest in self._switch_hash_cache.items()
            if switch not in overrides and switch in rules
        }
        switch_ports = {
            name: tuple(sorted(self.controller.network.switches[name].ports))
            for name in self.controller.network.switches
        }
        edge_ports = {
            name: frozenset(host.port for host in self.topology.hosts_on(name))
            for name in self.topology.switches
        }
        locations = {
            name: spec.location
            for name, spec in self.topology.switches.items()
            if spec.location is not None
        }
        link_capacities = {
            frozenset((link.switch_a, link.switch_b)): link.bandwidth_mbps
            for link in self.topology.links
        }
        return NetworkSnapshot(
            version=version,
            taken_at=self.controller.now,
            rules=rules,
            meters=tuple(
                meter for meters in self._meters.values() for meter in meters
            ),
            wiring=self.topology.wiring(),
            edge_ports=edge_ports,
            switch_ports=switch_ports,
            locations=locations,
            link_capacities=link_capacities,
            _switch_hashes=hashes,
        )

    def snapshot(self, locations: Optional[Dict[str, GeoLocation]] = None) -> NetworkSnapshot:
        """Freeze the current mirror into a verifiable snapshot.

        Also emits the accompanying :class:`SnapshotDelta` to every
        ``on_delta`` listener (the engine's invalidation feed).
        """
        snapshot, _delta = self.snapshot_with_delta(locations)
        return snapshot

    def snapshot_with_delta(
        self, locations: Optional[Dict[str, GeoLocation]] = None
    ) -> Tuple[NetworkSnapshot, SnapshotDelta]:
        """Freeze the mirror and return it with its change record."""
        assert self.controller.network is not None
        reusable = (
            locations is None
            and self._snapshot_cache is not None
            and not self._pending_added
            and not self._pending_removed
            and not self._dirty_switches
            and not self._meters_dirty
            and self._last_snapshot_version == self._version
        )
        if reusable and self.topology.wiring() == self._last_wiring:
            # Clean mirror: nothing to rebuild, nothing to invalidate.
            # Re-stamp the freeze time (the mirror is live, so the
            # configuration is current as of now); version, content
            # hash and compiled-TF caches carry over unchanged.
            self.metrics.snapshots_reused += 1
            snapshot = dataclasses.replace(
                self._snapshot_cache, taken_at=self.controller.now
            )
            self._snapshot_cache = snapshot
            delta = SnapshotDelta(
                since_version=self._version,
                version=self._version,
                added_rules=frozenset(),
                removed_rules=frozenset(),
                changed_switches=frozenset(),
                meters_changed=False,
                wiring_changed=False,
            )
            return snapshot, delta
        self.metrics.snapshots_built += 1
        default_locations = locations is None
        if locations is None:
            locations = {
                name: spec.location
                for name, spec in self.topology.switches.items()
                if spec.location is not None
            }
        switch_ports = {
            name: tuple(sorted(self.controller.network.switches[name].ports))
            for name in self.controller.network.switches
        }
        edge_ports = {
            name: frozenset(
                host.port for host in self.topology.hosts_on(name)
            )
            for name in self.topology.switches
        }
        meters = tuple(
            meter for meters in self._meters.values() for meter in meters
        )
        link_capacities = {
            frozenset((link.switch_a, link.switch_b)): link.bandwidth_mbps
            for link in self.topology.links
        }
        rules = {
            switch: tuple(mirror.values())
            for switch, mirror in self._rules.items()
        }
        # Refresh per-switch hashes only where the mirror changed, then
        # seed the snapshot with a complete copy: unchanged switches are
        # never rehashed, and the engine's cache keys stay O(1) to read.
        for switch, switch_rules in rules.items():
            if switch not in self._switch_hash_cache:
                self._switch_hash_cache[switch] = switch_rules_hash(
                    switch, switch_rules
                )
        for switch in set(self._switch_hash_cache) - set(rules):
            del self._switch_hash_cache[switch]
        wiring = self.topology.wiring()
        wiring_changed = (
            self._last_wiring is not None and wiring != self._last_wiring
        )
        self._last_wiring = wiring
        snapshot = NetworkSnapshot(
            version=self._version,
            taken_at=self.controller.now,
            rules=rules,
            meters=meters,
            wiring=wiring,
            edge_ports=edge_ports,
            switch_ports=switch_ports,
            locations=locations,
            link_capacities=link_capacities,
            _switch_hashes=dict(self._switch_hash_cache),
        )
        delta = SnapshotDelta(
            since_version=self._last_snapshot_version,
            version=self._version,
            added_rules=frozenset(self._pending_added),
            removed_rules=frozenset(self._pending_removed),
            changed_switches=frozenset(self._dirty_switches),
            meters_changed=self._meters_dirty,
            wiring_changed=wiring_changed,
        )
        self._pending_added.clear()
        self._pending_removed.clear()
        self._dirty_switches.clear()
        self._meters_dirty = False
        self._last_snapshot_version = self._version
        self._snapshot_cache = snapshot if default_locations else None
        self.last_delta = delta
        for listener in self._delta_listeners:
            listener(delta)
        return snapshot, delta
