"""Configuration monitoring: the RVaaS controller's view of the network.

Implements §IV-A1: "the controller maintains an up-to-date snapshot of
the network configuration, either passively (monitoring events) or
actively (query the switch state or issue and later intercept LLDP-like
packets through all internal ports)."

Three mechanisms, individually switchable:

* **Passive**: subscribe to every switch's flow monitor; apply add /
  remove / modify events to the in-memory rule mirror as they arrive.
* **Active**: poll full flow-stats dumps.  Poll times are drawn from an
  exponential distribution — "at random times, which are hard to guess
  for the adversary" — because a periodic schedule can be evaded by a
  synchronized short-lived reconfiguration attack (experiment E6).
* **Topology probing**: LLDP-style probe packets injected via Packet-Out
  on every internal port and intercepted at the neighbour, verifying the
  physical wiring against the declared plan.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.engine import SnapshotDelta
from repro.core.snapshot import NetworkSnapshot, SnapshotMeter, switch_rules_hash
from repro.dataplane.topology import GeoLocation, Topology
from repro.hsa.transfer import SnapshotRule
from repro.netlib.addresses import MacAddress
from repro.netlib.constants import ETH_TYPE_LLDP
from repro.netlib.packet import Packet
from repro.openflow.messages import (
    FlowMonitorUpdate,
    FlowStatsReply,
    MeterStatsReply,
    PacketIn,
)

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoids a runtime import cycle with service.py
    from repro.controlplane.controller import ControllerApp


class MonitorMode(enum.Enum):
    """Which §IV-A1 monitoring mechanisms the service runs."""

    PASSIVE = "passive"
    ACTIVE = "active"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class TopologyObservation:
    """One LLDP-style probe interception: an observed physical adjacency."""

    from_switch: str
    from_port: int
    to_switch: str
    to_port: int


@dataclass
class MonitorMetrics:
    """Accounting read by the monitoring-overhead experiment (E11)."""

    passive_updates: int = 0
    active_polls: int = 0
    poll_replies: int = 0
    probes_sent: int = 0
    probes_received: int = 0
    snapshots_built: int = 0


class ConfigurationMonitor:
    """Maintains the rule/meter mirror and builds snapshots on demand."""

    def __init__(
        self,
        controller: "ControllerApp",
        topology: Topology,
        *,
        mode: MonitorMode = MonitorMode.HYBRID,
        mean_poll_interval: float = 5.0,
        randomize_polls: bool = True,
    ) -> None:
        self.controller = controller
        self.topology = topology
        self.mode = mode
        self.mean_poll_interval = mean_poll_interval
        self.randomize_polls = randomize_polls
        self.metrics = MonitorMetrics()
        self._rules: Dict[str, Dict[tuple, SnapshotRule]] = {}
        self._meters: Dict[str, List[SnapshotMeter]] = {}
        self._version = 0
        self._change_listeners: List[Callable[[str], None]] = []
        self._poll_listeners: List[Callable[[str, float], None]] = []
        self._delta_listeners: List[Callable[[SnapshotDelta], None]] = []
        self._polling = False
        self.poll_times: List[float] = []
        self.topology_observations: List[TopologyObservation] = []
        # Delta accumulators: everything that changed since the last
        # snapshot was frozen, in rule-signature currency.
        self._pending_added: Set[Tuple[str, tuple]] = set()
        self._pending_removed: Set[Tuple[str, tuple]] = set()
        self._dirty_switches: Set[str] = set()
        self._meters_dirty = False
        self._last_wiring: Optional[Dict[Tuple[str, int], Tuple[str, int]]] = None
        self._last_snapshot_version = -1
        #: per-switch rule hashes, shared with every snapshot we freeze;
        #: invalidated per switch on change so unchanged switches never
        #: rehash (the engine's cache key comes from here)
        self._switch_hash_cache: Dict[str, str] = {}
        self.last_delta: Optional[SnapshotDelta] = None

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Subscribe monitors and/or kick off the random polling loop."""
        assert self.controller.network is not None, "controller must be attached"
        if self.mode in (MonitorMode.PASSIVE, MonitorMode.HYBRID):
            for switch in self.controller.channels:
                self.controller.subscribe_flow_monitor(switch)
        if self.mode in (MonitorMode.ACTIVE, MonitorMode.HYBRID):
            self._polling = True
            self._schedule_next_poll()
        # An initial full poll seeds the mirror in every mode.
        self.poll_all()

    def stop_polling(self) -> None:
        self._polling = False

    def on_change(self, listener: Callable[[str], None]) -> None:
        """Register a callback invoked with the switch name on any change."""
        self._change_listeners.append(listener)

    def on_poll_complete(self, listener: Callable[[str, float], None]) -> None:
        """Register a callback invoked as (switch, time) after each poll reply."""
        self._poll_listeners.append(listener)

    def on_delta(self, listener: Callable[[SnapshotDelta], None]) -> None:
        """Register a callback invoked with the :class:`SnapshotDelta`
        accompanying every frozen snapshot (the engine's invalidation feed)."""
        self._delta_listeners.append(listener)

    # ------------------------------------------------------------------
    # Passive path
    # ------------------------------------------------------------------

    def handle_monitor_update(self, switch: str, update: FlowMonitorUpdate) -> None:
        """Apply one flow-monitor event to the rule mirror."""
        self.metrics.passive_updates += 1
        rule = SnapshotRule(
            table_id=update.table_id,
            priority=update.priority,
            match=update.match,
            actions=tuple(update.actions),
            cookie=update.cookie,
        )
        mirror = self._rules.setdefault(switch, {})
        key = rule.identity()
        if update.event in ("added", "modified"):
            previous = mirror.get(key)
            mirror[key] = rule
            if previous is None:
                self._note_rule_change(switch, added={key})
            elif previous != rule:
                # Same identity, different payload (e.g. cookie).
                self._note_rule_change(switch)
        elif update.event == "removed":
            if mirror.pop(key, None) is not None:
                self._note_rule_change(switch, removed={key})
        self._bump(switch)

    # ------------------------------------------------------------------
    # Active path
    # ------------------------------------------------------------------

    def poll_all(self) -> None:
        """Poll every switch's full state right now."""
        for switch in list(self.controller.channels):
            self.poll_switch(switch)

    def poll_switch(self, switch: str) -> None:
        self.metrics.active_polls += 1
        self.controller.request_flow_stats(
            switch, lambda reply, _sw=switch: self._apply_stats(_sw, reply)
        )
        self.controller.request_meter_stats(
            switch, lambda reply, _sw=switch: self._apply_meter_stats(_sw, reply)
        )

    def _apply_stats(self, switch: str, reply: FlowStatsReply) -> None:
        self.metrics.poll_replies += 1
        now = self.controller.now
        self.poll_times.append(now)
        mirror: Dict[tuple, SnapshotRule] = {}
        for entry in reply.entries:
            rule = SnapshotRule(
                table_id=entry.table_id,
                priority=entry.priority,
                match=entry.match,
                actions=tuple(entry.actions),
                cookie=entry.cookie,
            )
            mirror[rule.identity()] = rule
        previous = self._rules.get(switch, {})
        added = mirror.keys() - previous.keys()
        removed = previous.keys() - mirror.keys()
        modified = any(
            previous[key] != mirror[key] for key in mirror.keys() & previous.keys()
        )
        if added or removed or modified:
            self._note_rule_change(switch, added=added, removed=removed)
        self._rules[switch] = mirror
        self._bump(switch)
        for listener in self._poll_listeners:
            listener(switch, now)

    def _apply_meter_stats(self, switch: str, reply: MeterStatsReply) -> None:
        meters = [
            SnapshotMeter(switch=switch, meter_id=entry.meter_id, band=entry.band)
            for entry in reply.entries
        ]
        if meters != self._meters.get(switch, []):
            self._meters_dirty = True
        self._meters[switch] = meters

    def _note_rule_change(
        self,
        switch: str,
        *,
        added: Optional[set] = None,
        removed: Optional[set] = None,
    ) -> None:
        """Fold one observed change into the pending snapshot delta."""
        self._dirty_switches.add(switch)
        self._switch_hash_cache.pop(switch, None)
        for key in added or ():
            self._pending_added.add((switch, key))
            self._pending_removed.discard((switch, key))
        for key in removed or ():
            self._pending_removed.add((switch, key))
            self._pending_added.discard((switch, key))

    def _schedule_next_poll(self) -> None:
        assert self.controller.network is not None
        sim = self.controller.network.sim
        if self.randomize_polls:
            # Exponential inter-poll times: memoryless, so an adversary
            # observing past polls learns nothing about the next one.
            delay = sim.rng.expovariate(1.0 / self.mean_poll_interval)
        else:
            delay = self.mean_poll_interval
        sim.schedule(delay, self._poll_tick)

    def _poll_tick(self) -> None:
        if not self._polling:
            return
        self.poll_all()
        self._schedule_next_poll()

    # ------------------------------------------------------------------
    # Topology probing (LLDP-like)
    # ------------------------------------------------------------------

    def probe_topology(self) -> None:
        """Inject a probe on every internal port of every switch."""
        probe_mac = MacAddress.from_host_index(0xFFFFFF)
        for (switch, port), _peer in self.topology.wiring().items():
            packet = Packet(
                eth_src=probe_mac,
                eth_dst=probe_mac,
                eth_type=ETH_TYPE_LLDP,
                payload=("rvaas-probe", switch, port),
            )
            self.controller.send_packet(switch, packet, port)
            self.metrics.probes_sent += 1

    def handle_probe(self, switch: str, message: PacketIn) -> None:
        """Record an intercepted probe as an observed adjacency."""
        packet = message.packet
        if packet is None or not isinstance(packet.payload, tuple):
            return
        kind, from_switch, from_port = packet.payload
        if kind != "rvaas-probe":
            return
        self.metrics.probes_received += 1
        self.topology_observations.append(
            TopologyObservation(
                from_switch=from_switch,
                from_port=from_port,
                to_switch=switch,
                to_port=message.in_port,
            )
        )

    def verify_wiring(self) -> Tuple[Set[tuple], Set[tuple]]:
        """(missing, unexpected) adjacencies vs the declared wiring plan."""
        declared = {
            (a, ap, b, bp) for (a, ap), (b, bp) in self.topology.wiring().items()
        }
        observed = {
            (o.from_switch, o.from_port, o.to_switch, o.to_port)
            for o in self.topology_observations
        }
        return declared - observed, observed - declared

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def _bump(self, switch: str) -> None:
        self._version += 1
        for listener in self._change_listeners:
            listener(switch)

    @property
    def version(self) -> int:
        return self._version

    def current_rules(self, switch: str) -> Tuple[SnapshotRule, ...]:
        return tuple(self._rules.get(switch, {}).values())

    def snapshot(self, locations: Optional[Dict[str, GeoLocation]] = None) -> NetworkSnapshot:
        """Freeze the current mirror into a verifiable snapshot.

        Also emits the accompanying :class:`SnapshotDelta` to every
        ``on_delta`` listener (the engine's invalidation feed).
        """
        snapshot, _delta = self.snapshot_with_delta(locations)
        return snapshot

    def snapshot_with_delta(
        self, locations: Optional[Dict[str, GeoLocation]] = None
    ) -> Tuple[NetworkSnapshot, SnapshotDelta]:
        """Freeze the mirror and return it with its change record."""
        assert self.controller.network is not None
        self.metrics.snapshots_built += 1
        if locations is None:
            locations = {
                name: spec.location
                for name, spec in self.topology.switches.items()
                if spec.location is not None
            }
        switch_ports = {
            name: tuple(sorted(self.controller.network.switches[name].ports))
            for name in self.controller.network.switches
        }
        edge_ports = {
            name: frozenset(
                host.port for host in self.topology.hosts_on(name)
            )
            for name in self.topology.switches
        }
        meters = tuple(
            meter for meters in self._meters.values() for meter in meters
        )
        link_capacities = {
            frozenset((link.switch_a, link.switch_b)): link.bandwidth_mbps
            for link in self.topology.links
        }
        rules = {
            switch: tuple(mirror.values())
            for switch, mirror in self._rules.items()
        }
        # Refresh per-switch hashes only where the mirror changed, then
        # seed the snapshot with a complete copy: unchanged switches are
        # never rehashed, and the engine's cache keys stay O(1) to read.
        for switch, switch_rules in rules.items():
            if switch not in self._switch_hash_cache:
                self._switch_hash_cache[switch] = switch_rules_hash(
                    switch, switch_rules
                )
        for switch in set(self._switch_hash_cache) - set(rules):
            del self._switch_hash_cache[switch]
        wiring = self.topology.wiring()
        wiring_changed = (
            self._last_wiring is not None and wiring != self._last_wiring
        )
        self._last_wiring = wiring
        snapshot = NetworkSnapshot(
            version=self._version,
            taken_at=self.controller.now,
            rules=rules,
            meters=meters,
            wiring=wiring,
            edge_ports=edge_ports,
            switch_ports=switch_ports,
            locations=locations,
            link_capacities=link_capacities,
            _switch_hashes=dict(self._switch_hash_cache),
        )
        delta = SnapshotDelta(
            since_version=self._last_snapshot_version,
            version=self._version,
            added_rules=frozenset(self._pending_added),
            removed_rules=frozenset(self._pending_removed),
            changed_switches=frozenset(self._dirty_switches),
            meters_changed=self._meters_dirty,
            wiring_changed=wiring_changed,
        )
        self._pending_added.clear()
        self._pending_removed.clear()
        self._dirty_switches.clear()
        self._meters_dirty = False
        self._last_snapshot_version = self._version
        self.last_delta = delta
        for listener in self._delta_listeners:
            listener(delta)
        return snapshot, delta
