"""Snapshot history and short-term reconfiguration detection.

Paper §IV-A: "Short term reconfiguration attacks can also be prevented
by maintaining some history."  The history keeps a bounded ring of
snapshot fingerprints plus the cumulative set of *every* rule signature
ever observed, so a rule that exists only between two polls still leaves
a trace the moment any poll or passive event catches it — and flapping
(repeated appear/disappear of the same rule) is flagged explicitly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.core.snapshot import NetworkSnapshot

if TYPE_CHECKING:  # history is imported by service before the engine
    from repro.core.engine import VerificationEngine


def entries_with_snapshots(history: "SnapshotHistory"):
    """Iterate the history entries that retained their full snapshot."""
    return [entry for entry in history.entries() if entry.snapshot is not None]


@dataclass(frozen=True)
class HistoryEntry:
    version: int
    taken_at: float
    content_hash: str
    rule_signatures: FrozenSet[tuple]
    #: Full snapshot, retained only when the history was created with
    #: ``retain_snapshots=True`` (needed for traceback analysis).
    snapshot: Optional[NetworkSnapshot] = None


@dataclass(frozen=True)
class FlappingReport:
    """A rule signature that appeared and disappeared repeatedly."""

    switch: str
    rule_identity: tuple
    transitions: int
    first_seen: float
    last_seen: float


class SnapshotHistory:
    """Bounded history of configuration states with flapping analysis."""

    def __init__(
        self,
        max_entries: int = 256,
        *,
        retain_snapshots: bool = False,
        engine: Optional["VerificationEngine"] = None,
    ) -> None:
        self.retain_snapshots = retain_snapshots
        #: shared verification engine; when present, content hashes go
        #: through it so the flapping detector reuses the per-switch
        #: digests the compilation cache already paid for
        self.engine = engine
        self._entries: Deque[HistoryEntry] = deque(maxlen=max_entries)
        #: every rule signature ever observed, with observation times
        self._ever_seen: Dict[tuple, List[float]] = {}
        #: per-signature count of absent->present transitions
        self._appearances: Dict[tuple, int] = {}
        self._present: FrozenSet[tuple] = frozenset()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, snapshot: NetworkSnapshot) -> None:
        signatures = snapshot.rule_signatures()
        content_hash = (
            self.engine.content_hash(snapshot)
            if self.engine is not None
            else snapshot.content_hash()
        )
        entry = HistoryEntry(
            version=snapshot.version,
            taken_at=snapshot.taken_at,
            content_hash=content_hash,
            rule_signatures=signatures,
            snapshot=snapshot if self.retain_snapshots else None,
        )
        appeared = signatures - self._present
        for signature in appeared:
            self._appearances[signature] = self._appearances.get(signature, 0) + 1
            self._ever_seen.setdefault(signature, []).append(snapshot.taken_at)
        self._present = signatures
        self._entries.append(entry)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Tuple[HistoryEntry, ...]:
        """All retained entries, oldest first."""
        return tuple(self._entries)

    def latest(self) -> Optional[HistoryEntry]:
        return self._entries[-1] if self._entries else None

    def entry_at(self, time: float) -> Optional[HistoryEntry]:
        """The entry in force at virtual time ``time``."""
        best: Optional[HistoryEntry] = None
        for entry in self._entries:
            if entry.taken_at <= time:
                best = entry
            else:
                break
        return best

    def distinct_configurations(self) -> int:
        return len({entry.content_hash for entry in self._entries})

    def ever_seen(self, signature: tuple) -> bool:
        """Did any snapshot ever contain this rule signature?

        This is the short-term-attack witness: even if the rule is gone
        *now*, its past presence is on record.
        """
        return signature in self._ever_seen

    def signatures_ever_seen(self) -> FrozenSet[tuple]:
        return frozenset(self._ever_seen)

    def transient_signatures(self) -> FrozenSet[tuple]:
        """Rules that were observed at some point but are gone now."""
        return frozenset(self._ever_seen) - self._present

    def flapping(self, min_transitions: int = 2) -> List[FlappingReport]:
        """Rules with at least ``min_transitions`` absent->present events."""
        reports: List[FlappingReport] = []
        for signature, count in self._appearances.items():
            if count < min_transitions:
                continue
            times = self._ever_seen[signature]
            switch, identity = signature
            reports.append(
                FlappingReport(
                    switch=switch,
                    rule_identity=identity,
                    transitions=count,
                    first_seen=times[0],
                    last_seen=times[-1],
                )
            )
        reports.sort(key=lambda r: (-r.transitions, r.switch))
        return reports

    def unexpected_signatures(
        self, expected: FrozenSet[tuple]
    ) -> FrozenSet[tuple]:
        """Every signature ever observed that is outside ``expected``."""
        return frozenset(self._ever_seen) - expected
