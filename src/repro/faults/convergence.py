"""Ground-truth comparison: has the monitor mirror reconverged?

After a chaos run the acceptance bar is that the verifier's mirror is
*byte-identical* to the actual switch configuration — lost poll replies
and dropped monitor updates must heal, not linger.  These helpers read
the data plane directly (the simulation's omniscient view, unavailable
to a real RVaaS box) and compare it against a
:class:`~repro.core.monitor.ConfigurationMonitor`'s mirror, and can
freeze the actual state into a :class:`NetworkSnapshot` so verdicts can
be checked against ground truth.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.core.monitor import ConfigurationMonitor
from repro.core.snapshot import NetworkSnapshot, SnapshotMeter, switch_rules_hash
from repro.dataplane.network import Network
from repro.hsa.transfer import SnapshotRule


def actual_switch_rules(network: Network) -> Dict[str, Dict[tuple, SnapshotRule]]:
    """The live flow tables, in the monitor's rule-identity currency."""
    actual: Dict[str, Dict[tuple, SnapshotRule]] = {}
    for name, switch in network.switches.items():
        mirror: Dict[tuple, SnapshotRule] = {}
        for table in switch.tables:
            for entry in table.entries():
                rule = SnapshotRule(
                    table_id=table.table_id,
                    priority=entry.priority,
                    match=entry.match,
                    actions=tuple(entry.actions),
                    cookie=entry.cookie,
                )
                mirror[rule.identity()] = rule
        actual[name] = mirror
    return actual


def mirror_divergence(
    monitor: ConfigurationMonitor, network: Network
) -> Dict[str, Tuple[int, int]]:
    """Per-switch (missing, extra) rule counts of the mirror vs reality.

    ``missing``: rules installed on the switch the mirror doesn't know;
    ``extra``: rules the mirror believes exist but the switch dropped.
    An empty dict means the mirror is exactly in sync.
    """
    divergence: Dict[str, Tuple[int, int]] = {}
    actual = actual_switch_rules(network)
    for switch, truth in actual.items():
        mirrored = {r.identity() for r in monitor.current_rules(switch)}
        missing = len(truth.keys() - mirrored)
        extra = len(mirrored - truth.keys())
        if missing or extra:
            divergence[switch] = (missing, extra)
    return divergence


def mirror_synced(monitor: ConfigurationMonitor, network: Network) -> bool:
    """True when the mirror matches every switch's live configuration."""
    return not mirror_divergence(monitor, network)


def ground_truth_snapshot(
    monitor: ConfigurationMonitor, network: Network
) -> NetworkSnapshot:
    """Freeze the *actual* data-plane state into a verifiable snapshot.

    Shares the monitor's static topology view (wiring, ports, locations,
    capacities) but takes rules and meters straight from the switches —
    the oracle a converged mirror must agree with.
    """
    actual = actual_switch_rules(network)
    rules: Mapping[str, Tuple[SnapshotRule, ...]] = {
        switch: tuple(mirror.values()) for switch, mirror in actual.items()
    }
    meters = tuple(
        SnapshotMeter(switch=name, meter_id=meter.meter_id, band=meter.band)
        for name, switch in sorted(network.switches.items())
        for meter in switch.meters.entries()
    )
    topology = monitor.topology
    switch_ports = {
        name: tuple(sorted(network.switches[name].ports))
        for name in network.switches
    }
    edge_ports = {
        name: frozenset(host.port for host in topology.hosts_on(name))
        for name in topology.switches
    }
    locations = {
        name: spec.location
        for name, spec in topology.switches.items()
        if spec.location is not None
    }
    link_capacities = {
        frozenset((link.switch_a, link.switch_b)): link.bandwidth_mbps
        for link in topology.links
    }
    return NetworkSnapshot(
        version=-1,
        taken_at=network.sim.now,
        rules=rules,
        meters=meters,
        wiring=topology.wiring(),
        edge_ports=edge_ports,
        switch_ports=switch_ports,
        locations=locations,
        link_capacities=link_capacities,
        _switch_hashes={
            switch: switch_rules_hash(switch, switch_rules)
            for switch, switch_rules in rules.items()
        },
    )
