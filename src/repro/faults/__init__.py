"""Deterministic fault injection and chaos tooling (see ISSUE 3 / E18).

``repro.faults`` models the failure modes the paper assumes away: lossy
control channels, delayed and duplicated records, switch restarts, and
port flaps — all driven by seeded per-channel RNGs so every chaos run is
reproducible.  The resilience counterparts (poll retries with jittered
backoff, the channel-health state machine, staleness-aware answers) live
with the components they protect in :mod:`repro.core`.
"""

from repro.faults.convergence import (
    actual_switch_rules,
    ground_truth_snapshot,
    mirror_divergence,
    mirror_synced,
)
from repro.faults.injector import ChannelFaultState, FaultInjector, FaultMetrics
from repro.faults.plan import ChannelFaultSpec, FaultPlan, PortFlap, SwitchRestart

__all__ = [
    "ChannelFaultSpec",
    "ChannelFaultState",
    "FaultInjector",
    "FaultMetrics",
    "FaultPlan",
    "PortFlap",
    "SwitchRestart",
    "actual_switch_rules",
    "ground_truth_snapshot",
    "mirror_divergence",
    "mirror_synced",
]
