"""Realises a :class:`~repro.faults.plan.FaultPlan` against a network.

The injector wraps every control channel with a per-channel
:class:`ChannelFaultState` (its own RNG, derived from the simulator seed
plus the plan seed, so chaos runs are reproducible and never perturb the
main simulation RNG) and schedules the plan's switch restarts and port
flaps on the simulator.

Channels whose spec is null are left completely untouched — a null plan
is byte-identical to no plan at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.dataplane.network import Network
from repro.faults.plan import ChannelFaultSpec, FaultPlan, PortFlap, SwitchRestart
from repro.openflow.channel import ControlChannel


@dataclass
class FaultMetrics:
    """What the injector actually did (sender-side accounting)."""

    records_dropped: int = 0
    records_delayed: int = 0
    records_duplicated: int = 0
    records_reordered: int = 0
    records_passed: int = 0
    restarts_fired: int = 0
    flaps_fired: int = 0
    #: transient gate-verification failures injected (gate path chaos)
    gate_verify_failures: int = 0


class ChannelFaultState:
    """Per-channel fault decisions; plugged in as the channel's filter."""

    def __init__(
        self,
        spec: ChannelFaultSpec,
        rng: random.Random,
        metrics: FaultMetrics,
        clock: Callable[[], float],
        *,
        active_from: float = 0.0,
        active_until: Optional[float] = None,
    ) -> None:
        self.spec = spec
        self.rng = rng
        self.metrics = metrics
        self.clock = clock
        self.active_from = active_from
        self.active_until = active_until
        self.enabled = True

    def active(self) -> bool:
        if not self.enabled:
            return False
        now = self.clock()
        if now < self.active_from:
            return False
        return self.active_until is None or now < self.active_until

    def __call__(self, direction: str, base_latency: float) -> Tuple[float, ...]:
        """Delivery delays for one record; ``()`` means dropped."""
        if not self.active():
            return (base_latency,)
        spec = self.spec
        if spec.drop and self.rng.random() < spec.drop:
            self.metrics.records_dropped += 1
            return ()
        delay = base_latency
        if spec.delay and self.rng.random() < spec.delay:
            delay += self.rng.random() * spec.max_extra_delay
            self.metrics.records_delayed += 1
        if spec.reorder and self.rng.random() < spec.reorder:
            # Held long enough to land behind records sent just after it.
            delay += 2.0 * base_latency
            self.metrics.records_reordered += 1
        deliveries = [delay]
        if spec.duplicate and self.rng.random() < spec.duplicate:
            deliveries.append(delay + base_latency)
            self.metrics.records_duplicated += 1
        self.metrics.records_passed += 1
        return tuple(deliveries)


class FaultInjector:
    """Installs a fault plan on a live network."""

    def __init__(self, network: Network, plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self.metrics = FaultMetrics()
        self._states: List[Tuple[ControlChannel, ChannelFaultState]] = []
        self._installed = False
        #: per-switch RNG streams for gate-verification faults, derived
        #: lazily (same discipline as channel streams: deterministic,
        #: never touching the main simulation RNG)
        self._gate_rngs: dict = {}

    def install(self) -> "FaultInjector":
        """Wrap existing channels, hook future ones, schedule events."""
        if self._installed:
            return self
        self._installed = True
        self.network.fault_injector = self
        for channel in self.network.channels:
            self.attach(channel)
        sim = self.network.sim
        for restart in self.plan.restarts:
            sim.schedule_at(restart.at, lambda r=restart: self._begin_restart(r))
        for flap in self.plan.flaps:
            sim.schedule_at(flap.at, lambda f=flap: self._begin_flap(f))
        return self

    def attach(self, channel: ControlChannel) -> None:
        """Impair one channel per the plan (no-op for null specs)."""
        spec = self.plan.spec_for(channel.switch_end.name)
        if spec.is_null():
            return
        state = ChannelFaultState(
            spec,
            self.network.sim.derive_rng(
                f"faults:{self.plan.seed}:{channel.keys.channel_id}"
            ),
            self.metrics,
            clock=lambda: self.network.sim.now,
            active_from=self.plan.active_from,
            active_until=self.plan.active_until,
        )
        channel.fault_filter = state
        self._states.append((channel, state))

    def deactivate(self) -> None:
        """Stop injecting channel faults (scheduled events still fire)."""
        for _channel, state in self._states:
            state.enabled = False

    def gate_verify_fails(self, switch: str) -> bool:
        """Should this gate verification fail transiently? (chaos hook)

        Called by :class:`~repro.core.gate.PreventiveGate` once per
        verification attempt; a True return makes the gate raise a
        transient error and take its jittered-retry path.  Draws from a
        dedicated per-switch RNG stream so a plan with
        ``gate_verify_failure=0`` is byte-identical to no hook at all.
        """
        spec = self.plan.spec_for(switch)
        if not spec.gate_verify_failure:
            return False
        now = self.network.sim.now
        if now < self.plan.active_from:
            return False
        if self.plan.active_until is not None and now >= self.plan.active_until:
            return False
        rng = self._gate_rngs.get(switch)
        if rng is None:
            rng = self.network.sim.derive_rng(
                f"faults:{self.plan.seed}:gate:{switch}"
            )
            self._gate_rngs[switch] = rng
        if rng.random() < spec.gate_verify_failure:
            self.metrics.gate_verify_failures += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Scheduled events
    # ------------------------------------------------------------------

    def _begin_restart(self, restart: SwitchRestart) -> None:
        self.metrics.restarts_fired += 1
        self.network.switches[restart.switch].restart()
        for channel in self.network.channels_for_switch(restart.switch):
            channel.online = False
        self.network.sim.schedule(
            restart.outage, lambda: self._end_restart(restart)
        )

    def _end_restart(self, restart: SwitchRestart) -> None:
        for channel in self.network.channels_for_switch(restart.switch):
            channel.online = True

    def _begin_flap(self, flap: PortFlap) -> None:
        self.metrics.flaps_fired += 1
        self.network.set_link_state(flap.switch_a, flap.switch_b, False)
        self.network.sim.schedule(
            flap.down_for,
            lambda: self.network.set_link_state(flap.switch_a, flap.switch_b, True),
        )
