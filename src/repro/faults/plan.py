"""Deterministic fault plans for the control plane.

The paper assumes lossless OpenFlow sessions ("OpenFlow switches are
reliable"), but a production deployment has to survive flaky channels,
lost poll replies, and switch restarts.  A :class:`FaultPlan` describes
*what can go wrong* in one chaos run: per-channel record drop / delay /
duplicate / reorder probabilities, plus scheduled switch restarts and
port flaps.

Plans are pure data.  All randomness used to realise a plan is drawn
from per-channel RNGs derived deterministically from the simulator seed
and the plan's own ``seed`` (see
:meth:`repro.dataplane.simulator.Simulator.derive_rng`), so a chaos run
is exactly reproducible and independent fault streams never perturb the
simulation's main RNG — a plan with all probabilities at zero yields a
byte-identical run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple


@dataclass(frozen=True)
class ChannelFaultSpec:
    """Per-record impairment probabilities for one control channel.

    Each probability is evaluated independently per record (the unit the
    secure channel encrypts and MACs — one OpenFlow message).
    """

    #: P(record is silently dropped in flight).
    drop: float = 0.0
    #: P(record is delayed by an extra uniform(0, max_extra_delay)).
    delay: float = 0.0
    #: Upper bound of the extra delay, seconds.
    max_extra_delay: float = 0.05
    #: P(record is delivered twice).
    duplicate: float = 0.0
    #: P(record is held back long enough to land behind later records).
    reorder: float = 0.0
    #: P(one preventive-gate verification of a FlowMod for this switch
    #: fails transiently — a stand-in for verifier brownouts: an engine
    #: worker stall, an OOM-killed compile, a timed-out helper).  Drives
    #: the gate's jittered-retry path; ignored when no gate is installed.
    gate_verify_failure: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "duplicate", "reorder", "gate_verify_failure"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.max_extra_delay < 0:
            raise ValueError("max_extra_delay must be >= 0")

    def is_null(self) -> bool:
        """True when this spec cannot impair any record."""
        return not (
            self.drop
            or self.delay
            or self.duplicate
            or self.reorder
            or self.gate_verify_failure
        )


@dataclass(frozen=True)
class SwitchRestart:
    """One scheduled switch reboot.

    During the outage every control record to or from the switch is
    discarded (the session is black-holed, both directions).  The reboot
    wipes session state — flow-monitor subscriptions are lost, so
    passive monitoring silently stops until the controller resubscribes.
    Flow tables survive (warm restart); recovering from a cold restart
    is the provider controller's job, not the verifier's.
    """

    at: float
    switch: str
    outage: float = 0.05


@dataclass(frozen=True)
class PortFlap:
    """One scheduled link down/up cycle between two switches."""

    at: float
    switch_a: str
    switch_b: str
    down_for: float = 0.05


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one chaos run.

    ``default`` applies to every control channel; ``overrides`` replaces
    it per switch name.  ``active_from`` / ``active_until`` bound the
    window (virtual time) in which channel impairments fire, so a run
    can end with a clean convergence phase.
    """

    default: ChannelFaultSpec = field(default_factory=ChannelFaultSpec)
    overrides: Mapping[str, ChannelFaultSpec] = field(default_factory=dict)
    restarts: Tuple[SwitchRestart, ...] = ()
    flaps: Tuple[PortFlap, ...] = ()
    #: Extra entropy folded into every per-channel RNG derivation.
    seed: int = 0
    active_from: float = 0.0
    active_until: Optional[float] = None

    @classmethod
    def uniform(
        cls,
        *,
        drop: float = 0.0,
        delay: float = 0.0,
        max_extra_delay: float = 0.05,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        gate_verify_failure: float = 0.0,
        seed: int = 0,
        active_from: float = 0.0,
        active_until: Optional[float] = None,
        restarts: Tuple[SwitchRestart, ...] = (),
        flaps: Tuple[PortFlap, ...] = (),
    ) -> "FaultPlan":
        """The common case: the same impairments on every channel."""
        return cls(
            default=ChannelFaultSpec(
                drop=drop,
                delay=delay,
                max_extra_delay=max_extra_delay,
                duplicate=duplicate,
                reorder=reorder,
                gate_verify_failure=gate_verify_failure,
            ),
            seed=seed,
            active_from=active_from,
            active_until=active_until,
            restarts=restarts,
            flaps=flaps,
        )

    def spec_for(self, switch: str) -> ChannelFaultSpec:
        return self.overrides.get(switch, self.default)

    def is_null(self) -> bool:
        """True when the plan can have no effect at all."""
        return (
            self.default.is_null()
            and all(spec.is_null() for spec in self.overrides.values())
            and not self.restarts
            and not self.flaps
        )
