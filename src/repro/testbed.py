"""One-call construction of a complete RVaaS deployment.

The testbed assembles everything a scenario needs: the emulated network,
a (compromisable) provider controller with the agreed routing policy, an
attested RVaaS service with client registrations derived from the
topology's tenant assignment, client libraries, and per-host auth
responders.  Examples, tests and benchmarks all build on it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.controlplane.malicious import CompromisedController
from repro.core.attestation import (
    AttestedService,
    expected_measurement,
    setup_attested_service,
)
from repro.core.client import AuthResponder, RVaaSClient, SilentResponder
from repro.core.monitor import MonitorMode
from repro.core.protocol import ClientRegistration, HostRecord
from repro.core.queries import Query
from repro.core.service import RVaaSController
from repro.crypto.enclave import AttestationVerifier, make_attestation_root
from repro.crypto.keys import KeyPair, generate_keypair
from repro.core.gate import GateConfig, GatePolicy, PreventiveGate
from repro.dataplane.network import Network
from repro.dataplane.topology import Topology
from repro.faults import FaultInjector, FaultPlan
from repro.serving.scheduler import ServingConfig


@dataclass
class Testbed:
    """A fully wired scenario."""

    topology: Topology
    network: Network
    provider: CompromisedController
    service: RVaaSController
    attested: AttestedService
    attestation_verifier: AttestationVerifier
    registrations: Dict[str, ClientRegistration]
    clients: Dict[str, RVaaSClient]
    client_keys: Dict[str, KeyPair]
    host_keys: Dict[str, KeyPair]
    responders: Dict[str, AuthResponder] = field(default_factory=dict)
    silent: Dict[str, SilentResponder] = field(default_factory=dict)
    fault_injector: Optional[FaultInjector] = None
    gate: Optional[PreventiveGate] = None

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def run(self, duration: float) -> None:
        """Advance virtual time (the right way to 'wait' in a scenario).

        Note: ``Simulator.run_until_idle`` never returns on a live
        testbed, because the monitor's polling loop keeps the event
        queue non-empty by design — always advance by duration instead.
        """
        self.network.run(duration)

    def ask(self, client_name: str, query: Query, *, max_wait: float = 5.0):
        """Submit a query in-band and run the simulation until answered.

        Returns the resolved :class:`~repro.core.client.QueryHandle`;
        raises ``TimeoutError`` if no verified answer arrives.
        """
        client = self.clients[client_name]
        handle = client.submit(query)
        deadline = self.network.sim.now + max_wait
        while not handle.done and self.network.sim.now < deadline:
            if not self.network.sim.step():
                break
        if not handle.done:
            raise TimeoutError(
                f"query {type(query).__name__} for {client_name} unanswered "
                f"after {max_wait}s of virtual time"
            )
        return handle

    def client_names(self) -> List[str]:
        return sorted(self.clients)

    def close(self) -> None:
        """Release the service's persistent executors (idempotent)."""
        self.service.shutdown()


def build_registrations(
    topology: Topology,
    client_keys: Dict[str, KeyPair],
    host_keys: Dict[str, KeyPair],
) -> Dict[str, ClientRegistration]:
    """Derive client contracts from the topology's tenant assignment."""
    registrations: Dict[str, ClientRegistration] = {}
    by_client: Dict[str, List[HostRecord]] = {}
    for host in topology.hosts.values():
        if not host.client:
            continue
        record = HostRecord(
            name=host.name,
            ip=host.ip.value,
            switch=host.switch,
            port=host.port,
            public_key=host_keys[host.name].public,
        )
        by_client.setdefault(host.client, []).append(record)
    for client, records in by_client.items():
        registrations[client] = ClientRegistration(
            name=client,
            public_key=client_keys[client].public,
            hosts=tuple(sorted(records, key=lambda r: r.name)),
        )
    return registrations


def build_testbed(
    topology: Topology,
    *,
    seed: int = 0,
    isolate_clients: bool = False,
    monitor_mode: MonitorMode = MonitorMode.HYBRID,
    mean_poll_interval: float = 5.0,
    randomize_polls: bool = True,
    auth_timeout: float = 0.25,
    auth_retries: int = 0,
    poll_timeout: float = 0.25,
    max_poll_retries: int = 3,
    silent_hosts: Sequence[str] = (),
    record_history: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    serving: Optional[ServingConfig] = None,
    gate: Optional[GateConfig] = None,
    settle: bool = True,
) -> Testbed:
    """Build and start a complete deployment on ``topology``.

    * ``isolate_clients`` selects the provider's agreed policy (per-client
      isolation vs full any-to-any routing).
    * ``silent_hosts`` names hosts that receive but never answer
      authentication challenges (untrusted clients).
    * ``fault_plan`` installs a :class:`~repro.faults.FaultInjector`
      before any control channel opens, so every session (provider and
      RVaaS alike) sees the planned impairments from its first record.
    * ``serving`` enables the multi-tenant serving tier
      (:class:`~repro.serving.scheduler.QueryScheduler`) in front of the
      engine; ``None`` keeps the synchronous per-request path.
    * ``gate`` installs a :class:`~repro.core.gate.PreventiveGate` on
      every control channel (prevention mode).  The gate is wired before
      the provider attaches — so both honest and malicious providers
      pass through it — but only arms once the RVaaS service starts
      (the agreed policy deploys ungated, as it predates onboarding).
      Pass a :class:`~repro.core.gate.GatePolicy` for the defaults.
    * ``settle`` drains the event queue once so rule installation and the
      initial monitoring poll complete before the scenario starts.
    """
    network = Network(topology, seed=seed)
    fault_injector: Optional[FaultInjector] = None
    if fault_plan is not None:
        fault_injector = FaultInjector(network, fault_plan)
        fault_injector.install()
    preventive_gate: Optional[PreventiveGate] = None
    if gate is not None:
        if isinstance(gate, GatePolicy):
            gate = GateConfig(policy=gate)
        preventive_gate = PreventiveGate(network, gate).install()
    key_rng = random.Random(seed ^ 0x5EED)

    provider = CompromisedController()
    provider.attach(network)
    provider.deploy(isolate_clients=isolate_clients)

    # Attestation root + enclave-held service key.
    attestation_key, attestation_verifier = make_attestation_root(key_rng)
    attested = setup_attested_service(attestation_key, key_rng)

    client_names = sorted(
        {h.client for h in topology.hosts.values() if h.client}
    )
    client_keys = {
        name: generate_keypair(f"client:{name}", rng=key_rng)
        for name in client_names
    }
    host_keys = {
        host.name: generate_keypair(f"host:{host.name}", rng=key_rng)
        for host in topology.hosts.values()
        if host.client
    }
    registrations = build_registrations(topology, client_keys, host_keys)

    service = RVaaSController(
        attested.service_keypair,
        registrations,
        enclave=attested.enclave,
        monitor_mode=monitor_mode,
        mean_poll_interval=mean_poll_interval,
        randomize_polls=randomize_polls,
        auth_timeout=auth_timeout,
        auth_retries=auth_retries,
        poll_timeout=poll_timeout,
        max_poll_retries=max_poll_retries,
        record_history=record_history,
        serving=serving,
    )
    service.start(network)
    if preventive_gate is not None:
        service.attach_gate(preventive_gate)

    # Client libraries verify attestation before trusting the service key.
    rvaas_public = attested.service_keypair.public
    RVaaSClient.verify_service(
        attested.quote, rvaas_public, expected_measurement(), attestation_verifier
    )

    clients: Dict[str, RVaaSClient] = {}
    responders: Dict[str, AuthResponder] = {}
    silent: Dict[str, SilentResponder] = {}
    for name in client_names:
        first_host = registrations[name].hosts[0]
        clients[name] = RVaaSClient(
            network.host(first_host.name),
            name,
            client_keys[name],
            rvaas_public,
            rng=random.Random(seed ^ hash(name) & 0xFFFF),
            clock=lambda: network.sim.now,
        )
    for host_spec in topology.hosts.values():
        if not host_spec.client:
            continue
        host = network.host(host_spec.name)
        if host_spec.name in silent_hosts:
            silent[host_spec.name] = SilentResponder(host)
        else:
            responders[host_spec.name] = AuthResponder(
                host,
                host_spec.client,
                host_keys[host_spec.name],
                rvaas_public,
            )

    testbed = Testbed(
        topology=topology,
        network=network,
        provider=provider,
        service=service,
        attested=attested,
        attestation_verifier=attestation_verifier,
        registrations=registrations,
        clients=clients,
        client_keys=client_keys,
        host_keys=host_keys,
        responders=responders,
        silent=silent,
        fault_injector=fault_injector,
        gate=preventive_gate,
    )
    if settle:
        # Let FlowMods, monitor subscriptions, and the seed poll land.
        network.run(1.0)
    return testbed
