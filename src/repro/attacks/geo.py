"""Geo-violation: route client traffic through a forbidden jurisdiction.

The concrete scenario of the paper's second case study (§IV-B2):
"different jurisdictions exercise different privacy policies regarding
user data", and a compromised control plane reroutes traffic through a
region the client's policy forbids.  Implemented as a diversion through
a switch located in the forbidden region.
"""

from __future__ import annotations

from repro.attacks.base import AttackReport
from repro.attacks.diversion import DiversionAttack
from repro.controlplane.controller import ControllerApp
from repro.dataplane.topology import Topology


class GeoViolationAttack(DiversionAttack):
    """Divert a flow through any switch located in ``forbidden_region``."""

    name = "geo-violation"

    def __init__(self, src_host: str, dst_host: str, forbidden_region: str) -> None:
        # via_switch is resolved lazily in arm(), once we see the topology.
        super().__init__(src_host, dst_host, via_switch="")
        self.forbidden_region = forbidden_region

    def arm(self, controller: ControllerApp, topology: Topology) -> AttackReport:
        candidates = [
            name
            for name, spec in sorted(topology.switches.items())
            if spec.location is not None
            and spec.location.region == self.forbidden_region
        ]
        if not candidates:
            raise ValueError(
                f"no switch located in region {self.forbidden_region!r}"
            )
        self.via_switch = candidates[0]
        report = super().arm(controller, topology)
        return AttackReport(
            name=self.name,
            victim_client=report.victim_client,
            violated_property="geo",
            details=(
                f"{self.src_host}->{self.dst_host} routed through region "
                f"{self.forbidden_region} (switch {self.via_switch})"
            ),
        )
