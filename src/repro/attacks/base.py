"""Attack interface and shared helpers."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx

from repro.controlplane.controller import ControllerApp
from repro.dataplane.topology import Topology

#: Priority attackers use — above the provider's routes (10), below the
#: RVaaS interception rules (1000), i.e. stealthy against traffic but
#: unable to suppress client<->RVaaS signalling without detection.
ATTACK_PRIORITY = 20

#: Cookie marking adversarial rules; used only by test ground-truthing,
#: never by RVaaS (a real attacker would of course reuse cookie 1).
ATTACK_COOKIE = 666


@dataclass(frozen=True)
class AttackReport:
    """Ground truth about an armed attack, for experiment scoring."""

    name: str
    victim_client: str
    violated_property: str  # "isolation" | "geo" | "path" | "delivery" | ...
    details: str = ""


class Attack(abc.ABC):
    """One adversarial manipulation of the data-plane configuration."""

    name: str = "attack"

    def __init__(self) -> None:
        self.armed = False
        self._installed: List[Tuple[str, object, int]] = []  # (switch, match, prio)

    @abc.abstractmethod
    def arm(self, controller: ControllerApp, topology: Topology) -> AttackReport:
        """Install the malicious configuration via ``controller``."""

    def disarm(self, controller: ControllerApp) -> None:
        """Remove every rule this attack installed (strict delete)."""
        for switch, match, priority in self._installed:
            controller.remove_flow(switch, match, priority=priority, strict=True)  # type: ignore[arg-type]
        self._installed.clear()
        self.armed = False

    def _install(
        self,
        controller: ControllerApp,
        switch: str,
        match,
        actions,
        *,
        priority: int = ATTACK_PRIORITY,
    ) -> None:
        controller.install_flow(
            switch, match, actions, priority=priority, cookie=ATTACK_COOKIE
        )
        self._installed.append((switch, match, priority))


def path_via(
    topology: Topology, src_switch: str, via_switch: str, dst_switch: str
) -> List[str]:
    """A detour path src -> via -> dst (simple concatenation, deduped)."""
    graph = topology.graph()
    first = nx.shortest_path(graph, src_switch, via_switch, weight="latency")
    second = nx.shortest_path(graph, via_switch, dst_switch, weight="latency")
    path = list(first) + list(second[1:])
    # Collapse immediate backtracking (a-b-a) pairs that arise when the
    # detour doubles back; forwarding rules cannot express them anyway.
    cleaned: List[str] = []
    for node in path:
        if len(cleaned) >= 2 and cleaned[-2] == node:
            cleaned.pop()
        else:
            cleaned.append(node)
    return cleaned


def port_toward(topology: Topology, here: str, there: str) -> int:
    for link in topology.links:
        if (link.switch_a, link.switch_b) == (here, there):
            return link.port_a
        if (link.switch_b, link.switch_a) == (here, there):
            return link.port_b
    raise ValueError(f"no link between {here} and {there}")
