"""Traffic diversion: route a victim flow through an attacker-chosen switch.

The flow still arrives at its legitimate destination (stealthy against
end-to-end acknowledgements — paper §I: a signed receiver ACK "does not
provide any information about which paths have been taken"), but it now
crosses an extra switch, e.g. one in a jurisdiction where a tap is
planned.

Implementation detail: a detour src -> via -> dst generally revisits
switches, which per-flow IP matching cannot express.  The attack
therefore uses the classic two-phase VLAN trick: the ingress switch tags
the flow and the tagged rules steer it to ``via``, which pops the tag;
untagged rules then carry it to the real destination.  This is exactly
the kind of header-rewriting configuration that makes naive path
reasoning fail — and that HSA-based verification handles (§IV-A2).
"""

from __future__ import annotations

import networkx as nx

from repro.attacks.base import (
    ATTACK_PRIORITY,
    Attack,
    AttackReport,
    port_toward,
)
from repro.controlplane.controller import ControllerApp
from repro.dataplane.topology import Topology
from repro.openflow.actions import Output, PopVlan, PushVlan
from repro.openflow.match import Match

#: VLAN id used to mark the "toward the detour point" phase.
DETOUR_TAG = 1337


class DiversionAttack(Attack):
    """Divert (src_host -> dst_host) traffic through ``via_switch``."""

    name = "diversion"

    def __init__(self, src_host: str, dst_host: str, via_switch: str) -> None:
        super().__init__()
        self.src_host = src_host
        self.dst_host = dst_host
        self.via_switch = via_switch
        self.detour_switches: tuple[str, ...] = ()

    def arm(self, controller: ControllerApp, topology: Topology) -> AttackReport:
        src = topology.hosts[self.src_host]
        dst = topology.hosts[self.dst_host]
        graph = topology.graph()
        to_via = nx.shortest_path(graph, src.switch, self.via_switch, weight="latency")
        from_via = nx.shortest_path(graph, self.via_switch, dst.switch, weight="latency")
        self.detour_switches = tuple(to_via) + tuple(from_via[1:])

        pair = dict(ip_src=src.ip, ip_dst=dst.ip)

        if len(to_via) == 1:
            # via == ingress switch: traffic already passes through it;
            # plain untagged routing to dst suffices.
            self._install_untagged_segment(controller, topology, from_via, dst)
            self.armed = True
            return self._report(src)

        # Phase 1 (tagged): ingress tags packets from the victim's port
        # and every switch on the way forwards the tagged flow to `via`.
        first_hop = port_toward(topology, src.switch, to_via[1])
        self._install(
            controller,
            src.switch,
            Match(in_port=src.port, vlan_id=0, **pair),
            (PushVlan(DETOUR_TAG), Output(first_hop)),
            priority=ATTACK_PRIORITY + 5,
        )
        tagged = Match(vlan_id=DETOUR_TAG, **pair)
        for here, there in zip(to_via[1:], to_via[2:]):
            self._install(
                controller, here, tagged, (Output(port_toward(topology, here, there)),)
            )

        # Phase 2 (untagged): `via` pops the tag and sends toward dst.
        if len(from_via) == 1:
            # via == destination switch: pop and deliver directly.
            self._install(
                controller, self.via_switch, tagged, (PopVlan(), Output(dst.port))
            )
        else:
            via_out = port_toward(topology, self.via_switch, from_via[1])
            self._install(
                controller, self.via_switch, tagged, (PopVlan(), Output(via_out))
            )
            self._install_untagged_segment(
                controller, topology, from_via[1:], dst
            )
        self.armed = True
        return self._report(src)

    def _install_untagged_segment(
        self,
        controller: ControllerApp,
        topology: Topology,
        path: list[str],
        dst,
    ) -> None:
        src = topology.hosts[self.src_host]
        untagged = Match(vlan_id=0, ip_src=src.ip, ip_dst=dst.ip)
        for here, there in zip(path, path[1:]):
            self._install(
                controller,
                here,
                untagged,
                (Output(port_toward(topology, here, there)),),
            )
        self._install(controller, dst.switch, untagged, (Output(dst.port),))

    def _report(self, src) -> AttackReport:
        return AttackReport(
            name=self.name,
            victim_client=src.client or src.name,
            violated_property="path",
            details=(
                f"{self.src_host}->{self.dst_host} diverted via {self.via_switch}; "
                f"detour path {' -> '.join(self.detour_switches)}"
            ),
        )
