"""Exfiltration: covertly mirror a victim's traffic to an eavesdropper.

The paper's §I motivates this directly: a compromised control plane can
"exfiltrate confidential traffic".  The attack duplicates matched
packets: one copy continues on the legitimate route, the second is
forwarded hop-by-hop to an attacker-controlled host.  End-to-end checks
(delivery, latency) notice nothing; the set of *reached destinations*
grows — which is precisely what an RVaaS reachability query exposes.
"""

from __future__ import annotations

import networkx as nx

from repro.attacks.base import Attack, AttackReport, port_toward
from repro.controlplane.controller import ControllerApp
from repro.controlplane.provider import ProviderController
from repro.dataplane.topology import Topology
from repro.openflow.actions import Output
from repro.openflow.match import Match


class ExfiltrationAttack(Attack):
    """Mirror traffic addressed to ``victim_host`` toward ``eavesdropper_host``."""

    name = "exfiltration"

    def __init__(self, victim_host: str, eavesdropper_host: str) -> None:
        super().__init__()
        self.victim_host = victim_host
        self.eavesdropper_host = eavesdropper_host

    def arm(self, controller: ControllerApp, topology: Topology) -> AttackReport:
        victim = topology.hosts[self.victim_host]
        spy = topology.hosts[self.eavesdropper_host]
        match = Match(ip_dst=victim.ip)

        # At the victim's switch: deliver normally AND fork toward the spy.
        if victim.switch == spy.switch:
            fork_actions = (Output(victim.port), Output(spy.port))
            self._install(controller, victim.switch, match, fork_actions)
        else:
            path = nx.shortest_path(
                topology.graph(), victim.switch, spy.switch, weight="latency"
            )
            fork_port = port_toward(topology, victim.switch, path[1])
            self._install(
                controller,
                victim.switch,
                match,
                (Output(victim.port), Output(fork_port)),
            )
            # Carry the mirrored copy the rest of the way to the spy.
            for here, there in zip(path[1:], path[2:]):
                self._install(
                    controller,
                    here,
                    match,
                    (Output(port_toward(topology, here, there)),),
                )
            self._install(controller, spy.switch, match, (Output(spy.port),))
        self.armed = True
        return AttackReport(
            name=self.name,
            victim_client=victim.client or victim.name,
            violated_property="isolation",
            details=(
                f"traffic to {self.victim_host} mirrored to {self.eavesdropper_host}"
            ),
        )
