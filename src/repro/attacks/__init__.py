"""The adversary library: what a hacked control plane does.

Each attack is an object a :class:`~repro.controlplane.malicious.CompromisedController`
executes through its *legitimate* control channels — exactly the power
the paper's threat model grants ("an adversary with access to the control
plane can in principle arbitrarily change the network forwarding
behavior", §I) and nothing more: switches, links and the RVaaS channels
stay untouchable.

Attacks carry their own ground truth (victim, violated property) so the
experiments can score detection without peeking into RVaaS internals.
"""

from repro.attacks.adaptive import BurstEvasionAttack, InterleavedDiversionAttack
from repro.attacks.base import Attack, AttackReport
from repro.attacks.blackhole import BlackholeAttack
from repro.attacks.diversion import DiversionAttack
from repro.attacks.exfiltration import ExfiltrationAttack
from repro.attacks.geo import GeoViolationAttack
from repro.attacks.joinattack import JoinAttack
from repro.attacks.reconfig import ShortLivedReconfigurationAttack

__all__ = [
    "Attack",
    "AttackReport",
    "BlackholeAttack",
    "BurstEvasionAttack",
    "DiversionAttack",
    "ExfiltrationAttack",
    "GeoViolationAttack",
    "InterleavedDiversionAttack",
    "JoinAttack",
    "ShortLivedReconfigurationAttack",
]
