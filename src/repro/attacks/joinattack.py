"""Join attack: a secret access point into a client's isolated network.

Paper §IV-B1: "an attacker first manipulates the network operation, and
secretly adds access points which can then be used to access and/or
damage client assets".  Concretely the compromised controller installs
routes letting an attacker-controlled host (a different tenant, or an
unassigned port) send traffic to a victim host — violating the isolation
policy the provider agreed to.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackReport, port_toward
from repro.controlplane.controller import ControllerApp
from repro.dataplane.topology import Topology
from repro.openflow.actions import Output
from repro.openflow.match import Match

import networkx as nx


class JoinAttack(Attack):
    """Give ``attacker_host`` a covert route into ``victim_host``."""

    name = "join-attack"

    def __init__(
        self, attacker_host: str, victim_host: str, *, bidirectional: bool = False
    ) -> None:
        super().__init__()
        self.attacker_host = attacker_host
        self.victim_host = victim_host
        self.bidirectional = bidirectional

    def arm(self, controller: ControllerApp, topology: Topology) -> AttackReport:
        self._install_route(controller, topology, self.attacker_host, self.victim_host)
        if self.bidirectional:
            self._install_route(
                controller, topology, self.victim_host, self.attacker_host
            )
        self.armed = True
        victim = topology.hosts[self.victim_host]
        return AttackReport(
            name=self.name,
            victim_client=victim.client or victim.name,
            violated_property="isolation",
            details=(
                f"covert access point: {self.attacker_host} can now reach "
                f"{self.victim_host}"
            ),
        )

    def _install_route(
        self, controller: ControllerApp, topology: Topology, src_name: str, dst_name: str
    ) -> None:
        src = topology.hosts[src_name]
        dst = topology.hosts[dst_name]
        match = Match(ip_src=src.ip, ip_dst=dst.ip)
        path = nx.shortest_path(
            topology.graph(), src.switch, dst.switch, weight="latency"
        )
        for here, there in zip(path, path[1:]):
            self._install(
                controller, here, match, (Output(port_toward(topology, here, there)),)
            )
        self._install(controller, dst.switch, match, (Output(dst.port),))
