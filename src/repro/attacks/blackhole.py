"""Blackhole: silently drop a victim flow.

Unlike diversion/exfiltration this attack *is* end-to-end observable
(packets stop arriving), but it demonstrates the complementary RVaaS
query: the victim asks "for which sources do routes to me exist?" and
the expected peer is missing from the answer.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackReport
from repro.controlplane.controller import ControllerApp
from repro.dataplane.topology import Topology
from repro.openflow.actions import Drop
from repro.openflow.match import Match


class BlackholeAttack(Attack):
    """Drop all traffic from ``src_host`` to ``dst_host`` at the ingress."""

    name = "blackhole"

    def __init__(self, src_host: str, dst_host: str) -> None:
        super().__init__()
        self.src_host = src_host
        self.dst_host = dst_host

    def arm(self, controller: ControllerApp, topology: Topology) -> AttackReport:
        src = topology.hosts[self.src_host]
        dst = topology.hosts[self.dst_host]
        match = Match(ip_src=src.ip, ip_dst=dst.ip)
        self._install(controller, src.switch, match, (Drop(),))
        self.armed = True
        return AttackReport(
            name=self.name,
            victim_client=dst.client or dst.name,
            violated_property="delivery",
            details=f"{self.src_host}->{self.dst_host} blackholed at {src.switch}",
        )
