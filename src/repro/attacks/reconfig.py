"""Short-lived reconfiguration (flapping) attack.

Paper §IV-A: an adversary that knows *when* snapshots are taken "may
simply set the correct rules for the short time periods in which the box
checks the configuration".  This attack arms an inner attack for
``active_duration`` seconds out of every ``period``, optionally phase-
aligned to a predicted (periodic) polling schedule — the scenario the
random-time polling of RVaaS is designed to defeat (experiment E6).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.attacks.base import Attack, AttackReport
from repro.controlplane.controller import ControllerApp
from repro.dataplane.simulator import Simulator
from repro.dataplane.topology import Topology


class ShortLivedReconfigurationAttack(Attack):
    """Periodically arm/disarm ``inner`` to evade configuration snapshots."""

    name = "short-lived-reconfiguration"

    def __init__(
        self,
        inner: Attack,
        *,
        period: float,
        active_duration: float,
        phase: float = 0.0,
        total_duration: Optional[float] = None,
    ) -> None:
        super().__init__()
        if not 0 < active_duration <= period:
            raise ValueError("need 0 < active_duration <= period")
        self.inner = inner
        self.period = period
        self.active_duration = active_duration
        self.phase = phase
        self.total_duration = total_duration
        self.activations: List[tuple[float, float]] = []  # (on, off) times
        self._sim: Optional[Simulator] = None
        self._stopped = False

    def arm(self, controller: ControllerApp, topology: Topology) -> AttackReport:
        """Start the on/off schedule on the controller's simulator."""
        assert controller.network is not None, "controller must be attached"
        self._sim = controller.network.sim
        self._controller = controller
        self._topology = topology
        start = self._sim.now + self.phase
        self._sim.schedule_at(start, self._activate)
        self.armed = True
        return AttackReport(
            name=self.name,
            victim_client="",
            violated_property="timing",
            details=(
                f"inner={self.inner.name} duty cycle "
                f"{self.active_duration:.3f}/{self.period:.3f}s"
            ),
        )

    def stop(self) -> None:
        """Cease flapping (inner attack is disarmed if currently active)."""
        self._stopped = True
        if self.inner.armed:
            self.inner.disarm(self._controller)

    def _activate(self) -> None:
        assert self._sim is not None
        if self._stopped or self._past_end():
            return
        on_time = self._sim.now
        self.inner.arm(self._controller, self._topology)
        self.activations.append((on_time, on_time + self.active_duration))
        self._sim.schedule(self.active_duration, self._deactivate)

    def _deactivate(self) -> None:
        assert self._sim is not None
        self.inner.disarm(self._controller)
        if self._stopped or self._past_end():
            return
        self._sim.schedule(self.period - self.active_duration, self._activate)

    def _past_end(self) -> bool:
        assert self._sim is not None
        if self.total_duration is None:
            return False
        first = self.activations[0][0] if self.activations else self._sim.now
        return self._sim.now >= first + self.total_duration

    def was_active_at(self, t: float) -> bool:
        """Ground truth: was the inner attack installed at time ``t``?"""
        return any(on <= t < off for on, off in self.activations)

    def duty_cycle(self) -> float:
        return self.active_duration / self.period
