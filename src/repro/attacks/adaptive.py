"""Adaptive adversaries that target the preventive gate itself.

The :class:`~repro.core.gate.PreventiveGate` changes the attacker's
problem: rules are verified *before* they install, so a naive attack
never lands.  An adaptive adversary attacks the verification pipeline
instead:

* :class:`BurstEvasionAttack` probes the gate's capacity — a burst of
  individually benign decoy FlowMods floods the bounded admission queue
  until deadlines slip and the gate degrades, then slips the real attack
  through the fail-open window.  A fail-closed gate is immune at the
  price of rejecting the decoys too; a fail-open gate owes (and the
  implementation pays) a signed audit trail plus re-verification of
  everything waved through once the pressure ends.

* :class:`InterleavedDiversionAttack` targets the gate's *speculative*
  state instead of its capacity: the diversion rules are installed one
  per FlowMod, spaced out in time and in reverse path order, so that at
  every step the rules already installed are individually inert (the
  VLAN tagger that activates them comes last).  Only a gate that verifies
  each FlowMod against mirror **plus** its own not-yet-polled forwarded
  rules sees the final tagger complete the detour; verifying against the
  stale mirror alone scores every step benign.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.attacks.base import Attack, AttackReport
from repro.attacks.diversion import DiversionAttack
from repro.controlplane.controller import ControllerApp
from repro.dataplane.topology import Topology
from repro.netlib.addresses import IPv4Address
from repro.openflow.actions import Drop
from repro.openflow.match import Match

#: TEST-NET-3 (RFC 5737): guaranteed not to collide with any host IP the
#: topologies assign, so decoy rules can never perturb real reachability.
_DECOY_BASE = IPv4Address.parse("203.0.113.0").value


class BurstEvasionAttack(Attack):
    """Flood the gate's admission queue, then arm ``inner`` while degraded."""

    name = "burst-evasion"

    def __init__(self, inner: Attack, *, burst: int = 128) -> None:
        super().__init__()
        self.inner = inner
        self.burst = burst
        self.decoys_installed = 0

    def arm(self, controller: ControllerApp, topology: Topology) -> AttackReport:
        switch = sorted(topology.switches)[0]
        for i in range(self.burst):
            # Each decoy is verifiably benign: it drops traffic of an
            # address block no host owns, so every per-client answer is
            # unchanged.  The damage is purely queueing.
            match = Match(
                ip_src=IPv4Address(_DECOY_BASE + (i % 256)),
                ip_dst=IPv4Address(_DECOY_BASE + ((i // 256) % 256)),
                tp_dst=40000 + i,
            )
            self._install(controller, switch, match, (Drop(),), priority=2)
            self.decoys_installed += 1
        inner_report = self.inner.arm(controller, topology)
        self.armed = True
        return AttackReport(
            name=self.name,
            victim_client=inner_report.victim_client,
            violated_property=inner_report.violated_property,
            details=(
                f"{self.burst} decoys to saturate the gate, then "
                f"{inner_report.name}: {inner_report.details}"
            ),
        )

    def disarm(self, controller: ControllerApp) -> None:
        self.inner.disarm(controller)
        super().disarm(controller)


class InterleavedDiversionAttack(DiversionAttack):
    """A diversion installed backwards, one delayed FlowMod at a time.

    Install order is reversed (delivery segment first, tagger last) and
    each rule goes out ``stage_gap`` seconds after the previous one, in
    its own implicit transaction.  Until the final tagger lands every
    installed rule matches traffic that does not exist (VLAN 1337 is
    never applied), so any per-rule verifier that forgets its own recent
    ALLOWs sees only no-risk rules.
    """

    name = "interleaved-diversion"

    def __init__(
        self, src_host: str, dst_host: str, via_switch: str, *, stage_gap: float = 0.05
    ) -> None:
        super().__init__(src_host, dst_host, via_switch)
        self.stage_gap = stage_gap
        self._staged: List[Tuple[str, Match, tuple, int]] = []
        self._buffering = False
        self.stages_sent = 0

    def _install(
        self,
        controller: ControllerApp,
        switch: str,
        match,
        actions,
        *,
        priority: int = 20,
    ) -> None:
        if self._buffering:
            self._staged.append((switch, match, tuple(actions), priority))
        else:
            super()._install(controller, switch, match, actions, priority=priority)

    def arm(self, controller: ControllerApp, topology: Topology) -> AttackReport:
        assert controller.network is not None, "controller must be attached"
        self._buffering = True
        try:
            report = super().arm(controller, topology)
        finally:
            self._buffering = False
        sim = controller.network.sim
        # Reverse order: the tagger (installed first by the parent) fires
        # last, after every downstream rule is already in place.
        for index, staged in enumerate(reversed(self._staged)):
            sim.schedule(
                (index + 1) * self.stage_gap,
                lambda s=staged: self._send_stage(controller, s),
            )
        return AttackReport(
            name=self.name,
            victim_client=report.victim_client,
            violated_property="path",
            details=(
                f"{len(self._staged)} rules, reverse order, "
                f"{self.stage_gap:.3f}s apart: {report.details}"
            ),
        )

    def _send_stage(
        self, controller: ControllerApp, staged: Tuple[str, Match, tuple, int]
    ) -> None:
        switch, match, actions, priority = staged
        super()._install(controller, switch, match, actions, priority=priority)
        self.stages_sent += 1
