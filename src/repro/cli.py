"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``demo``
    Run the compromised-controller story inline: deploy, attack, detect.
``query``
    Build a deployment, optionally arm an attack, and run one query
    through the full in-band protocol.
``topologies``
    List the built-in topology generators with their sizes.
``experiments``
    List the reproduction's experiment index (DESIGN.md §4).
``stats``
    Run the query battery on a fresh deployment and print the engine's
    cache/serving counters, including the per-query-class breakdown of
    matrix-served vs wildcard-fallback answers, the matrix-repair
    counters under FlowMod churn, and the serving tier's scheduler
    counters (admission, coalescing, batching).
``serve-bench``
    Drive the closed-loop multi-tenant workload generator against both
    the serial frontend and the serving tier and print the throughput /
    latency-percentile table (the E21 quick-look).
``federate``
    Generate a synthetic AS-level internetwork, partition it into one
    provider domain per AS, run a federated reachability query in each
    mode with timings, and print the herd-immunity audit (the E22
    quick-look).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, Optional

from repro.core.queries import (
    BandwidthQuery,
    FairnessQuery,
    GeoLocationQuery,
    IsolationQuery,
    PathLengthQuery,
    Query,
    ReachableDestinationsQuery,
    ReachingSourcesQuery,
    TransferFunctionQuery,
    WaypointAvoidanceQuery,
)
from repro.dataplane.topologies import (
    abilene_topology,
    fat_tree_topology,
    isp_topology,
    linear_topology,
    ring_topology,
    single_switch_topology,
    tree_topology,
    waxman_topology,
)
from repro.dataplane.topology import Topology
from repro.testbed import Testbed, build_testbed

QUERIES: Dict[str, Callable[[], Query]] = {
    "isolation": IsolationQuery,
    "reachable": ReachableDestinationsQuery,
    "sources": ReachingSourcesQuery,
    "geo": GeoLocationQuery,
    "avoid-offshore": lambda: WaypointAvoidanceQuery(
        forbidden_regions=("offshore",)
    ),
    "path-length": PathLengthQuery,
    "fairness": FairnessQuery,
    "bandwidth": lambda: BandwidthQuery(minimum_mbps=500),
    "transfer-function": TransferFunctionQuery,
}

EXPERIMENTS = [
    ("E1", "Fig. 1 integrity-request flow", "bench_fig1_integrity_request.py"),
    ("E2", "Fig. 2 auth-reply flow", "bench_fig2_auth_reply.py"),
    ("E3", "isolation case study (§IV-B1)", "bench_isolation_case_study.py"),
    ("E4", "geo-location case study (§IV-B2)", "bench_geo_case_study.py"),
    ("E5", "low resource requirements", "bench_resource_requirements.py"),
    ("E6", "random polling vs flapping attacks", "bench_random_polling.py"),
    ("E7", "RVaaS vs provider-trusting baselines", "bench_baseline_comparison.py"),
    ("E8", "confidentiality / topology leakage", "bench_confidentiality.py"),
    ("E9", "multi-provider federation", "bench_multiprovider.py"),
    ("E10", "HSA scaling + ablations", "bench_hsa_scaling.py"),
    ("E11", "monitoring overhead & staleness", "bench_monitoring_overhead.py"),
    ("E12", "fairness / neutrality queries", "bench_fairness_queries.py"),
    ("E13", "attack traceback from history", "bench_traceback.py"),
    ("E14", "HSA vs emulation backends", "bench_verification_backends.py"),
    ("E15", "proactive alerts vs polling", "bench_proactive_alerts.py"),
    ("E16", "delta-driven vs full recompilation", "bench_incremental_engine.py"),
    ("E17", "fast-path HSA kernel vs reference", "bench_hsa_kernel.py"),
    ("E18", "resilience under lossy control channels", "bench_fault_resilience.py"),
    ("E19", "atomic-predicate backend vs wildcard", "bench_atom_engine.py"),
    ("E20", "matrix repair vs full atom recompile", "bench_matrix_repair.py"),
    ("E21", "multi-tenant serving tier throughput", "bench_serving_tier.py"),
    ("E22", "AS-scale federation + herd immunity", "bench_federation.py"),
    ("E23", "preventive verify-then-install gate", "bench_preventive_gate.py"),
]


def parse_topology(spec: str, clients) -> Topology:
    """Parse ``isp`` / ``linear:6`` / ``fat-tree:4`` / ... into a topology."""
    name, _, arg = spec.partition(":")
    if name == "isp":
        return isp_topology(clients=clients)
    if name == "abilene":
        return abilene_topology(clients=clients)
    if name == "single":
        return single_switch_topology(int(arg or 2), clients=clients)
    if name == "linear":
        return linear_topology(int(arg or 4), clients=clients)
    if name == "ring":
        return ring_topology(int(arg or 4), clients=clients)
    if name == "tree":
        return tree_topology(int(arg or 2), 2, clients=clients)
    if name == "fat-tree":
        return fat_tree_topology(int(arg or 4), clients=clients)
    if name == "waxman":
        return waxman_topology(int(arg or 12), seed=1, clients=clients)
    raise SystemExit(f"unknown topology spec: {spec!r}")


def arm_attack(bed: Testbed, name: str) -> str:
    from repro.attacks import (
        BlackholeAttack,
        DiversionAttack,
        ExfiltrationAttack,
        GeoViolationAttack,
        JoinAttack,
    )

    hosts = [h.name for h in bed.topology.hosts.values() if h.client]
    if len(hosts) < 3:
        raise SystemExit("topology too small to arm an attack")
    factories = {
        "join": lambda: JoinAttack(hosts[1], hosts[0]),
        "exfiltration": lambda: ExfiltrationAttack(hosts[0], hosts[1]),
        "blackhole": lambda: BlackholeAttack(hosts[2], hosts[0]),
        "diversion": lambda: DiversionAttack(
            hosts[0], hosts[2], sorted(bed.topology.switches)[-1]
        ),
        "geo": lambda: GeoViolationAttack(hosts[0], hosts[2], "offshore"),
    }
    try:
        attack = factories[name]()
    except KeyError:
        raise SystemExit(
            f"unknown attack {name!r}; choose from {sorted(factories)}"
        ) from None
    report = bed.provider.compromise(attack)
    bed.run(0.5)
    return report.details


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.attacks import JoinAttack

    print("deploying isolated two-tenant ISP network with RVaaS...")
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=args.seed
    )
    answer = bed.ask("alice", IsolationQuery()).response.answer
    print(f"benign isolation check : isolated={answer.isolated}")
    report = bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
    bed.run(0.5)
    print(f"control plane hacked   : {report.details}")
    answer = bed.ask("alice", IsolationQuery()).response.answer
    print(f"post-attack check      : isolated={answer.isolated}")
    for endpoint in answer.violating_endpoints:
        print(f"  covert access point  : {endpoint.labelled()}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    clients = args.clients.split(",")
    topology = parse_topology(args.topology, clients)
    bed = build_testbed(
        topology, isolate_clients=not args.flat_routing, seed=args.seed
    )
    if args.attack:
        print("adversary:", arm_attack(bed, args.attack))
    client = args.client or bed.client_names()[0]
    try:
        query = QUERIES[args.query]()
    except KeyError:
        raise SystemExit(
            f"unknown query {args.query!r}; choose from {sorted(QUERIES)}"
        ) from None
    handle = bed.ask(client, query)
    response = handle.response
    print(f"client          : {client}")
    print(f"query           : {type(query).__name__}")
    print(f"virtual latency : {handle.latency * 1000:.1f} ms")
    print(f"snapshot version: {response.snapshot_version}")
    print(f"answer          : {response.answer}")
    return 0


def cmd_topologies(_args: argparse.Namespace) -> int:
    specs = [
        ("single[:H]", single_switch_topology(2)),
        ("linear[:N]", linear_topology(4)),
        ("ring[:N]", ring_topology(4)),
        ("tree[:D]", tree_topology(2, 2)),
        ("fat-tree[:K]", fat_tree_topology(4)),
        ("waxman[:N]", waxman_topology(12, seed=1)),
        ("isp", isp_topology()),
        ("abilene", abilene_topology()),
    ]
    for spec, topo in specs:
        print(f"{spec:<14} {topo.describe()}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run the query battery and print the engine's serving counters."""
    from repro.core.engine import BACKEND_ENV_VAR
    from repro.hsa.atoms import GLOBAL_ATOM_TABLE
    from repro.hsa.parallel import POOL_MODE_ENV_VAR, POOL_WORKERS_ENV_VAR
    from repro.openflow.actions import Output
    from repro.openflow.messages import Match

    from repro.serving import ServingConfig

    clients = args.clients.split(",")
    topology = parse_topology(args.topology, clients)
    gate_config = None
    if getattr(args, "gate", False):
        from repro.core.gate import GateConfig

        gate_config = GateConfig()
    # The deployment's engine and scheduler read their fan-out defaults
    # from the environment; scope the overrides to testbed construction.
    overrides = {BACKEND_ENV_VAR: args.backend}
    if args.pool_workers is not None:
        overrides[POOL_WORKERS_ENV_VAR] = str(args.pool_workers)
    if args.pool_mode is not None:
        overrides[POOL_MODE_ENV_VAR] = args.pool_mode
    saved = {name: os.environ.get(name) for name in overrides}
    os.environ.update(overrides)
    try:
        bed = build_testbed(
            topology,
            isolate_clients=True,
            seed=args.seed,
            serving=ServingConfig(),
            gate=gate_config,
        )
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    client = bed.client_names()[0]

    def battery() -> None:
        for name in sorted(QUERIES):
            bed.service.answer_locally(client, QUERIES[name]())

    battery()
    # Optional FlowMod churn between batteries, to exercise the
    # delta-driven matrix-repair path (atom backend).
    switch = sorted(bed.topology.switches)[0]
    for i in range(args.churn):
        bed.provider.install_flow(
            switch,
            Match.build(tp_dst=31000 + i),
            (Output(1),),
            priority=400 + i,
        )
        bed.run(0.5)
        battery()

    metrics = bed.service.engine.metrics
    counters = metrics.snapshot_counters()
    print(f"backend            : {bed.service.engine.backend}")
    print(f"topology           : {args.topology} ({topology.describe()})")
    print(f"queries run        : {len(QUERIES) * (1 + args.churn)}")
    print(
        "switch tf          : "
        f"hits={counters['switch_tf_hits']} "
        f"misses={counters['switch_tf_misses']}"
    )
    print(
        "network tf         : "
        f"hits={counters['network_tf_hits']} "
        f"builds={counters['network_tf_builds']} "
        f"incremental={counters['incremental_builds']}"
    )
    print(
        "reachability       : "
        f"hits={counters['reach_hits']} misses={counters['reach_misses']}"
    )
    if bed.service.engine.backend == "atom":
        print(
            "atom universe      : "
            f"atoms={counters['atom_count']} "
            f"space_builds={counters['atom_space_builds']} "
            f"overflows={counters['atom_overflows']}"
        )
        print(
            "atom matrix        : "
            f"builds={counters['atom_matrix_builds']} "
            f"repairs={counters['matrix_repairs']} "
            f"repair_fallbacks={counters['matrix_repair_fallbacks']}"
        )
        print(
            "matrix repair rows : "
            f"reused={counters['rows_reused']} "
            f"repaired={counters['rows_repaired']} "
            f"atoms_split={counters['atoms_split']}"
        )
        table = GLOBAL_ATOM_TABLE.stats()
        print(
            "atom interner      : "
            f"hits={table['hits']} builds={table['builds']} "
            f"revivals={table['revivals']}"
        )
        print(
            "query serving      : "
            f"matrix={counters['atom_served_queries']} "
            f"fallback={counters['atom_fallbacks']}"
        )
        served = counters["atom_served_by_class"]
        fallbacks = counters["atom_fallbacks_by_class"]
        print("per query class    :")
        for name in sorted(set(served) | set(fallbacks)):
            print(
                f"  {name:<24} matrix={served.get(name, 0):<5} "
                f"fallback={fallbacks.get(name, 0)}"
            )

    # Push the battery through the serving tier twice so the scheduler
    # counters show admission, coalescing and the batch histogram.
    scheduler = bed.service.scheduler
    assert scheduler is not None
    for _ in range(2):
        for name in sorted(QUERIES):
            scheduler.submit(
                client, QUERIES[name](), on_done=lambda _p, _o: None
            )
    scheduler.flush()
    serving = scheduler.metrics.snapshot_counters()
    print(
        "scheduler          : "
        f"admitted={serving['admitted']} served={serving['served']} "
        f"coalesced={serving['coalesced']} shed={serving['shed']} "
        f"rate_limited={serving['rate_limited']}"
    )
    print(
        "batches            : "
        f"count={serving['batches']} max={serving['max_batch']} "
        f"queue_peak={serving['queue_peak']} "
        f"hist={serving['batch_size_hist']}"
    )
    print(
        "serving caches     : "
        f"answer_hits={serving['answer_cache_hits']} "
        f"engine_calls={serving['engine_calls']} "
        f"row_hits={bed.service.verifier.row_cache_hits} "
        f"row_misses={bed.service.verifier.row_cache_misses}"
    )
    print(
        "degraded serving   : "
        f"stale_served={serving['stale_served']} "
        f"overload_responses={serving['overload_responses']} "
        f"warm_compiles={serving['warm_compiles']}"
    )
    if args.pool:
        counters = bed.service.engine.metrics.snapshot_counters()
        print(
            "fan-out pool       : "
            f"mode={counters['pool_mode']} "
            f"workers={counters['pool_workers']} "
            f"tasks={counters['pool_tasks']} "
            f"fallbacks={counters['pool_fallbacks']}"
        )
        print(
            "compile farm       : "
            f"batches={counters['farm_batches']} "
            f"tasks={counters['farm_tasks']} "
            f"warm_hits={counters['farm_warm_hits']} "
            f"mirror_reuses={counters['farm_mirror_reuses']}"
        )
        print(
            "farm shipping      : "
            f"bytes={counters['farm_bytes_shipped']} "
            f"parts_shipped={counters['farm_parts_shipped']} "
            f"parts_cached={counters['farm_parts_cached']}"
        )
        print(
            "farm health        : "
            f"worker_restarts={counters['farm_worker_restarts']} "
            f"queue_depth_peak={counters['farm_queue_depth_peak']} "
            f"scheduler_fallbacks={serving['pool_fallbacks']}"
        )
    if bed.gate is not None:
        gate = bed.gate.stats()
        print(
            "gate               : "
            f"state={gate['state']} intercepted={gate['intercepted']} "
            f"allowed={gate['allowed']} noop={gate['noop_allowed']}"
        )
        print(
            "gate refusals      : "
            f"blocked={gate['blocked']} repaired={gate['repaired']} "
            f"quarantined={gate['quarantined']} "
            f"rollbacks={gate['rollbacks']}"
        )
        print(
            "gate robustness    : "
            f"shed={gate['shed']} deadline_misses={gate['deadline_misses']} "
            f"retries={gate['retries']} "
            f"passed_through={gate['passed_through']} "
            f"fail_closed_rejects={gate['fail_closed_rejects']}"
        )
        print(
            "gate ledger        : "
            f"decisions={gate['decisions']} "
            f"audit_records={gate['audit_records']} "
            f"shadow_entries={gate['shadow_entries']} "
            f"backlog={gate['backlog']}"
        )
    bed.close()
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """Closed-loop serving-tier quick-look: serial vs scheduler."""
    from repro.core.engine import BACKEND_ENV_VAR
    from repro.serving import (
        QueryScheduler,
        ServingConfig,
        VirtualClock,
        WorkloadSpec,
        drive_scheduler,
        drive_serial,
        generate_arrivals,
        percentile_table,
        scope_wildcard_seeds,
    )

    clients = args.clients.split(",")
    topology = parse_topology(args.topology, clients)
    spec = WorkloadSpec(
        requests=args.requests,
        population=args.population,
        duplicate_fraction=args.duplicates,
        scope_pool=args.scope_pool,
        seed=args.seed,
    )
    # Fresh testbed per mode: sharing one bed would hand the serving
    # run the serial run's warm engine caches (or vice versa) and skew
    # the comparison.  One untimed query per bed keeps first-compile
    # cost out of both measurement windows identically.
    def fresh_bed():
        saved = os.environ.get(BACKEND_ENV_VAR)
        os.environ[BACKEND_ENV_VAR] = args.backend
        try:
            bed = build_testbed(topology, isolate_clients=True, seed=args.seed)
        finally:
            if saved is None:
                os.environ.pop(BACKEND_ENV_VAR, None)
            else:
                os.environ[BACKEND_ENV_VAR] = saved
        bed.service.engine.seed_atoms(scope_wildcard_seeds(spec))
        bed.service.answer_locally(clients[0], QUERIES["isolation"]())
        return bed

    serial_bed = fresh_bed()
    arrivals = generate_arrivals(serial_bed.registrations, spec)
    print(
        f"workload: {spec.requests} requests, {spec.population} simulated "
        f"clients, {spec.duplicate_fraction:.0%} duplicates, "
        f"backend={serial_bed.service.engine.backend}"
    )

    serial = drive_serial(serial_bed.service.answer_locally, arrivals)

    service = fresh_bed().service
    service.verifier.enable_row_cache()
    clock = VirtualClock()
    scheduler = QueryScheduler(
        answer_fn=service._scheduler_answer,
        snapshot_fn=service.snapshot,
        freshness_fn=service._freshness,
        clock=clock,
        config=ServingConfig(shard_workers=args.workers),
        ready_fn=service.verifier.ready,
        warm_fn=service.verifier.warm,
    )
    serving = drive_scheduler(scheduler, clock, arrivals)

    header = ["mode", "served", "refused", "req/s", "p50ms", "p99ms", "p999ms"]
    rows = [header] + percentile_table([serial, serving])
    widths = [max(len(str(row[i])) for row in rows) for i in range(len(header))]
    for row in rows:
        print("  ".join(str(cell).rjust(widths[i]) for i, cell in enumerate(row)))
    if serial.throughput > 0:
        print(f"speedup: {serving.throughput / serial.throughput:.2f}x")
    counters = scheduler.metrics.snapshot_counters()
    print(
        f"coalesced={counters['coalesced']} "
        f"answer_cache_hits={counters['answer_cache_hits']} "
        f"engine_calls={counters['engine_calls']} "
        f"batches={counters['batches']} max_batch={counters['max_batch']}"
    )
    return 0


def cmd_federate(args: argparse.Namespace) -> int:
    """AS-scale federation quick-look: query modes + herd audit."""
    import time

    from repro.core.herd import herd_immunity_report
    from repro.dataplane.asgraph import (
        as_graph_topology,
        build_snapshot,
        client_registration,
        federation_from_asgraph,
    )

    asg = as_graph_topology(
        args.domains, seed=args.seed, client_sites=args.client_sites
    )
    snapshot = build_snapshot(asg)
    federation = federation_from_asgraph(
        asg, snapshot=snapshot, backend=args.backend
    )
    registration = client_registration(asg)
    print(
        f"internetwork: {args.domains} ASes, "
        f"{len(asg.topology.switches)} switches, "
        f"{sum(len(r) for r in snapshot.rules.values())} rules, "
        f"{len(registration.hosts)} client sites, backend={args.backend}"
    )

    modes = args.modes.split(",")
    answer = None
    for mode in modes:
        start = time.perf_counter()
        answer = federation.federated_query(registration, mode=mode)
        elapsed = (time.perf_counter() - start) * 1000
        print(
            f"{mode:<9}: {elapsed:8.1f} ms  "
            f"endpoints={len(answer.endpoints)} "
            f"regions={len(answer.regions)} "
            f"domains={len(answer.domains_involved)} "
            f"messages={answer.federated_messages} "
            f"depth={answer.max_chain_depth} "
            f"truncated={answer.truncated} dropped={answer.dropped_items}"
        )

    rel = asg.relationships()
    cones = rel.cone_sizes()
    verified = {n for n, c in cones.items() if c >= args.cone_threshold}
    report = herd_immunity_report(rel, verified)
    print(
        f"\nherd immunity: {len(verified)} verified ASes "
        f"(cone >= {args.cone_threshold}), {len(report.verdicts)} pairs"
    )
    for verdict, count in report.summary_rows():
        print(f"  {verdict:<17} {count:>6}")
    print(
        f"protected fraction {report.protected_fraction:.3f}, "
        f"verified-cone coverage {report.verified_cone_coverage:.2f}"
    )
    return 0


def cmd_experiments(_args: argparse.Namespace) -> int:
    for exp_id, title, bench in EXPERIMENTS:
        print(f"{exp_id:<5} {title:<42} benchmarks/{bench}")
    print("\nrun all:   pytest benchmarks/ --benchmark-only -s")
    print("run one:   pytest benchmarks/<file> --benchmark-only -s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RVaaS reproduction — trustworthy routing verification",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="attack-and-detect walkthrough")
    demo.add_argument("--seed", type=int, default=42)
    demo.set_defaults(func=cmd_demo)

    query = sub.add_parser("query", help="run one query on a fresh deployment")
    query.add_argument("query", choices=sorted(QUERIES))
    query.add_argument("--client", default=None, help="querying client name")
    query.add_argument("--clients", default="alice,bob")
    query.add_argument("--topology", default="isp", help="e.g. isp, linear:6")
    query.add_argument("--attack", default=None, help="arm an attack first")
    query.add_argument(
        "--flat-routing",
        action="store_true",
        help="any-to-any routing instead of per-client isolation",
    )
    query.add_argument("--seed", type=int, default=0)
    query.set_defaults(func=cmd_query)

    topologies = sub.add_parser("topologies", help="list topology generators")
    topologies.set_defaults(func=cmd_topologies)

    experiments = sub.add_parser("experiments", help="list the experiment index")
    experiments.set_defaults(func=cmd_experiments)

    stats = sub.add_parser(
        "stats", help="run the query battery and print engine counters"
    )
    stats.add_argument(
        "--backend",
        choices=("wildcard", "atom"),
        default="atom",
        help="HSA header-set backend for the deployment's engine",
    )
    stats.add_argument("--clients", default="alice,bob")
    stats.add_argument("--topology", default="isp", help="e.g. isp, linear:6")
    stats.add_argument(
        "--churn",
        type=int,
        default=0,
        help="FlowMods to install between query batteries (exercises "
        "delta-driven matrix repair on the atom backend)",
    )
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--pool",
        action="store_true",
        help="print fan-out pool and compile-farm counters (warm hits, "
        "bytes shipped, worker restarts, queue depth)",
    )
    stats.add_argument(
        "--pool-workers",
        type=int,
        default=None,
        help="fan-out width for the deployment's engine and scheduler "
        "(default: RVAAS_POOL_WORKERS or 1)",
    )
    stats.add_argument(
        "--pool-mode",
        choices=("thread", "process"),
        default=None,
        help="fan-out backend: threads or the persistent compile farm "
        "(default: RVAAS_POOL_MODE or thread)",
    )
    stats.add_argument(
        "--gate",
        action="store_true",
        help="install the preventive verify-then-install gate on every "
        "control channel and print its decision counters",
    )
    stats.set_defaults(func=cmd_stats)

    serve = sub.add_parser(
        "serve-bench",
        help="serial vs serving-tier throughput on a synthetic workload",
    )
    serve.add_argument(
        "--backend", choices=("wildcard", "atom"), default="atom"
    )
    serve.add_argument("--clients", default="alice,bob")
    serve.add_argument("--topology", default="fat-tree:4")
    serve.add_argument("--requests", type=int, default=1000)
    serve.add_argument(
        "--population", type=int, default=10_000, help="simulated client count"
    )
    serve.add_argument(
        "--duplicates",
        type=float,
        default=0.5,
        help="fraction of requests repeating an earlier (client, query) pair",
    )
    serve.add_argument("--scope-pool", type=int, default=16)
    serve.add_argument(
        "--workers", type=int, default=1, help="shard fan-out width"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(func=cmd_serve_bench)

    federate = sub.add_parser(
        "federate",
        help="AS-scale federated query + herd-immunity audit",
    )
    federate.add_argument(
        "--backend", choices=("wildcard", "atom"), default="atom"
    )
    federate.add_argument("--domains", type=int, default=40)
    federate.add_argument("--client-sites", type=int, default=3)
    federate.add_argument(
        "--modes",
        default="matrix,serial",
        help="comma-separated federation modes to time "
        "(matrix, serial, recompile)",
    )
    federate.add_argument(
        "--cone-threshold",
        type=int,
        default=8,
        help="an AS runs RVaaS when its customer cone is at least this big",
    )
    federate.add_argument("--seed", type=int, default=11)
    federate.set_defaults(func=cmd_federate)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
