"""Meter tables for rate limiting.

Meters let the provider implement traffic shaping; RVaaS inspects them to
answer fairness / network-neutrality queries (paper §IV-C: "RVaaS could
be used to check whether allocated routes and meter tables meet network
neutrality requirements").

The data-plane effect is modelled as token buckets evaluated at packet
granularity, which is enough for the fairness experiments (E12) to show
real throttling of metered traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class MeterBand:
    """A drop band: packets beyond ``rate_kbps`` are discarded."""

    rate_kbps: int
    burst_kb: int = 64

    def __post_init__(self) -> None:
        if self.rate_kbps <= 0:
            raise ValueError("meter band rate must be positive")


@dataclass
class MeterEntry:
    """One meter: a token bucket enforcing its band's rate."""

    meter_id: int
    band: MeterBand
    tokens_bits: float = field(default=0.0)
    last_refill: float = field(default=0.0)
    packets_dropped: int = 0
    packets_passed: int = 0

    def __post_init__(self) -> None:
        self.tokens_bits = self.band.burst_kb * 8_000.0

    def allow(self, size_bytes: int, now: float) -> bool:
        """Refill the bucket to ``now`` and charge the packet against it."""
        elapsed = max(0.0, now - self.last_refill)
        self.last_refill = now
        capacity = self.band.burst_kb * 8_000.0
        self.tokens_bits = min(
            capacity, self.tokens_bits + elapsed * self.band.rate_kbps * 1_000.0
        )
        needed = size_bytes * 8.0
        if self.tokens_bits >= needed:
            self.tokens_bits -= needed
            self.packets_passed += 1
            return True
        self.packets_dropped += 1
        return False

    def signature(self) -> tuple:
        return (self.meter_id, self.band)


class MeterTable:
    """The switch's collection of meters, keyed by meter id."""

    def __init__(self) -> None:
        self._meters: Dict[int, MeterEntry] = {}

    def add(self, meter_id: int, band: MeterBand, now: float = 0.0) -> MeterEntry:
        entry = MeterEntry(meter_id=meter_id, band=band, last_refill=now)
        self._meters[meter_id] = entry
        return entry

    def remove(self, meter_id: int) -> Optional[MeterEntry]:
        return self._meters.pop(meter_id, None)

    def get(self, meter_id: int) -> Optional[MeterEntry]:
        return self._meters.get(meter_id)

    def entries(self) -> tuple[MeterEntry, ...]:
        return tuple(self._meters[mid] for mid in sorted(self._meters))

    def signature(self) -> tuple:
        return tuple(entry.signature() for entry in self.entries())

    def __len__(self) -> int:
        return len(self._meters)
