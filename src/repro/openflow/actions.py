"""OpenFlow actions.

Actions are small frozen dataclasses applied in order by the switch
pipeline (:meth:`repro.openflow.switch.OpenFlowSwitch.receive_packet`)
and interpreted symbolically by the HSA transfer-function builder
(:mod:`repro.hsa.transfer`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.packet import HEADER_FIELDS


@dataclass(frozen=True)
class Output:
    """Forward the packet out of a specific switch port."""

    port: int


@dataclass(frozen=True)
class ToController:
    """Punt the packet to the control plane as a Packet-In.

    Per OpenFlow with multiple equal controllers, the Packet-In is
    delivered to *every* connected controller; confidentiality of RVaaS
    client queries is preserved by payload encryption, not by channel
    addressing (paper §IV-A3).
    """

    max_len: int = 65535


@dataclass(frozen=True)
class Flood:
    """Forward out of every port except the ingress port."""


@dataclass(frozen=True)
class Drop:
    """Explicitly discard the packet (empty action list is equivalent)."""


@dataclass(frozen=True)
class SetField:
    """Rewrite one header field before subsequent actions."""

    field: str
    value: Union[int, MacAddress, IPv4Address]

    def __post_init__(self) -> None:
        if self.field not in HEADER_FIELDS:
            raise ValueError(f"cannot set unknown field: {self.field}")


@dataclass(frozen=True)
class PushVlan:
    """Tag the packet with an 802.1Q VLAN id."""

    vlan_id: int

    def __post_init__(self) -> None:
        if not 1 <= self.vlan_id < 4096:
            raise ValueError(f"invalid VLAN id: {self.vlan_id}")


@dataclass(frozen=True)
class PopVlan:
    """Remove the 802.1Q VLAN tag."""


@dataclass(frozen=True)
class GotoTable:
    """Continue matching in a later table of the pipeline."""

    table_id: int

    def __post_init__(self) -> None:
        if self.table_id < 1:
            raise ValueError("goto must target a later table (>= 1)")


@dataclass(frozen=True)
class Meter:
    """Send the packet through a meter before the remaining actions."""

    meter_id: int


Action = Union[
    Output, ToController, Flood, Drop, SetField, PushVlan, PopVlan, GotoTable, Meter
]

#: Actions that terminate pipeline processing for a packet.
TERMINAL_ACTIONS = (Output, ToController, Flood, Drop)


def output_ports(actions: tuple[Action, ...]) -> tuple[int, ...]:
    """The data-plane ports an action list forwards to (ignores controller)."""
    return tuple(action.port for action in actions if isinstance(action, Output))


def sends_to_controller(actions: tuple[Action, ...]) -> bool:
    return any(isinstance(action, ToController) for action in actions)
