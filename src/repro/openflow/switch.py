"""The OpenFlow switch model.

Implements the trusted data-plane element of the paper's threat model:
switches behave exactly per their flow tables, accept FlowMods from any
*connected* controller (provider or RVaaS), punt Packet-Ins to all
connected controllers, and support active state dumps and passive
flow-monitor subscriptions.

The switch is pure mechanism — it has no idea which controller is benign.
That is the point: trust is rooted in the switch's faithful execution of
its configuration plus the authenticated channels, not in any controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.netlib.packet import Packet
from repro.openflow.actions import (
    Action,
    Drop,
    Flood,
    GotoTable,
    Meter,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)
from repro.openflow.channel import ControlChannel
from repro.openflow.flowtable import FlowEntry, FlowTable, TableChange
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowMonitorRequest,
    FlowMonitorUpdate,
    FlowRemoved,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    MeterMod,
    MeterStatsEntry,
    MeterStatsReply,
    MeterStatsRequest,
    OpenFlowMessage,
    PacketIn,
    PacketInReason,
    PacketOut,
    PortStatus,
)
from repro.openflow.meters import MeterTable
from repro.netlib.constants import VLAN_NONE


@dataclass
class SwitchPort:
    """One switch port and what it is wired to (per the wiring plan)."""

    port_no: int
    kind: str = "unbound"  # "link" | "host" | "unbound"
    peer: str = ""  # peer switch or host name, for diagnostics
    up: bool = True
    rx_packets: int = 0
    tx_packets: int = 0


# Signature: (switch, out_port, packet) -> None, provided by the network.
TransmitFn = Callable[["OpenFlowSwitch", int, Packet], None]


class OpenFlowSwitch:
    """A multi-table, multi-controller OpenFlow switch."""

    def __init__(
        self,
        name: str,
        dpid: int,
        *,
        n_tables: int = 2,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.dpid = dpid
        self.ports: Dict[int, SwitchPort] = {}
        self.tables: List[FlowTable] = [FlowTable(table_id=i) for i in range(n_tables)]
        self.meters = MeterTable()
        self._channels: List[ControlChannel] = []
        self._monitor_subscribers: List[ControlChannel] = []
        self._clock = clock or (lambda: 0.0)
        self.transmit: Optional[TransmitFn] = None
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.restarts = 0
        for table in self.tables:
            table.subscribe(self._on_table_change)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def add_port(self, port_no: int, kind: str = "unbound", peer: str = "") -> SwitchPort:
        if port_no in self.ports:
            raise ValueError(f"{self.name}: port {port_no} already exists")
        port = SwitchPort(port_no=port_no, kind=kind, peer=peer)
        self.ports[port_no] = port
        return port

    def internal_ports(self) -> tuple[int, ...]:
        """Ports wired to other switches (the paper's 'internal network ports')."""
        return tuple(p.port_no for p in self.ports.values() if p.kind == "link")

    def edge_ports(self) -> tuple[int, ...]:
        """Ports wired to hosts — candidate client access points."""
        return tuple(p.port_no for p in self.ports.values() if p.kind == "host")

    # ------------------------------------------------------------------
    # Control plane attachment
    # ------------------------------------------------------------------

    def connect_controller(self, channel: ControlChannel) -> None:
        """Attach a controller session; the switch serves all of them equally."""
        self._channels.append(channel)
        channel.switch_end.set_handler(
            lambda message: self.handle_controller_message(channel, message)
        )

    def restart(self) -> None:
        """Model a switch reboot: session state is lost, tables survive.

        Flow-monitor subscriptions are per-session switch state, so a
        reboot silently stops passive updates until every controller
        resubscribes — exactly the desynchronisation hazard the
        monitor's channel-health machinery detects and repairs.  Flow
        tables are kept (warm restart / persisted TCAM state); cold
        restarts are the provider controller's recovery problem.
        """
        self.restarts += 1
        self._monitor_subscribers.clear()

    @property
    def now(self) -> float:
        return self._clock()

    def handle_controller_message(
        self, channel: ControlChannel, message: OpenFlowMessage
    ) -> None:
        """Dispatch one decrypted controller->switch message."""
        if isinstance(message, FlowMod):
            self._handle_flow_mod(message)
        elif isinstance(message, PacketOut):
            self._handle_packet_out(message)
        elif isinstance(message, FlowStatsRequest):
            channel.send_to_controller(self._flow_stats_reply(message))
        elif isinstance(message, MeterStatsRequest):
            channel.send_to_controller(self._meter_stats_reply(message))
        elif isinstance(message, FlowMonitorRequest):
            if channel not in self._monitor_subscribers:
                self._monitor_subscribers.append(channel)
        elif isinstance(message, EchoRequest):
            channel.send_to_controller(EchoReply(data=message.data, xid=message.xid))
        elif isinstance(message, FeaturesRequest):
            channel.send_to_controller(
                FeaturesReply(
                    dpid=self.dpid,
                    n_tables=len(self.tables),
                    ports=tuple(sorted(self.ports)),
                    xid=message.xid,
                )
            )
        elif isinstance(message, BarrierRequest):
            channel.send_to_controller(BarrierReply(xid=message.xid))
        elif isinstance(message, MeterMod):
            self._handle_meter_mod(message)
        # Unknown messages are silently ignored, as real switches do for
        # unsupported experimenter messages.

    def _handle_flow_mod(self, message: FlowMod) -> None:
        table = self.tables[message.table_id]
        if message.command is FlowModCommand.ADD:
            table.add(
                FlowEntry(
                    match=message.match,
                    actions=tuple(message.actions),
                    priority=message.priority,
                    cookie=message.cookie,
                    idle_timeout=message.idle_timeout,
                    hard_timeout=message.hard_timeout,
                    installed_at=self.now,
                )
            )
        elif message.command is FlowModCommand.MODIFY:
            modified = False
            for entry in table.entries():
                if entry.match == message.match and entry.priority == message.priority:
                    entry.actions = tuple(message.actions)
                    table._notify(TableChange("modified", entry))
                    modified = True
            if not modified:
                self._handle_flow_mod(
                    FlowMod(
                        command=FlowModCommand.ADD,
                        match=message.match,
                        actions=message.actions,
                        priority=message.priority,
                        cookie=message.cookie,
                        idle_timeout=message.idle_timeout,
                        hard_timeout=message.hard_timeout,
                        table_id=message.table_id,
                    )
                )
        elif message.command is FlowModCommand.DELETE:
            table.remove(message.match, cookie=message.cookie or None)
        elif message.command is FlowModCommand.DELETE_STRICT:
            table.remove(message.match, priority=message.priority, strict=True)

    def _handle_meter_mod(self, message: MeterMod) -> None:
        if message.command is FlowModCommand.ADD and message.band is not None:
            self.meters.add(message.meter_id, message.band, now=self.now)
        elif message.command is FlowModCommand.DELETE:
            self.meters.remove(message.meter_id)

    def _handle_packet_out(self, message: PacketOut) -> None:
        if message.packet is None:
            return
        self._apply_actions(
            message.packet, in_port=message.in_port, actions=tuple(message.actions)
        )

    def _flow_stats_reply(self, request: FlowStatsRequest) -> FlowStatsReply:
        self.expire_flows()
        entries = []
        for table in self.tables:
            if request.table_id is not None and table.table_id != request.table_id:
                continue
            for entry in table.entries():
                entries.append(
                    FlowStatsEntry(
                        table_id=table.table_id,
                        priority=entry.priority,
                        match=entry.match,
                        actions=entry.actions,
                        cookie=entry.cookie,
                        packet_count=entry.packet_count,
                        byte_count=entry.byte_count,
                        idle_timeout=entry.idle_timeout,
                        hard_timeout=entry.hard_timeout,
                    )
                )
        return FlowStatsReply(dpid=self.dpid, entries=tuple(entries), xid=request.xid)

    def _meter_stats_reply(self, request: MeterStatsRequest) -> MeterStatsReply:
        entries = tuple(
            MeterStatsEntry(
                meter_id=meter.meter_id,
                band=meter.band,
                packets_passed=meter.packets_passed,
                packets_dropped=meter.packets_dropped,
            )
            for meter in self.meters.entries()
        )
        return MeterStatsReply(dpid=self.dpid, entries=entries, xid=request.xid)

    # ------------------------------------------------------------------
    # Passive monitoring
    # ------------------------------------------------------------------

    def _on_table_change(self, change: TableChange) -> None:
        update = FlowMonitorUpdate(
            dpid=self.dpid,
            event=change.kind,
            table_id=0,
            priority=change.entry.priority,
            match=change.entry.match,
            actions=tuple(change.entry.actions),
            cookie=change.entry.cookie,
            reason=change.reason,
        )
        for channel in self._monitor_subscribers:
            channel.send_to_controller(update)
        if change.reason == "timeout":
            removed = FlowRemoved(
                match=change.entry.match,
                priority=change.entry.priority,
                cookie=change.entry.cookie,
                reason="timeout",
            )
            for channel in self._channels:
                channel.send_to_controller(removed)

    def notify_port_status(self, port_no: int, status: str) -> None:
        """Report a port up/down transition to every controller."""
        port = self.ports[port_no]
        port.up = status == "up"
        for channel in self._channels:
            channel.send_to_controller(
                PortStatus(dpid=self.dpid, port=port_no, status=status)
            )

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def expire_flows(self) -> None:
        now = self.now
        for table in self.tables:
            table.expire(now)

    def receive_packet(self, packet: Packet, in_port: int) -> None:
        """Run one packet through the match-action pipeline."""
        if in_port not in self.ports:
            raise ValueError(f"{self.name}: no such port {in_port}")
        port = self.ports[in_port]
        if not port.up:
            return
        port.rx_packets += 1
        self.expire_flows()
        packet = packet.with_hop(self.name, in_port)
        self._run_pipeline(packet, in_port, table_id=0)

    def _run_pipeline(self, packet: Packet, in_port: int, table_id: int) -> None:
        table = self.tables[table_id]
        entry = table.lookup(packet, in_port)
        if entry is None:
            # OpenFlow 1.3 default: table-miss drops unless a miss entry exists.
            self.packets_dropped += 1
            return
        entry.account(packet, self.now)
        self._apply_actions(packet, in_port, entry.actions, from_table=table_id)

    def _apply_actions(
        self,
        packet: Packet,
        in_port: int,
        actions: tuple[Action, ...],
        from_table: int = 0,
    ) -> None:
        current = packet
        forwarded = False
        for action in actions:
            if isinstance(action, SetField):
                current = current.replace(**{action.field: action.value})
            elif isinstance(action, PushVlan):
                current = current.replace(vlan_id=action.vlan_id)
            elif isinstance(action, PopVlan):
                current = current.replace(vlan_id=VLAN_NONE)
            elif isinstance(action, Meter):
                meter = self.meters.get(action.meter_id)
                if meter is not None and not meter.allow(current.size_bytes, self.now):
                    self.packets_dropped += 1
                    return
            elif isinstance(action, Output):
                self._transmit(action.port, current, in_port)
                forwarded = True
            elif isinstance(action, Flood):
                for port_no in sorted(self.ports):
                    if port_no != in_port and self.ports[port_no].up:
                        self._transmit(port_no, current, in_port)
                forwarded = True
            elif isinstance(action, ToController):
                self._send_packet_in(current, in_port, from_table)
                forwarded = True
            elif isinstance(action, GotoTable):
                self._run_pipeline(current, in_port, action.table_id)
                return
            elif isinstance(action, Drop):
                self.packets_dropped += 1
                return
        if not forwarded:
            self.packets_dropped += 1

    def _transmit(self, out_port: int, packet: Packet, in_port: int) -> None:
        # Hairpin output (out the ingress port) is permitted, matching
        # OpenFlow's OFPP_IN_PORT semantics; the HSA transfer function
        # models the same behaviour so analysis and emulation agree.
        port = self.ports.get(out_port)
        if port is None or not port.up:
            self.packets_dropped += 1
            return
        port.tx_packets += 1
        self.packets_forwarded += 1
        if self.transmit is not None:
            self.transmit(self, out_port, packet)

    def _send_packet_in(self, packet: Packet, in_port: int, table_id: int) -> None:
        message = PacketIn(
            dpid=self.dpid,
            in_port=in_port,
            reason=PacketInReason.ACTION,
            packet=packet,
            table_id=table_id,
        )
        for channel in self._channels:
            channel.send_to_controller(message)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def rule_count(self) -> int:
        return sum(len(table) for table in self.tables)

    def configuration_signature(self) -> tuple:
        """Content identity of this switch's full configuration."""
        return (
            self.dpid,
            tuple(table.signature() for table in self.tables),
            self.meters.signature(),
        )
