"""Authenticated, encrypted control channels.

A :class:`ControlChannel` connects exactly one controller to one switch.
Every message is pickled, encrypted and MACed with the channel's
:class:`~repro.crypto.cipher.SecureChannelKeys` before the simulator
delivers it after the channel latency; the receiving endpoint verifies
and decrypts before dispatching.  An adversary in our threat model
(compromised *controller software*, not infrastructure) cannot observe or
forge traffic on channels it does not own — the tamper test in
``tests/test_channel.py`` demonstrates records are rejected on
modification.

Channels also keep message/byte counters, which the monitoring-overhead
experiment (E11) reads.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.crypto.cipher import SecureChannelKeys
from repro.openflow.messages import OpenFlowMessage


class Scheduler(Protocol):
    """The slice of the simulator the channel layer needs."""

    @property
    def now(self) -> float: ...

    def schedule(self, delay: float, callback: Callable[[], None], *, priority: int = 0) -> object: ...


@dataclass
class ChannelStats:
    """Traffic accounting for one direction of a channel."""

    messages: int = 0
    bytes: int = 0

    def account(self, size: int) -> None:
        self.messages += 1
        self.bytes += size


@dataclass
class ChannelEndpoint:
    """One side of a control channel."""

    name: str
    handler: Optional[Callable[[OpenFlowMessage], None]] = None
    sent: ChannelStats = field(default_factory=ChannelStats)
    received: ChannelStats = field(default_factory=ChannelStats)
    _send_seq: int = 0
    _recv_seq: int = 0

    def set_handler(self, handler: Callable[[OpenFlowMessage], None]) -> None:
        self.handler = handler


class ChannelError(Exception):
    """Raised on authentication failure or use of a closed channel."""


class ControlChannel:
    """A bidirectional, secure, in-order, lossless control connection.

    The paper assumes reliable delivery between switches and the RVaaS
    controller ("RVaaS needs to ensure that it receives all the relevant
    updates from the switches. This is guaranteed in our setting where
    OpenFlow switches are reliable."), so the channel never drops or
    reorders records.
    """

    def __init__(
        self,
        controller_name: str,
        switch_name: str,
        keys: SecureChannelKeys,
        scheduler: Scheduler,
        latency: float = 0.0005,
    ) -> None:
        self.keys = keys
        self.scheduler = scheduler
        self.latency = latency
        self.controller_end = ChannelEndpoint(name=controller_name)
        self.switch_end = ChannelEndpoint(name=switch_name)
        self.open = True

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send_to_switch(self, message: OpenFlowMessage) -> None:
        """Controller -> switch."""
        self._send(self.controller_end, self.switch_end, message)

    def send_to_controller(self, message: OpenFlowMessage) -> None:
        """Switch -> controller."""
        self._send(self.switch_end, self.controller_end, message)

    def close(self) -> None:
        self.open = False

    def _send(
        self,
        sender: ChannelEndpoint,
        receiver: ChannelEndpoint,
        message: OpenFlowMessage,
    ) -> None:
        if not self.open:
            raise ChannelError(
                f"channel {self.keys.channel_id} is closed ({sender.name} -> {receiver.name})"
            )
        sequence = sender._send_seq
        sender._send_seq += 1
        plaintext = pickle.dumps(message)
        ciphertext, tag = self.keys.protect(plaintext, sequence)
        sender.sent.account(len(ciphertext))
        self.scheduler.schedule(
            self.latency,
            lambda: self._deliver(receiver, ciphertext, tag, sequence),
        )

    def _deliver(
        self,
        receiver: ChannelEndpoint,
        ciphertext: bytes,
        tag: bytes,
        sequence: int,
    ) -> None:
        if not self.open:
            return
        if sequence != receiver._recv_seq:
            raise ChannelError(
                f"channel {self.keys.channel_id}: out-of-order record "
                f"(got {sequence}, expected {receiver._recv_seq})"
            )
        receiver._recv_seq += 1
        plaintext = self.keys.unprotect(ciphertext, tag, sequence)
        message = pickle.loads(plaintext)
        receiver.received.account(len(ciphertext))
        if receiver.handler is not None:
            receiver.handler(message)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_messages(self) -> int:
        return self.controller_end.sent.messages + self.switch_end.sent.messages

    def total_bytes(self) -> int:
        return self.controller_end.sent.bytes + self.switch_end.sent.bytes
