"""Authenticated, encrypted control channels.

A :class:`ControlChannel` connects exactly one controller to one switch.
Every message is pickled, encrypted and MACed with the channel's
:class:`~repro.crypto.cipher.SecureChannelKeys` before the simulator
delivers it after the channel latency; the receiving endpoint verifies
and decrypts before dispatching.  An adversary in our threat model
(compromised *controller software*, not infrastructure) cannot observe or
forge traffic on channels it does not own — the tamper test in
``tests/test_channel.py`` demonstrates records are rejected on
modification.

The paper assumes reliable delivery ("OpenFlow switches are reliable"),
and without fault injection the channel is exactly that: in-order and
lossless.  For chaos runs (:mod:`repro.faults`) a channel accepts an
optional :attr:`ControlChannel.fault_filter` that may drop, delay,
duplicate, or reorder individual records, and an :attr:`online` flag
that black-holes the session while a switch restarts.  Delivery is
therefore *loss-tolerant*: each record is independently sealed under its
sequence number, duplicates are discarded via a replay window, and gaps
are tolerated (and counted) rather than fatal — the resilience layers
above (monitor retries, auth re-challenges) own recovery.

Channels also keep message/byte counters, which the monitoring-overhead
experiment (E11) reads, and impairment counters read by the resilience
experiment (E18).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence, Set

from repro.crypto.cipher import SecureChannelKeys
from repro.openflow.messages import OpenFlowMessage

#: How far behind the highest delivered sequence a record may arrive and
#: still be considered "new" rather than a replay.  Far larger than any
#: realistic reorder depth in the simulation.
REPLAY_WINDOW = 1024

#: A fault filter maps (direction, base latency) to the list of delivery
#: delays for one record: ``()`` drops it, two entries duplicate it, a
#: larger delay reorders it past later records.  Direction is
#: ``"to_switch"`` or ``"to_controller"``.
FaultFilter = Callable[[str, float], Sequence[float]]


class FlowModGateHook(Protocol):
    """A verify-then-install gate interposed on the to-switch path.

    Implemented by :class:`repro.core.gate.PreventiveGate`.  The hook sits
    *before* sequence-number assignment: an intercepted message consumes no
    sequence number until the gate forwards it via
    :meth:`ControlChannel.transmit_to_switch`, so allowed traffic is
    byte-identical to an ungated channel and held traffic leaves no gaps.
    """

    def intercepts(self, channel: "ControlChannel", message: OpenFlowMessage) -> bool: ...

    def intercept(self, channel: "ControlChannel", message: OpenFlowMessage) -> None: ...


class Scheduler(Protocol):
    """The slice of the simulator the channel layer needs."""

    @property
    def now(self) -> float: ...

    def schedule(self, delay: float, callback: Callable[[], None], *, priority: int = 0) -> object: ...


@dataclass
class ChannelStats:
    """Traffic accounting for one direction of a channel."""

    messages: int = 0
    bytes: int = 0

    def account(self, size: int) -> None:
        self.messages += 1
        self.bytes += size


@dataclass
class ChannelImpairments:
    """Receiver-side fault accounting (all zero on a lossless run)."""

    #: Records discarded as replays/duplicates of an already-seen sequence.
    duplicates_discarded: int = 0
    #: Sequence-number gaps observed on arrival.  A gap means the record
    #: was lost *or* is still in flight (reordered); the counter is a
    #: diagnostic, not an exact loss count.
    gaps_observed: int = 0
    #: Records discarded because the peer switch was restarting.
    outage_drops: int = 0


@dataclass
class ChannelEndpoint:
    """One side of a control channel."""

    name: str
    handler: Optional[Callable[[OpenFlowMessage], None]] = None
    sent: ChannelStats = field(default_factory=ChannelStats)
    received: ChannelStats = field(default_factory=ChannelStats)
    _send_seq: int = 0
    _recv_seq: int = 0  # next expected = highest delivered + 1
    _seen: Set[int] = field(default_factory=set)

    def set_handler(self, handler: Callable[[OpenFlowMessage], None]) -> None:
        self.handler = handler


class ChannelError(Exception):
    """Raised on authentication failure or use of a closed channel."""


class ControlChannel:
    """A bidirectional, secure control connection.

    Lossless and in-order by default; individually sealed records make
    delivery tolerant of the loss, reordering, and duplication a
    :mod:`repro.faults` plan may inject.
    """

    def __init__(
        self,
        controller_name: str,
        switch_name: str,
        keys: SecureChannelKeys,
        scheduler: Scheduler,
        latency: float = 0.0005,
    ) -> None:
        self.keys = keys
        self.scheduler = scheduler
        self.latency = latency
        self.controller_end = ChannelEndpoint(name=controller_name)
        self.switch_end = ChannelEndpoint(name=switch_name)
        self.open = True
        #: False while the peer switch is restarting: records of both
        #: directions are discarded at delivery time.
        self.online = True
        #: Optional fault injection hook (see :data:`FaultFilter`).
        self.fault_filter: Optional[FaultFilter] = None
        #: Optional verify-then-install gate (see :class:`FlowModGateHook`).
        self.flowmod_gate: Optional[FlowModGateHook] = None
        #: Back-reference to the ControllerApp driving this channel, set by
        #: :meth:`repro.controlplane.controller.ControllerApp.attach`; lets
        #: the gate read transaction boundaries declared by the sender.
        self.controller_app: Optional[object] = None
        self.impairments = ChannelImpairments()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send_to_switch(self, message: OpenFlowMessage) -> None:
        """Controller -> switch."""
        self._send(self.controller_end, self.switch_end, message, "to_switch")

    def send_to_controller(self, message: OpenFlowMessage) -> None:
        """Switch -> controller."""
        self._send(self.switch_end, self.controller_end, message, "to_controller")

    def close(self) -> None:
        self.open = False

    def transmit_to_switch(self, message: OpenFlowMessage) -> None:
        """Controller -> switch, bypassing the gate hook.

        Used by the gate itself to forward allowed/repaired FlowMods and to
        issue rollback deletes; the message is sealed and sequenced exactly
        as an ungated send would be.
        """
        self._transmit(self.controller_end, self.switch_end, message, "to_switch")

    def _send(
        self,
        sender: ChannelEndpoint,
        receiver: ChannelEndpoint,
        message: OpenFlowMessage,
        direction: str,
    ) -> None:
        if (
            direction == "to_switch"
            and self.flowmod_gate is not None
            and self.flowmod_gate.intercepts(self, message)
        ):
            self.flowmod_gate.intercept(self, message)
            return
        self._transmit(sender, receiver, message, direction)

    def _transmit(
        self,
        sender: ChannelEndpoint,
        receiver: ChannelEndpoint,
        message: OpenFlowMessage,
        direction: str,
    ) -> None:
        if not self.open:
            raise ChannelError(
                f"channel {self.keys.channel_id} is closed ({sender.name} -> {receiver.name})"
            )
        sequence = sender._send_seq
        sender._send_seq += 1
        plaintext = pickle.dumps(message)
        ciphertext, tag = self.keys.protect(plaintext, sequence)
        sender.sent.account(len(ciphertext))
        if self.fault_filter is None:
            delays: Sequence[float] = (self.latency,)
        else:
            delays = self.fault_filter(direction, self.latency)
        for delay in delays:
            self.scheduler.schedule(
                delay,
                lambda: self._deliver(receiver, ciphertext, tag, sequence),
            )

    def _deliver(
        self,
        receiver: ChannelEndpoint,
        ciphertext: bytes,
        tag: bytes,
        sequence: int,
    ) -> None:
        if not self.open:
            return
        if not self.online:
            self.impairments.outage_drops += 1
            return
        # Replay / duplicate suppression: each sequence is delivered at
        # most once; anything older than the window is a stale replay.
        if sequence in receiver._seen or sequence < receiver._recv_seq - REPLAY_WINDOW:
            self.impairments.duplicates_discarded += 1
            return
        if sequence > receiver._recv_seq:
            self.impairments.gaps_observed += sequence - receiver._recv_seq
        if sequence >= receiver._recv_seq:
            receiver._recv_seq = sequence + 1
        receiver._seen.add(sequence)
        if len(receiver._seen) > 4 * REPLAY_WINDOW:
            cutoff = receiver._recv_seq - REPLAY_WINDOW
            receiver._seen = {s for s in receiver._seen if s >= cutoff}
        plaintext = self.keys.unprotect(ciphertext, tag, sequence)
        message = pickle.loads(plaintext)
        receiver.received.account(len(ciphertext))
        if receiver.handler is not None:
            receiver.handler(message)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_messages(self) -> int:
        return self.controller_end.sent.messages + self.switch_end.sent.messages

    def total_bytes(self) -> int:
        return self.controller_end.sent.bytes + self.switch_end.sent.bytes
