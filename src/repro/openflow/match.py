"""OpenFlow match structures.

A :class:`Match` wildcards any subset of the nine packet header fields
plus the ingress port.  IP source/destination additionally support CIDR
prefix matching.  Besides packet classification, matches provide the
overlap/subsumption tests the HSA transfer-function builder and the
logical verifier rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Union

from repro.netlib.addresses import IPv4Address, IPv4Network, MacAddress, ip, mac
from repro.netlib.packet import HEADER_FIELDS, Packet

IpMatch = Union[IPv4Address, IPv4Network]

MATCH_FIELDS = ("in_port",) + HEADER_FIELDS


@dataclass(frozen=True)
class Match:
    """A wildcardable match over ingress port and packet headers.

    ``None`` means "don't care".  ``ip_src``/``ip_dst`` accept either an
    exact :class:`IPv4Address` or an :class:`IPv4Network` prefix.
    """

    in_port: Optional[int] = None
    eth_src: Optional[MacAddress] = None
    eth_dst: Optional[MacAddress] = None
    eth_type: Optional[int] = None
    vlan_id: Optional[int] = None
    ip_src: Optional[IpMatch] = None
    ip_dst: Optional[IpMatch] = None
    ip_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None

    @classmethod
    def any(cls) -> "Match":
        """The all-wildcard match (table-miss)."""
        return cls()

    @classmethod
    def build(cls, **kwargs: object) -> "Match":
        """Construct a match, coercing strings/ints to address types.

        Example::

            Match.build(eth_dst="02:00:00:00:00:01", ip_dst="10.0.1.0/24")
        """
        coerced: dict = {}
        for key, value in kwargs.items():
            if key not in MATCH_FIELDS:
                raise KeyError(f"unknown match field: {key}")
            if value is None:
                continue
            if key in ("eth_src", "eth_dst"):
                coerced[key] = mac(value)  # type: ignore[arg-type]
            elif key in ("ip_src", "ip_dst"):
                if isinstance(value, (IPv4Address, IPv4Network)):
                    coerced[key] = value
                elif isinstance(value, str) and "/" in value:
                    coerced[key] = IPv4Network.parse(value)
                else:
                    coerced[key] = ip(value)  # type: ignore[arg-type]
            else:
                coerced[key] = int(value)  # type: ignore[call-overload]
        return cls(**coerced)

    # ------------------------------------------------------------------
    # Packet classification
    # ------------------------------------------------------------------

    def matches(self, packet: Packet, in_port: int) -> bool:
        """True iff ``packet`` arriving on ``in_port`` satisfies this match."""
        if self.in_port is not None and self.in_port != in_port:
            return False
        for name in HEADER_FIELDS:
            wanted = getattr(self, name)
            if wanted is None:
                continue
            actual = getattr(packet, name)
            if name in ("ip_src", "ip_dst"):
                if actual is None:
                    return False
                if isinstance(wanted, IPv4Network):
                    if not wanted.contains(actual):
                        return False
                elif wanted != actual:
                    return False
            else:
                if isinstance(wanted, (MacAddress,)):
                    if wanted != actual:
                        return False
                elif int(wanted) != packet.header(name):
                    return False
        return True

    # ------------------------------------------------------------------
    # Set relations (used by FlowMod selectors and verification)
    # ------------------------------------------------------------------

    def is_subset_of(self, other: "Match") -> bool:
        """True iff every packet matching ``self`` also matches ``other``."""
        for field_info in fields(self):
            name = field_info.name
            mine, theirs = getattr(self, name), getattr(other, name)
            if theirs is None:
                continue
            if mine is None:
                return False
            if name in ("ip_src", "ip_dst"):
                if not _ip_subset(mine, theirs):
                    return False
            elif mine != theirs:
                return False
        return True

    def overlaps(self, other: "Match") -> bool:
        """True iff some packet can match both ``self`` and ``other``."""
        for field_info in fields(self):
            name = field_info.name
            mine, theirs = getattr(self, name), getattr(other, name)
            if mine is None or theirs is None:
                continue
            if name in ("ip_src", "ip_dst"):
                if not _ip_overlap(mine, theirs):
                    return False
            elif mine != theirs:
                return False
        return True

    def specified_fields(self) -> tuple[str, ...]:
        """Names of the fields this match constrains."""
        return tuple(
            f.name for f in fields(self) if getattr(self, f.name) is not None
        )

    def describe(self) -> str:
        parts = [
            f"{name}={getattr(self, name)}" for name in self.specified_fields()
        ]
        return "Match(" + ", ".join(parts) + ")" if parts else "Match(*)"


def _as_network(value: IpMatch) -> IPv4Network:
    if isinstance(value, IPv4Network):
        return value
    return IPv4Network(value, 32)


def _ip_subset(mine: IpMatch, theirs: IpMatch) -> bool:
    mine_net, theirs_net = _as_network(mine), _as_network(theirs)
    if mine_net.prefix_len < theirs_net.prefix_len:
        return False
    return theirs_net.contains(mine_net.address)


def _ip_overlap(a: IpMatch, b: IpMatch) -> bool:
    a_net, b_net = _as_network(a), _as_network(b)
    shorter, longer = (a_net, b_net) if a_net.prefix_len <= b_net.prefix_len else (b_net, a_net)
    return shorter.contains(longer.address)
