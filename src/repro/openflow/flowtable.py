"""Flow entries and priority-ordered flow tables.

The flow table is the unit of state RVaaS monitors: every mutation
produces a change record so the switch can emit flow-monitor updates to
subscribed controllers (paper §II: "to stay informed about the current
configuration of a switch ... the controller should use the OpenFlow add
flow monitor command").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.netlib.packet import Packet
from repro.openflow.actions import Action
from repro.openflow.match import Match

_entry_ids = itertools.count(1)


@dataclass
class FlowEntry:
    """One match-action rule with priority, timeouts, and counters."""

    match: Match
    actions: tuple[Action, ...]
    priority: int = 0
    cookie: int = 0
    idle_timeout: float = 0.0  # 0 = never
    hard_timeout: float = 0.0  # 0 = never
    installed_at: float = 0.0
    last_used_at: float = 0.0
    packet_count: int = 0
    byte_count: int = 0
    entry_id: int = field(default_factory=lambda: next(_entry_ids))

    def account(self, packet: Packet, now: float) -> None:
        self.packet_count += 1
        self.byte_count += packet.size_bytes
        self.last_used_at = now

    def is_expired(self, now: float) -> bool:
        if self.hard_timeout and now >= self.installed_at + self.hard_timeout:
            return True
        if self.idle_timeout:
            reference = self.last_used_at or self.installed_at
            if now >= reference + self.idle_timeout:
                return True
        return False

    def signature(self) -> tuple:
        """Identity of the rule for snapshot comparison (no counters)."""
        return (self.priority, self.match, self.actions, self.cookie)

    def describe(self) -> str:
        acts = ", ".join(repr(action) for action in self.actions)
        return f"[prio={self.priority}] {self.match.describe()} -> ({acts})"


@dataclass(frozen=True)
class TableChange:
    """A single mutation of a flow table, for monitor subscribers."""

    kind: str  # "added" | "removed" | "modified"
    entry: FlowEntry
    reason: str = ""


class FlowTable:
    """A priority-ordered flow table.

    Lookup returns the highest-priority matching entry; ties are broken
    by earliest installation (OpenFlow leaves ties undefined — we pick a
    deterministic rule so simulations are reproducible).
    """

    def __init__(self, table_id: int = 0) -> None:
        self.table_id = table_id
        self._entries: list[FlowEntry] = []
        self._observers: list[Callable[[TableChange], None]] = []

    # ------------------------------------------------------------------
    # Observation (flow-monitor support)
    # ------------------------------------------------------------------

    def subscribe(self, observer: Callable[[TableChange], None]) -> None:
        """Register a callback invoked on every table mutation."""
        self._observers.append(observer)

    def _notify(self, change: TableChange) -> None:
        for observer in self._observers:
            observer(change)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, entry: FlowEntry) -> None:
        """Install an entry; replaces an existing (match, priority) entry.

        Re-adding a rule whose actions and cookie are also identical is a
        no-op (counters preserved, no change events) — matching OpenFlow
        semantics and preventing event storms when several controllers
        maintain the same rule.
        """
        replaced = [
            existing
            for existing in self._entries
            if existing.priority == entry.priority and existing.match == entry.match
        ]
        if any(
            existing.signature() == entry.signature()
            and existing.idle_timeout == entry.idle_timeout
            and existing.hard_timeout == entry.hard_timeout
            for existing in replaced
        ):
            return
        for existing in replaced:
            self._entries.remove(existing)
            self._notify(TableChange("removed", existing, reason="replaced"))
        self._entries.append(entry)
        self._entries.sort(key=lambda e: (-e.priority, e.entry_id))
        self._notify(TableChange("added", entry))

    def remove(
        self,
        match: Optional[Match] = None,
        *,
        priority: Optional[int] = None,
        cookie: Optional[int] = None,
        strict: bool = False,
        reason: str = "delete",
    ) -> list[FlowEntry]:
        """Remove entries selected OpenFlow-style.

        Non-strict: every entry whose match is a subset of ``match``.
        Strict: exact (match, priority) equality.
        """
        removed = []
        for entry in list(self._entries):
            if cookie is not None and entry.cookie != cookie:
                continue
            if strict:
                if match is not None and entry.match != match:
                    continue
                if priority is not None and entry.priority != priority:
                    continue
            else:
                if match is not None and not entry.match.is_subset_of(match):
                    continue
            self._entries.remove(entry)
            removed.append(entry)
            self._notify(TableChange("removed", entry, reason=reason))
        return removed

    def expire(self, now: float) -> list[FlowEntry]:
        """Remove and return entries whose timeouts have elapsed."""
        expired = [entry for entry in self._entries if entry.is_expired(now)]
        for entry in expired:
            self._entries.remove(entry)
            self._notify(TableChange("removed", entry, reason="timeout"))
        return expired

    def clear(self) -> None:
        for entry in list(self._entries):
            self._entries.remove(entry)
            self._notify(TableChange("removed", entry, reason="clear"))

    # ------------------------------------------------------------------
    # Lookup & inspection
    # ------------------------------------------------------------------

    def lookup(self, packet: Packet, in_port: int) -> Optional[FlowEntry]:
        """Highest-priority entry matching ``packet`` on ``in_port``."""
        for entry in self._entries:  # kept sorted by (-priority, entry_id)
            if entry.match.matches(packet, in_port):
                return entry
        return None

    def entries(self) -> Iterator[FlowEntry]:
        """Iterate entries in match-precedence order."""
        return iter(list(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def signature(self) -> tuple:
        """Order-insensitive content signature, for snapshot hashing."""
        return tuple(sorted((e.signature() for e in self._entries), key=repr))
