"""OpenFlow 1.3-style protocol model and switch implementation.

This package provides the match-action abstraction the paper builds on
(§II Background): wildcardable :class:`~repro.openflow.match.Match`
structures, header-rewrite and output :mod:`~repro.openflow.actions`,
priority-ordered :class:`~repro.openflow.flowtable.FlowTable` instances
with timeouts and counters, the controller-facing message set
(:mod:`~repro.openflow.messages`), meter tables for fairness queries, and
an :class:`~repro.openflow.switch.OpenFlowSwitch` that connects to
multiple controllers over authenticated encrypted channels
(:mod:`~repro.openflow.channel`).
"""

from repro.openflow.actions import (
    Action,
    Drop,
    Flood,
    GotoTable,
    Meter,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)
from repro.openflow.channel import ChannelEndpoint, ControlChannel
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowMonitorRequest,
    FlowMonitorUpdate,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    Hello,
    MeterMod,
    MeterStatsReply,
    MeterStatsRequest,
    OpenFlowMessage,
    PacketIn,
    PacketInReason,
    PacketOut,
    PortStatus,
)
from repro.openflow.meters import MeterBand, MeterEntry, MeterTable
from repro.openflow.switch import OpenFlowSwitch, SwitchPort

__all__ = [
    "Action",
    "BarrierReply",
    "BarrierRequest",
    "ChannelEndpoint",
    "ControlChannel",
    "Drop",
    "EchoReply",
    "EchoRequest",
    "FeaturesReply",
    "FeaturesRequest",
    "Flood",
    "FlowEntry",
    "FlowMod",
    "FlowModCommand",
    "FlowMonitorRequest",
    "FlowMonitorUpdate",
    "FlowRemoved",
    "FlowStatsReply",
    "FlowStatsRequest",
    "FlowTable",
    "GotoTable",
    "Hello",
    "Match",
    "Meter",
    "MeterBand",
    "MeterEntry",
    "MeterMod",
    "MeterStatsReply",
    "MeterStatsRequest",
    "MeterTable",
    "OpenFlowMessage",
    "OpenFlowSwitch",
    "Output",
    "PacketIn",
    "PacketInReason",
    "PacketOut",
    "PopVlan",
    "PortStatus",
    "PushVlan",
    "SetField",
    "SwitchPort",
    "ToController",
]
