"""The OpenFlow message set exchanged over control channels.

Messages are plain frozen dataclasses; the secure channel
(:mod:`repro.openflow.channel`) serialises them with pickle, encrypts and
MACs the record, and the peer decrypts/verifies before dispatch — so
every control-plane byte in the simulation genuinely flows through the
cryptographic channel layer, as the paper's threat model requires.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.netlib.packet import Packet
from repro.openflow.actions import Action
from repro.openflow.match import Match
from repro.openflow.meters import MeterBand

_xids = itertools.count(1)


def next_xid() -> int:
    """Allocate a transaction id (global, monotonically increasing)."""
    return next(_xids)


@dataclass(frozen=True)
class OpenFlowMessage:
    """Base class: every message carries a transaction id."""

    xid: int = field(default_factory=next_xid, kw_only=True)


# ----------------------------------------------------------------------
# Session management
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Hello(OpenFlowMessage):
    version: int = 4  # OpenFlow 1.3


@dataclass(frozen=True)
class EchoRequest(OpenFlowMessage):
    data: bytes = b""


@dataclass(frozen=True)
class EchoReply(OpenFlowMessage):
    data: bytes = b""


@dataclass(frozen=True)
class FeaturesRequest(OpenFlowMessage):
    pass


@dataclass(frozen=True)
class FeaturesReply(OpenFlowMessage):
    dpid: int = 0
    n_tables: int = 1
    ports: tuple[int, ...] = ()


@dataclass(frozen=True)
class BarrierRequest(OpenFlowMessage):
    pass


@dataclass(frozen=True)
class BarrierReply(OpenFlowMessage):
    pass


# ----------------------------------------------------------------------
# Flow programming
# ----------------------------------------------------------------------


class FlowModCommand(enum.Enum):
    """The four flow-programming operations of OFPT_FLOW_MOD."""

    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"
    DELETE_STRICT = "delete_strict"


@dataclass(frozen=True)
class FlowMod(OpenFlowMessage):
    command: FlowModCommand = FlowModCommand.ADD
    match: Match = field(default_factory=Match)
    actions: tuple[Action, ...] = ()
    priority: int = 0
    cookie: int = 0
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    table_id: int = 0


@dataclass(frozen=True)
class FlowRemoved(OpenFlowMessage):
    match: Match = field(default_factory=Match)
    priority: int = 0
    cookie: int = 0
    reason: str = "timeout"
    table_id: int = 0


@dataclass(frozen=True)
class MeterMod(OpenFlowMessage):
    command: FlowModCommand = FlowModCommand.ADD
    meter_id: int = 0
    band: Optional[MeterBand] = None


# ----------------------------------------------------------------------
# Packet punting and injection
# ----------------------------------------------------------------------


class PacketInReason(enum.Enum):
    """Why a switch punted a packet to the control plane."""

    ACTION = "action"  # explicit ToController action
    NO_MATCH = "no_match"  # table miss


@dataclass(frozen=True)
class PacketIn(OpenFlowMessage):
    dpid: int = 0
    in_port: int = 0
    reason: PacketInReason = PacketInReason.ACTION
    packet: Optional[Packet] = None
    table_id: int = 0
    cookie: int = 0


@dataclass(frozen=True)
class PacketOut(OpenFlowMessage):
    packet: Optional[Packet] = None
    actions: tuple[Action, ...] = ()
    in_port: int = 0  # OFPP_CONTROLLER semantics when 0


# ----------------------------------------------------------------------
# State collection (passive + active monitoring)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FlowStatsRequest(OpenFlowMessage):
    """Active snapshot poll: dump all entries of all tables."""

    table_id: Optional[int] = None


@dataclass(frozen=True)
class FlowStatsEntry:
    table_id: int
    priority: int
    match: Match
    actions: tuple[Action, ...]
    cookie: int
    packet_count: int
    byte_count: int
    idle_timeout: float
    hard_timeout: float


@dataclass(frozen=True)
class FlowStatsReply(OpenFlowMessage):
    dpid: int = 0
    entries: tuple[FlowStatsEntry, ...] = ()


@dataclass(frozen=True)
class MeterStatsRequest(OpenFlowMessage):
    pass


@dataclass(frozen=True)
class MeterStatsEntry:
    meter_id: int
    band: MeterBand
    packets_passed: int
    packets_dropped: int


@dataclass(frozen=True)
class MeterStatsReply(OpenFlowMessage):
    dpid: int = 0
    entries: tuple[MeterStatsEntry, ...] = ()


@dataclass(frozen=True)
class FlowMonitorRequest(OpenFlowMessage):
    """Subscribe to table-change notifications (OF 1.4 flow monitor)."""

    table_id: Optional[int] = None


@dataclass(frozen=True)
class FlowMonitorUpdate(OpenFlowMessage):
    dpid: int = 0
    event: str = "added"  # "added" | "removed" | "modified"
    table_id: int = 0
    priority: int = 0
    match: Match = field(default_factory=Match)
    actions: tuple[Action, ...] = ()
    cookie: int = 0
    reason: str = ""


@dataclass(frozen=True)
class PortStatus(OpenFlowMessage):
    dpid: int = 0
    port: int = 0
    status: str = "up"  # "up" | "down"


@dataclass(frozen=True)
class ErrorMessage(OpenFlowMessage):
    error_type: str = ""
    detail: str = ""
