"""Standard topology generators used by examples, tests and benchmarks.

Every generator returns a fully-validated :class:`~repro.dataplane.topology.Topology`
with deterministic names, addresses and port numbers.  Hosts can be
pre-assigned to named clients (tenants) via ``clients``: hosts are dealt
to clients round-robin, which gives every client a geo-spatially spread
set of access points as in the paper's model (§III: "Each client may be
connected to the network infrastructure at multiple access points").
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Optional, Sequence

from repro.dataplane.topology import GeoLocation, Topology

_DEFAULT_REGIONS = ("eu-central", "eu-west", "us-east", "us-west", "apac")


def _client_cycle(clients: Optional[Sequence[str]]):
    if not clients:
        return itertools.repeat("")
    return itertools.cycle(clients)


def _region_for(index: int, regions: Sequence[str]) -> GeoLocation:
    region = regions[index % len(regions)]
    return GeoLocation(region=region, latitude=float(index), longitude=float(index) * 2)


def single_switch_topology(
    n_hosts: int = 2, *, clients: Optional[Sequence[str]] = None
) -> Topology:
    """One switch, ``n_hosts`` hosts — the smallest useful network."""
    topo = Topology("single")
    topo.add_switch("s1", location=GeoLocation("eu-central"))
    assign = _client_cycle(clients)
    for i in range(1, n_hosts + 1):
        topo.add_host(f"h{i}", "s1", client=next(assign))
    topo.validate()
    return topo


def linear_topology(
    n_switches: int,
    hosts_per_switch: int = 1,
    *,
    clients: Optional[Sequence[str]] = None,
    regions: Sequence[str] = _DEFAULT_REGIONS,
) -> Topology:
    """A chain s1 - s2 - ... - sN with hosts on every switch."""
    if n_switches < 1:
        raise ValueError("need at least one switch")
    topo = Topology(f"linear-{n_switches}")
    for i in range(1, n_switches + 1):
        topo.add_switch(f"s{i}", location=_region_for(i - 1, regions))
    assign = _client_cycle(clients)
    host_counter = itertools.count(1)
    for i in range(1, n_switches + 1):
        for _ in range(hosts_per_switch):
            topo.add_host(f"h{next(host_counter)}", f"s{i}", client=next(assign))
    for i in range(1, n_switches):
        topo.add_link(f"s{i}", f"s{i + 1}")
    topo.validate()
    return topo


def ring_topology(
    n_switches: int,
    hosts_per_switch: int = 1,
    *,
    clients: Optional[Sequence[str]] = None,
    regions: Sequence[str] = _DEFAULT_REGIONS,
) -> Topology:
    """A cycle of switches — gives HSA loop detection something to find."""
    if n_switches < 3:
        raise ValueError("a ring needs at least three switches")
    topo = linear_topology(
        n_switches, hosts_per_switch, clients=clients, regions=regions
    )
    topo.name = f"ring-{n_switches}"
    topo.add_link(f"s{n_switches}", "s1")
    topo.validate()
    return topo


def tree_topology(
    depth: int = 2,
    fanout: int = 2,
    *,
    clients: Optional[Sequence[str]] = None,
    regions: Sequence[str] = _DEFAULT_REGIONS,
) -> Topology:
    """A complete ``fanout``-ary tree; hosts hang off the leaves."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    topo = Topology(f"tree-d{depth}-f{fanout}")
    counter = itertools.count(1)

    def build(level: int) -> str:
        index = next(counter)
        name = f"s{index}"
        topo.add_switch(name, location=_region_for(index - 1, regions))
        if level < depth:
            for _ in range(fanout):
                child = build(level + 1)
                topo.add_link(name, child)
        return name

    build(1)
    assign = _client_cycle(clients)
    host_counter = itertools.count(1)
    def degree(name: str) -> int:
        return sum(1 for link in topo.links if name in (link.switch_a, link.switch_b))

    if len(topo.switches) == 1:
        leaves = list(topo.switches)
    else:
        leaves = [name for name in topo.switches if degree(name) == 1]
    for leaf in leaves:
        for _ in range(fanout):
            topo.add_host(f"h{next(host_counter)}", leaf, client=next(assign))
    topo.validate()
    return topo


def fat_tree_topology(
    k: int = 4, *, clients: Optional[Sequence[str]] = None
) -> Topology:
    """A k-ary fat-tree (k even): k pods, k^2/4 cores, k^3/4 host slots.

    Hosts are attached one per edge-switch port to keep sizes manageable;
    this preserves the path diversity that stresses HSA (E10).
    """
    if k < 2 or k % 2:
        raise ValueError("fat-tree k must be even and >= 2")
    topo = Topology(f"fat-tree-{k}")
    half = k // 2
    cores = [f"c{i}" for i in range(half * half)]
    for i, name in enumerate(cores):
        topo.add_switch(name, location=_region_for(i, _DEFAULT_REGIONS))
    aggs: list[list[str]] = []
    edges: list[list[str]] = []
    for pod in range(k):
        pod_aggs = [f"a{pod}_{i}" for i in range(half)]
        pod_edges = [f"e{pod}_{i}" for i in range(half)]
        for i, name in enumerate(pod_aggs):
            topo.add_switch(name, location=_region_for(pod, _DEFAULT_REGIONS))
        for i, name in enumerate(pod_edges):
            topo.add_switch(name, location=_region_for(pod, _DEFAULT_REGIONS))
        aggs.append(pod_aggs)
        edges.append(pod_edges)
    for pod in range(k):
        for agg_index, agg in enumerate(aggs[pod]):
            for edge in edges[pod]:
                topo.add_link(agg, edge)
            for core_index in range(half):
                core = cores[agg_index * half + core_index]
                topo.add_link(core, agg)
    assign = _client_cycle(clients)
    host_counter = itertools.count(1)
    for pod in range(k):
        for edge in edges[pod]:
            for _ in range(half):
                topo.add_host(f"h{next(host_counter)}", edge, client=next(assign))
    topo.validate()
    return topo


def waxman_topology(
    n_switches: int,
    *,
    seed: int = 0,
    alpha: float = 0.5,
    beta: float = 0.25,
    hosts_per_switch: int = 1,
    clients: Optional[Sequence[str]] = None,
    regions: Sequence[str] = _DEFAULT_REGIONS,
) -> Topology:
    """A random Waxman graph — the classic ISP-like random topology.

    Connectivity is repaired by chaining components, so the result is
    always a single connected network.
    """
    rng = random.Random(seed)
    topo = Topology(f"waxman-{n_switches}-seed{seed}")
    positions = {}
    for i in range(1, n_switches + 1):
        name = f"s{i}"
        x, y = rng.random(), rng.random()
        positions[name] = (x, y)
        region = regions[int(x * len(regions)) % len(regions)]
        topo.add_switch(name, location=GeoLocation(region, latitude=y, longitude=x))
    names = list(topo.switches)
    scale = math.sqrt(2)  # max distance in the unit square
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            ax, ay = positions[a]
            bx, by = positions[b]
            distance = math.hypot(ax - bx, ay - by)
            if rng.random() < alpha * math.exp(-distance / (beta * scale)):
                topo.add_link(a, b, latency=0.0005 + distance * 0.01)
    # Repair connectivity deterministically.
    graph = topo.graph()
    import networkx as nx

    components = [sorted(c) for c in nx.connected_components(graph)]
    components.sort(key=lambda c: c[0])
    for first, second in zip(components, components[1:]):
        topo.add_link(first[0], second[0])
    assign = _client_cycle(clients)
    host_counter = itertools.count(1)
    for name in names:
        for _ in range(hosts_per_switch):
            topo.add_host(f"h{next(host_counter)}", name, client=next(assign))
    topo.validate()
    return topo


def abilene_topology(
    *, clients: Optional[Sequence[str]] = None, hosts_per_pop: int = 1
) -> Topology:
    """The Internet2 Abilene backbone: 11 PoPs, 14 links.

    A classic research topology with real city locations; link latencies
    approximate great-circle propagation delay.  Useful as a realistic
    mid-size network for experiments beyond the synthetic shapes.
    """
    pops = {
        "sea": GeoLocation("us-west", 47.6, -122.3),
        "sun": GeoLocation("us-west", 37.4, -122.0),
        "lax": GeoLocation("us-west", 34.1, -118.2),
        "den": GeoLocation("us-mountain", 39.7, -105.0),
        "kan": GeoLocation("us-central", 39.1, -94.6),
        "hou": GeoLocation("us-central", 29.8, -95.4),
        "chi": GeoLocation("us-central", 41.9, -87.6),
        "ind": GeoLocation("us-central", 39.8, -86.2),
        "atl": GeoLocation("us-east", 33.7, -84.4),
        "was": GeoLocation("us-east", 38.9, -77.0),
        "nyc": GeoLocation("us-east", 40.7, -74.0),
    }
    links = [
        ("sea", "sun", 0.013), ("sea", "den", 0.020), ("sun", "lax", 0.006),
        ("sun", "den", 0.016), ("lax", "hou", 0.022), ("den", "kan", 0.009),
        ("kan", "hou", 0.012), ("kan", "ind", 0.007), ("hou", "atl", 0.011),
        ("chi", "ind", 0.003), ("ind", "atl", 0.008), ("atl", "was", 0.009),
        ("chi", "nyc", 0.011), ("nyc", "was", 0.003),
    ]
    topo = Topology("abilene")
    for name, location in pops.items():
        topo.add_switch(name, location=location)
    assign = _client_cycle(clients)
    host_counter = itertools.count(1)
    for name in pops:
        for _ in range(hosts_per_pop):
            topo.add_host(f"h{next(host_counter)}", name, client=next(assign))
    for a, b, latency in links:
        topo.add_link(a, b, latency=latency, bandwidth_mbps=10_000.0)
    topo.validate()
    return topo


def isp_topology(*, clients: Optional[Sequence[str]] = None) -> Topology:
    """A small multi-jurisdiction ISP backbone for the geo case study (E4).

    Three European regions plus one non-EU transit region ("offshore"),
    mirroring the paper's motivating scenario of traffic diverted through
    an undesired jurisdiction.
    """
    topo = Topology("isp")
    berlin = GeoLocation("de-berlin", 52.5, 13.4)
    frankfurt = GeoLocation("de-frankfurt", 50.1, 8.7)
    amsterdam = GeoLocation("nl-amsterdam", 52.4, 4.9)
    paris = GeoLocation("fr-paris", 48.9, 2.3)
    offshore = GeoLocation("offshore", 0.0, 0.0)

    topo.add_switch("ber", location=berlin)
    topo.add_switch("fra", location=frankfurt)
    topo.add_switch("ams", location=amsterdam)
    topo.add_switch("par", location=paris)
    topo.add_switch("off", location=offshore)

    assign = _client_cycle(clients)
    topo.add_host("h_ber1", "ber", client=next(assign))
    topo.add_host("h_ber2", "ber", client=next(assign))
    topo.add_host("h_fra1", "fra", client=next(assign))
    topo.add_host("h_ams1", "ams", client=next(assign))
    topo.add_host("h_par1", "par", client=next(assign))
    topo.add_host("h_off1", "off", client=next(assign))

    topo.add_link("ber", "fra", latency=0.004)
    topo.add_link("fra", "ams", latency=0.005)
    topo.add_link("ams", "par", latency=0.005)
    topo.add_link("fra", "par", latency=0.006)
    # The offshore transit links are long AND thin — a diversion through
    # them is visible both to geo and to bandwidth (QoS) queries.
    topo.add_link("fra", "off", latency=0.020, bandwidth_mbps=100.0)
    topo.add_link("off", "par", latency=0.020, bandwidth_mbps=100.0)
    topo.validate()
    return topo
