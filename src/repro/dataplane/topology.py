"""Topology description: the provider's wiring plan.

A :class:`Topology` is a declarative description — switches, hosts,
links, geographic locations — from which :class:`repro.dataplane.network.Network`
instantiates the live simulation.  The paper assumes "internal network
ports are known, and follow a well-defined wiring plan" (§III); this
class *is* that wiring plan, and the RVaaS controller receives a copy.

Port numbers are assigned deterministically in declaration order,
starting at 1 on every switch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx

from repro.netlib.addresses import IPv4Address, MacAddress, ip as _ip


@dataclass(frozen=True)
class GeoLocation:
    """A coarse geographic position: jurisdiction plus coordinates."""

    region: str
    latitude: float = 0.0
    longitude: float = 0.0


@dataclass
class SwitchSpec:
    name: str
    dpid: int
    location: Optional[GeoLocation] = None
    next_port: Iterator[int] = field(default_factory=lambda: itertools.count(1))

    def allocate_port(self) -> int:
        return next(self.next_port)


@dataclass(frozen=True)
class HostSpec:
    name: str
    switch: str
    port: int
    mac: MacAddress
    ip: IPv4Address
    location: Optional[GeoLocation] = None
    client: str = ""  # owning client/tenant name ("" = unassigned)


@dataclass(frozen=True)
class LinkSpec:
    switch_a: str
    port_a: int
    switch_b: str
    port_b: int
    latency: float = 0.001
    bandwidth_mbps: float = 1000.0
    location: Optional[GeoLocation] = None


class Topology:
    """Builder and container for the network layout."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.switches: Dict[str, SwitchSpec] = {}
        self.hosts: Dict[str, HostSpec] = {}
        self.links: List[LinkSpec] = []
        self._host_index = itertools.count(1)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_switch(
        self, name: str, location: Optional[GeoLocation] = None
    ) -> SwitchSpec:
        if name in self.switches:
            raise ValueError(f"duplicate switch name: {name}")
        spec = SwitchSpec(name=name, dpid=len(self.switches) + 1, location=location)
        self.switches[name] = spec
        return spec

    def add_host(
        self,
        name: str,
        switch: str,
        *,
        ip: Optional[str | IPv4Address] = None,
        location: Optional[GeoLocation] = None,
        client: str = "",
    ) -> HostSpec:
        if name in self.hosts:
            raise ValueError(f"duplicate host name: {name}")
        if switch not in self.switches:
            raise ValueError(f"unknown switch: {switch}")
        index = next(self._host_index)
        port = self.switches[switch].allocate_port()
        address = _ip(ip) if ip is not None else IPv4Address(
            (10 << 24) | index  # 10.0.x.y, deterministic
        )
        spec = HostSpec(
            name=name,
            switch=switch,
            port=port,
            mac=MacAddress.from_host_index(index),
            ip=address,
            location=location or self.switches[switch].location,
            client=client,
        )
        self.hosts[name] = spec
        return spec

    def add_link(
        self,
        switch_a: str,
        switch_b: str,
        *,
        latency: float = 0.001,
        bandwidth_mbps: float = 1000.0,
        location: Optional[GeoLocation] = None,
    ) -> LinkSpec:
        for name in (switch_a, switch_b):
            if name not in self.switches:
                raise ValueError(f"unknown switch: {name}")
        if switch_a == switch_b:
            raise ValueError("self-links are not allowed")
        spec = LinkSpec(
            switch_a=switch_a,
            port_a=self.switches[switch_a].allocate_port(),
            switch_b=switch_b,
            port_b=self.switches[switch_b].allocate_port(),
            latency=latency,
            bandwidth_mbps=bandwidth_mbps,
            location=location,
        )
        self.links.append(spec)
        return spec

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def graph(self) -> nx.Graph:
        """The switch-level graph (edge attrs: ports, latency)."""
        g = nx.Graph()
        for name in self.switches:
            g.add_node(name)
        for link in self.links:
            g.add_edge(
                link.switch_a,
                link.switch_b,
                port_a=link.port_a,
                port_b=link.port_b,
                latency=link.latency,
            )
        return g

    def hosts_on(self, switch: str) -> tuple[HostSpec, ...]:
        return tuple(h for h in self.hosts.values() if h.switch == switch)

    def host_by_ip(self, address: IPv4Address) -> Optional[HostSpec]:
        for host in self.hosts.values():
            if host.ip == address:
                return host
        return None

    def host_at(self, switch: str, port: int) -> Optional[HostSpec]:
        for host in self.hosts.values():
            if host.switch == switch and host.port == port:
                return host
        return None

    def client_hosts(self, client: str) -> tuple[HostSpec, ...]:
        return tuple(h for h in self.hosts.values() if h.client == client)

    def access_points(self, client: str) -> frozenset[Tuple[str, int]]:
        """The (switch, port) pairs where a client legitimately attaches."""
        return frozenset((h.switch, h.port) for h in self.client_hosts(client))

    def internal_port_map(self) -> Dict[str, frozenset[int]]:
        """Per switch, the ports wired to other switches (the wiring plan)."""
        ports: Dict[str, set[int]] = {name: set() for name in self.switches}
        for link in self.links:
            ports[link.switch_a].add(link.port_a)
            ports[link.switch_b].add(link.port_b)
        return {name: frozenset(values) for name, values in ports.items()}

    def wiring(self) -> Dict[Tuple[str, int], Tuple[str, int]]:
        """Bidirectional (switch, port) -> (switch, port) adjacency."""
        table: Dict[Tuple[str, int], Tuple[str, int]] = {}
        for link in self.links:
            table[(link.switch_a, link.port_a)] = (link.switch_b, link.port_b)
            table[(link.switch_b, link.port_b)] = (link.switch_a, link.port_a)
        return table

    def link_between(self, switch_a: str, switch_b: str) -> Optional[LinkSpec]:
        for link in self.links:
            if {link.switch_a, link.switch_b} == {switch_a, switch_b}:
                return link
        return None

    def validate(self) -> None:
        """Sanity-check the wiring plan (no port reuse across links/hosts)."""
        used: set[Tuple[str, int]] = set()
        for link in self.links:
            for key in ((link.switch_a, link.port_a), (link.switch_b, link.port_b)):
                if key in used:
                    raise ValueError(f"port used twice in wiring plan: {key}")
                used.add(key)
        for host in self.hosts.values():
            key = (host.switch, host.port)
            if key in used:
                raise ValueError(f"port used twice in wiring plan: {key}")
            used.add(key)

    def describe(self) -> str:
        return (
            f"Topology {self.name!r}: {len(self.switches)} switches, "
            f"{len(self.links)} links, {len(self.hosts)} hosts"
        )
