"""Point-to-point links with latency and serialisation delay."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataplane.topology import LinkSpec


@dataclass
class Link:
    """A live link instantiated from a :class:`LinkSpec`.

    Links are trusted and lossless per the threat model (§III: "Links are
    trusted: no physical taps are installed").  The only data-plane
    behaviour they add is delay: propagation latency plus serialisation
    time at the configured bandwidth.
    """

    spec: LinkSpec
    packets_carried: int = 0
    bytes_carried: int = 0
    up: bool = field(default=True)

    def delay_for(self, size_bytes: int) -> float:
        """Total one-way delay for a packet of ``size_bytes``."""
        serialisation = (size_bytes * 8) / (self.spec.bandwidth_mbps * 1e6)
        return self.spec.latency + serialisation

    def account(self, size_bytes: int) -> None:
        self.packets_carried += 1
        self.bytes_carried += size_bytes

    def endpoints(self) -> tuple[tuple[str, int], tuple[str, int]]:
        return (
            (self.spec.switch_a, self.spec.port_a),
            (self.spec.switch_b, self.spec.port_b),
        )

    def other_end(self, switch: str, port: int) -> tuple[str, int]:
        a, b = self.endpoints()
        if (switch, port) == a:
            return b
        if (switch, port) == b:
            return a
        raise ValueError(f"({switch}, {port}) is not an endpoint of this link")
