"""Synthetic AS-level internetworks for federation at scale.

Generates an internet-like provider graph — hundreds of autonomous
systems with power-law customer-cone sizes and valley-free
provider/customer/peer edge labels (Gao-Rexford) — then realises it as
a concrete :class:`~repro.dataplane.topology.Topology` with OpenFlow
forwarding state, so the *same* HSA/atom verification stack that checks
a single provider's data plane can audit inter-domain routing across a
whole federation.

Construction (deterministic per seed):

* ``n_roots`` tier-1 ASes form a full peering mesh; every later AS
  attaches under one or two providers chosen among earlier ASes with
  probability proportional to current customer-cone size (preferential
  attachment — the classic recipe for heavy-tailed cones), plus
  occasional lateral peering links.  Providers always precede their
  customers in creation order, so the provider hierarchy is a DAG.
* Each AS owns a /24 out of ``10.0.0.0/8``, a small switch chain
  (border router first, access switch last), one anchor host, and —
  at a few stub ASes — a host belonging to the federation's client.
* Forwarding state implements valley-free best-route selection per
  destination prefix (customer routes preferred over peer routes over
  provider routes, then path length, then a deterministic name
  tie-break): the border switch holds one rule per destination prefix,
  internal switches a default-up / own-prefix-down pair, the access
  switch per-host delivery rules.  No rewrites — inter-domain handoffs
  stay exactly encodable in every domain's atom universe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dataplane.topology import GeoLocation, Topology
from repro.hsa.transfer import SnapshotRule
from repro.netlib.addresses import IPv4Address, IPv4Network
from repro.openflow.actions import Drop, Output
from repro.openflow.match import Match

#: regions cycle across ASes so federated region queries span several
REGIONS = ("us-east", "eu-west", "ap-south", "sa-east", "af-north")


@dataclass(frozen=True)
class ASNode:
    """One autonomous system: its prefix, switch chain, and hosts."""

    name: str
    index: int
    prefix: IPv4Network
    switches: Tuple[str, ...]  # border first, access last
    hosts: Tuple[str, ...]
    region: str

    @property
    def border(self) -> str:
        return self.switches[0]

    @property
    def access(self) -> str:
        return self.switches[-1]


@dataclass
class ASGraph:
    """A generated AS internetwork: topology plus business relationships."""

    topology: Topology
    nodes: Dict[str, ASNode]
    order: Tuple[str, ...]
    #: (provider, customer) pairs — money flows customer -> provider
    p2c: Tuple[Tuple[str, str], ...]
    #: unordered settlement-free peerings, stored (min, max)
    p2p: Tuple[Tuple[str, str], ...]
    providers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    customers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    peers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    _domain_of_switch: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.providers:
            prov: Dict[str, List[str]] = {n: [] for n in self.order}
            cust: Dict[str, List[str]] = {n: [] for n in self.order}
            peer: Dict[str, List[str]] = {n: [] for n in self.order}
            for p, c in self.p2c:
                prov[c].append(p)
                cust[p].append(c)
            for a, b in self.p2p:
                peer[a].append(b)
                peer[b].append(a)
            self.providers = {n: tuple(sorted(v)) for n, v in prov.items()}
            self.customers = {n: tuple(sorted(v)) for n, v in cust.items()}
            self.peers = {n: tuple(sorted(v)) for n, v in peer.items()}
        if not self._domain_of_switch:
            self._domain_of_switch = {
                switch: node.name
                for node in self.nodes.values()
                for switch in node.switches
            }

    def domain_of_switch(self, switch: str) -> str:
        return self._domain_of_switch[switch]

    def relationships(self):
        """The pure relationship view consumed by the herd-immunity audit."""
        from repro.core.herd import ASRelationships

        return ASRelationships.from_edges(self.order, self.p2c, self.p2p)

    def customer_cone(self, name: str) -> frozenset:
        return self.relationships().customer_cone(name)

    def stubs(self) -> Tuple[str, ...]:
        """ASes with no customers — where client hosts live."""
        return tuple(n for n in self.order if not self.customers[n])


def _weighted_pick(
    rng: random.Random, candidates: List[int], weights: List[int], k: int
) -> List[int]:
    """k distinct indices drawn with probability proportional to weight."""
    chosen: List[int] = []
    pool = list(zip(candidates, weights))
    for _ in range(min(k, len(pool))):
        total = sum(w for _, w in pool)
        shot = rng.uniform(0.0, total)
        acc = 0.0
        for pos, (cand, w) in enumerate(pool):
            acc += w
            if shot <= acc:
                chosen.append(cand)
                pool.pop(pos)
                break
        else:  # float edge: uniform() returned exactly total
            chosen.append(pool.pop()[0])
    return chosen


def as_graph_topology(
    n_domains: int,
    *,
    seed: int = 0,
    n_roots: int = 3,
    switches_per_as: int = 2,
    max_providers: int = 2,
    multihome_prob: float = 0.35,
    peer_prob: float = 0.12,
    client: str = "acme",
    client_sites: int = 4,
) -> ASGraph:
    """Generate a deterministic AS internetwork with forwarding state."""
    if n_domains < 2 or n_roots < 1 or n_roots > n_domains:
        raise ValueError("need n_domains >= 2 and 1 <= n_roots <= n_domains")
    if n_domains > 65534:
        raise ValueError("prefix plan supports at most 65534 ASes")
    if switches_per_as < 1:
        raise ValueError("each AS needs at least one switch")
    rng = random.Random(seed)
    names = [f"as{i:03d}" for i in range(n_domains)]
    index = {n: i for i, n in enumerate(names)}
    providers: Dict[str, List[str]] = {n: [] for n in names}
    p2c: List[Tuple[str, str]] = []
    p2p: List[Tuple[str, str]] = []
    peered: set = set()
    cone = [1] * n_domains  # customer-cone size incl. self

    for i in range(n_roots):
        for j in range(i):
            p2p.append((names[j], names[i]))
            peered.add(frozenset((names[j], names[i])))

    for i in range(n_roots, n_domains):
        k = 2 if (max_providers > 1 and rng.random() < multihome_prob) else 1
        weights = [cone[j] + 1 for j in range(i)]
        for j in _weighted_pick(rng, list(range(i)), weights, k):
            p2c.append((names[j], names[i]))
            providers[names[i]].append(names[j])
            # the new AS joins the cone of every provider-ancestor
            stack, seen = [j], set()
            while stack:
                a = stack.pop()
                if a in seen:
                    continue
                seen.add(a)
                cone[a] += 1
                stack.extend(index[p] for p in providers[names[a]])
        if rng.random() < peer_prob:
            candidates = [
                j
                for j in range(n_roots, i)
                if names[j] not in providers[names[i]]
                and frozenset((names[j], names[i])) not in peered
            ]
            if candidates:
                j = rng.choice(candidates)
                p2p.append((names[j], names[i]))
                peered.add(frozenset((names[j], names[i])))

    # ------------------------------------------------------------------
    # Realise the graph as switches, links, and hosts
    # ------------------------------------------------------------------
    topo = Topology(name=f"asgraph-{n_domains}")
    nodes: Dict[str, ASNode] = {}
    for i, name in enumerate(names):
        region = REGIONS[i % len(REGIONS)]
        location = GeoLocation(
            region=region,
            latitude=round(rng.uniform(-60.0, 60.0), 3),
            longitude=round(rng.uniform(-180.0, 180.0), 3),
        )
        switches = tuple(f"{name}-r{k}" for k in range(switches_per_as))
        for s in switches:
            topo.add_switch(s, location=location)
        for k in range(switches_per_as - 1):
            topo.add_link(
                switches[k], switches[k + 1], latency=0.0002,
                bandwidth_mbps=40000.0,
            )
        prefix_value = (10 << 24) | ((i + 1) << 8)
        prefix = IPv4Network(IPv4Address(prefix_value), 24)
        anchor = f"h-{name}"
        topo.add_host(
            anchor,
            switches[-1],
            ip=IPv4Address(prefix_value | 1),
            location=location,
        )
        nodes[name] = ASNode(
            name=name,
            index=i,
            prefix=prefix,
            switches=switches,
            hosts=(anchor,),
            region=region,
        )

    for provider, customer in p2c:
        topo.add_link(
            nodes[provider].border, nodes[customer].border,
            latency=0.004, bandwidth_mbps=10000.0,
        )
    for a, b in p2p:
        topo.add_link(
            nodes[a].border, nodes[b].border,
            latency=0.002, bandwidth_mbps=20000.0,
        )

    asg = ASGraph(
        topology=topo,
        nodes=nodes,
        order=tuple(names),
        p2c=tuple(p2c),
        p2p=tuple(sorted(tuple(sorted(pair)) for pair in p2p)),
    )

    # Client hosts at a few stub ASes (deterministic sample)
    stubs = list(asg.stubs())
    sites = stubs if len(stubs) <= client_sites else rng.sample(stubs, client_sites)
    for k, site in enumerate(sorted(sites)):
        node = nodes[site]
        host = f"{client}-{k}"
        topo.add_host(
            host,
            node.access,
            ip=IPv4Address(node.prefix.address.value | 2),
            location=topo.switches[node.access].location,
            client=client,
        )
        nodes[site] = ASNode(
            name=node.name,
            index=node.index,
            prefix=node.prefix,
            switches=node.switches,
            hosts=node.hosts + (host,),
            region=node.region,
        )
    asg.nodes = nodes
    topo.validate()
    return asg


# ----------------------------------------------------------------------
# Valley-free route computation (Gao-Rexford preferences)
# ----------------------------------------------------------------------

def valley_free_next_hops(asg: ASGraph, dest: str) -> Dict[str, str]:
    """Best next-hop AS toward ``dest`` for every AS that has a route.

    Three phases mirror BGP export policy: customer routes propagate to
    everyone (walk provider edges up from the destination), peer routes
    one lateral hop from any customer-route holder, provider routes
    flow down customer edges from every routed AS.  Preference order is
    customer > peer > provider, then fewest AS hops, then lowest
    neighbour name — all deterministic.
    """
    next_hop: Dict[str, str] = {}

    # Phase 1 — customer routes: dest's provider-ancestors route down.
    routed = {dest}
    level = [dest]
    while level:
        gained: Dict[str, str] = {}
        for x in sorted(level):
            for p in asg.providers[x]:
                if p in routed:
                    continue
                if p not in gained or x < gained[p]:
                    gained[p] = x
        for p, via in gained.items():
            next_hop[p] = via
            routed.add(p)
        level = sorted(gained)

    customer_routed = frozenset(routed)

    # Phase 2 — peer routes: one settlement-free hop.
    for x in asg.order:
        if x in routed:
            continue
        for y in asg.peers[x]:  # already name-sorted
            if y in customer_routed:
                next_hop[x] = y
                break
    routed |= set(next_hop) | {dest}

    # Phase 3 — provider routes trickle down customer edges.
    level = sorted(routed)
    while level:
        gained = {}
        for p in level:
            for c in asg.customers[p]:
                if c in routed:
                    continue
                if c not in gained or p < gained[c]:
                    gained[c] = p
        for c, via in gained.items():
            next_hop[c] = via
            routed.add(c)
        level = sorted(gained)

    return next_hop


def _border_port(asg: ASGraph, here: str, there: str) -> int:
    """The border-switch port of ``here`` wired to ``there``'s border."""
    link = asg.topology.link_between(asg.nodes[here].border, asg.nodes[there].border)
    if link is None:
        raise ValueError(f"no inter-AS link between {here} and {there}")
    return link.port_a if link.switch_a == asg.nodes[here].border else link.port_b


def build_rules(asg: ASGraph) -> Dict[str, Tuple[SnapshotRule, ...]]:
    """Valley-free forwarding state for every switch in the internetwork.

    Border switches carry one rule per destination prefix (the BGP FIB);
    internal switches carry a default-up rule plus an own-prefix-down
    rule; access switches deliver per host and drop unknown own-prefix
    traffic (rather than bouncing it back up, which would loop).
    """
    topo = asg.topology
    rules: Dict[str, List[SnapshotRule]] = {s: [] for s in topo.switches}
    # "up" points toward the border switch, "down" toward the access one
    up_port: Dict[str, int] = {}
    down_port: Dict[str, int] = {}
    for node in asg.nodes.values():
        for k in range(len(node.switches) - 1):
            link = topo.link_between(node.switches[k], node.switches[k + 1])
            if link.switch_a == node.switches[k]:
                down_port[node.switches[k]] = link.port_a
                up_port[node.switches[k + 1]] = link.port_b
            else:
                down_port[node.switches[k]] = link.port_b
                up_port[node.switches[k + 1]] = link.port_a

    # One valley-free computation per destination prefix, scattered into
    # every border FIB.
    for dest in asg.order:
        hops = valley_free_next_hops(asg, dest)
        prefix = asg.nodes[dest].prefix
        for x, via in hops.items():
            if x == dest:
                continue
            out_port = _border_port(asg, x, via)
            rules[asg.nodes[x].border].append(
                SnapshotRule(
                    table_id=0,
                    priority=100,
                    match=Match(ip_dst=prefix),
                    actions=(Output(out_port),),
                )
            )

    for name in asg.order:
        node = asg.nodes[name]
        prefix = node.prefix
        # Own-prefix handling along the chain.
        for k, switch in enumerate(node.switches):
            if switch != node.access:
                rules[switch].append(
                    SnapshotRule(
                        table_id=0,
                        priority=150,
                        match=Match(ip_dst=prefix),
                        actions=(Output(down_port[switch]),),
                    )
                )
            if k > 0:
                rules[switch].append(
                    SnapshotRule(
                        table_id=0,
                        priority=10,
                        match=Match(),
                        actions=(Output(up_port[switch]),),
                    )
                )
        # Host delivery at the access switch.
        for host_name in node.hosts:
            host = topo.hosts[host_name]
            rules[node.access].append(
                SnapshotRule(
                    table_id=0,
                    priority=200,
                    match=Match(ip_dst=host.ip),
                    actions=(Output(host.port),),
                )
            )
        if len(node.switches) > 1:
            # Unknown own-prefix traffic dies at the access switch
            # instead of bouncing off the default-up rule forever.
            rules[node.access].append(
                SnapshotRule(
                    table_id=0,
                    priority=150,
                    match=Match(ip_dst=prefix),
                    actions=(Drop(),),
                )
            )

    return {s: tuple(r) for s, r in rules.items()}


def build_snapshot(asg: ASGraph, *, version: int = 1):
    """Freeze the whole internetwork into one verifiable snapshot.

    Federation never verifies this directly — each
    :class:`~repro.core.multiprovider.ProviderDomain` restricts it to
    its own switches — but building it once keeps the generator output
    in the same currency as every other verification entry point.
    """
    from repro.core.snapshot import NetworkSnapshot

    topo = asg.topology
    rules = build_rules(asg)
    edge_ports: Dict[str, frozenset] = {s: frozenset() for s in topo.switches}
    for host in topo.hosts.values():
        edge_ports[host.switch] = edge_ports[host.switch] | {host.port}
    internal = topo.internal_port_map()
    switch_ports = {
        s: tuple(sorted(internal[s] | set(edge_ports[s]))) for s in topo.switches
    }
    locations = {
        s: spec.location
        for s, spec in topo.switches.items()
        if spec.location is not None
    }
    link_capacities = {
        frozenset((link.switch_a, link.switch_b)): link.bandwidth_mbps
        for link in topo.links
    }
    return NetworkSnapshot(
        version=version,
        taken_at=0.0,
        rules=rules,
        meters=(),
        wiring=topo.wiring(),
        edge_ports=edge_ports,
        switch_ports=switch_ports,
        locations=locations,
        link_capacities=link_capacities,
    )


def client_registration(asg: ASGraph, client: str = "acme"):
    """A signed-protocol registration for the generator's client hosts."""
    from repro.core.protocol import ClientRegistration, HostRecord
    from repro.crypto.keys import generate_keypair

    rng = random.Random(0xC11E47)
    client_key = generate_keypair(f"client:{client}", rng=rng)
    records = []
    for host in sorted(asg.topology.client_hosts(client), key=lambda h: h.name):
        key = generate_keypair(f"host:{host.name}", rng=rng)
        records.append(
            HostRecord(
                name=host.name,
                ip=host.ip.value,
                switch=host.switch,
                port=host.port,
                public_key=key.public,
            )
        )
    return ClientRegistration(
        name=client, public_key=client_key.public, hosts=tuple(records)
    )


def federation_from_asgraph(
    asg: ASGraph,
    *,
    max_depth: int = 64,
    backend: Optional[str] = None,
    snapshot=None,
):
    """An :class:`RVaaSFederation` of service-less per-AS domains.

    Every domain restricts the same global snapshot and runs its own
    :class:`~repro.core.engine.VerificationEngine` (``backend=None``
    keeps each engine's environment default).  One shared resolver maps
    edge ports back to generator hosts, so endpoint answers carry host
    and client labels without any live controller.
    """
    from repro.core.engine import VerificationEngine
    from repro.core.multiprovider import ProviderDomain, RVaaSFederation
    from repro.core.queries import Endpoint

    if snapshot is None:
        snapshot = build_snapshot(asg)
    by_port = {
        (h.switch, h.port): h for h in asg.topology.hosts.values()
    }

    def resolve(switch: str, port: int) -> Endpoint:
        host = by_port.get((switch, port))
        if host is None:
            return Endpoint(switch=switch, port=port)
        return Endpoint(
            switch=switch, port=port, host=host.name, client=host.client
        )

    domains = []
    for name in asg.order:
        node = asg.nodes[name]
        engine = (
            VerificationEngine(backend=backend) if backend is not None
            else VerificationEngine()
        )
        domains.append(
            ProviderDomain.from_snapshot(
                name,
                frozenset(node.switches),
                snapshot,
                engine=engine,
                resolve_fn=resolve,
            )
        )
    return RVaaSFederation(domains, asg.topology, max_depth=max_depth)
