"""The live network: topology + simulator + switches + hosts, bound together.

:class:`Network` instantiates :class:`~repro.openflow.switch.OpenFlowSwitch`
and :class:`~repro.dataplane.host.Host` objects from a
:class:`~repro.dataplane.topology.Topology`, wires packet forwarding
through :class:`~repro.dataplane.link.Link` delays on the shared
:class:`~repro.dataplane.simulator.Simulator`, and hands out secure
control channels to controllers.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Protocol

from repro.crypto.cipher import SecureChannelKeys
from repro.dataplane.host import Host
from repro.dataplane.link import Link
from repro.dataplane.simulator import Simulator
from repro.dataplane.topology import Topology
from repro.netlib.packet import Packet
from repro.openflow.channel import ControlChannel
from repro.openflow.switch import OpenFlowSwitch

#: Access-link latency between a host NIC and its switch port.
HOST_LINK_LATENCY = 0.0002

#: Default control-channel latency (controller <-> switch).
CONTROL_LATENCY = 0.0005


class ChannelFaultSource(Protocol):
    """Anything that can impair newly opened control channels.

    Implemented by :class:`repro.faults.FaultInjector`; the network only
    needs the attach hook, so later-opened channels (e.g. a replica
    started mid-run) inherit the active fault plan.
    """

    def attach(self, channel: ControlChannel) -> None: ...


class FlowModGateSource(Protocol):
    """Anything that interposes on the FlowMod path of new channels.

    Implemented by :class:`repro.core.gate.PreventiveGate`; mirroring the
    fault-injector pattern, the network attaches the gate to every channel
    opened after installation so late-attaching (and malicious) controllers
    cannot route around it.
    """

    def attach(self, channel: ControlChannel) -> None: ...


class Network:
    """A running emulated network."""

    def __init__(self, topology: Topology, *, seed: int = 0) -> None:
        topology.validate()
        self.topology = topology
        self.sim = Simulator(seed=seed)
        self.switches: Dict[str, OpenFlowSwitch] = {}
        self.hosts: Dict[str, Host] = {}
        self._links: Dict[tuple[str, int], Link] = {}
        self._host_ports: Dict[tuple[str, int], Host] = {}
        self.packets_delivered = 0
        #: every control channel ever opened (controllers and replicas).
        self.channels: List[ControlChannel] = []
        #: set by FaultInjector.install(); impairs future channels too.
        self.fault_injector: Optional[ChannelFaultSource] = None
        #: set by PreventiveGate.install(); gates future channels too.
        self.flowmod_gate: Optional[FlowModGateSource] = None
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        for spec in self.topology.switches.values():
            switch = OpenFlowSwitch(
                spec.name,
                spec.dpid,
                clock=lambda: self.sim.now,
            )
            switch.transmit = self._on_switch_transmit
            self.switches[spec.name] = switch

        for link_spec in self.topology.links:
            link = Link(spec=link_spec)
            self._links[(link_spec.switch_a, link_spec.port_a)] = link
            self._links[(link_spec.switch_b, link_spec.port_b)] = link
            self.switches[link_spec.switch_a].add_port(
                link_spec.port_a, kind="link", peer=link_spec.switch_b
            )
            self.switches[link_spec.switch_b].add_port(
                link_spec.port_b, kind="link", peer=link_spec.switch_a
            )

        for host_spec in self.topology.hosts.values():
            host = Host(host_spec, send_fn=self._on_host_send)
            self.hosts[host_spec.name] = host
            self._host_ports[(host_spec.switch, host_spec.port)] = host
            self.switches[host_spec.switch].add_port(
                host_spec.port, kind="host", peer=host_spec.name
            )

    # ------------------------------------------------------------------
    # Forwarding fabric
    # ------------------------------------------------------------------

    def _on_host_send(self, host: Host, packet: Packet) -> None:
        switch_name, port = host.access_point
        switch = self.switches[switch_name]
        self.sim.schedule(
            HOST_LINK_LATENCY, lambda: switch.receive_packet(packet, port)
        )

    def _on_switch_transmit(
        self, switch: OpenFlowSwitch, out_port: int, packet: Packet
    ) -> None:
        key = (switch.name, out_port)
        link = self._links.get(key)
        if link is not None:
            if not link.up:
                return
            peer_switch, peer_port = link.other_end(switch.name, out_port)
            link.account(packet.size_bytes)
            delay = link.delay_for(packet.size_bytes)
            target = self.switches[peer_switch]
            self.sim.schedule(delay, lambda: target.receive_packet(packet, peer_port))
            return
        host = self._host_ports.get(key)
        if host is not None:
            self.packets_delivered += 1
            self.sim.schedule(HOST_LINK_LATENCY, lambda: host.deliver(packet))
            return
        # Port wired to nothing: packet vanishes (counted by the switch).

    # ------------------------------------------------------------------
    # Control plane attachment
    # ------------------------------------------------------------------

    def open_control_channel(
        self,
        controller_name: str,
        switch_name: str,
        *,
        master_secret: Optional[bytes] = None,
        latency: float = CONTROL_LATENCY,
    ) -> ControlChannel:
        """Create an authenticated encrypted session to one switch.

        The master secret stands for the result of the TLS handshake with
        the pre-provisioned switch certificate (§III).  Each
        (controller, switch) pair gets an independent key.
        """
        if master_secret is None:
            master_secret = hashlib.sha256(
                f"session:{controller_name}:{switch_name}".encode()
            ).digest()
        channel_id = f"{controller_name}<->{switch_name}"
        keys = SecureChannelKeys.derive(channel_id, master_secret)
        channel = ControlChannel(
            controller_name, switch_name, keys, self.sim, latency=latency
        )
        self.switches[switch_name].connect_controller(channel)
        self.channels.append(channel)
        if self.fault_injector is not None:
            self.fault_injector.attach(channel)
        if self.flowmod_gate is not None:
            self.flowmod_gate.attach(channel)
        return channel

    def channels_for_switch(self, switch_name: str) -> List[ControlChannel]:
        """Every control session terminating at ``switch_name``."""
        return [c for c in self.channels if c.switch_end.name == switch_name]

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def switch(self, name: str) -> OpenFlowSwitch:
        return self.switches[name]

    def host_at(self, switch: str, port: int) -> Optional[Host]:
        return self._host_ports.get((switch, port))

    def link_at(self, switch: str, port: int) -> Optional[Link]:
        return self._links.get((switch, port))

    def set_link_state(self, switch_a: str, switch_b: str, up: bool) -> None:
        """Flip a link and emit PortStatus from both attached switches."""
        link_spec = self.topology.link_between(switch_a, switch_b)
        if link_spec is None:
            raise ValueError(f"no link between {switch_a} and {switch_b}")
        link = self._links[(link_spec.switch_a, link_spec.port_a)]
        link.up = up
        status = "up" if up else "down"
        self.switches[link_spec.switch_a].notify_port_status(link_spec.port_a, status)
        self.switches[link_spec.switch_b].notify_port_status(link_spec.port_b, status)

    def run(self, duration: float) -> None:
        self.sim.run(duration)

    def run_until_idle(self, max_time: float = 1e6) -> None:
        self.sim.run_until_idle(max_time=max_time)

    def total_rules(self) -> int:
        return sum(switch.rule_count() for switch in self.switches.values())
