"""End hosts: the clients' machines at the network edge.

Hosts own a tiny UDP stack (send + per-port receive dispatch).  The RVaaS
client agent and auth responder (:mod:`repro.core.client`) attach to a
host by registering UDP port handlers — exactly the "software [clients]
run ... in user space" of paper §IV-A3.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.packet import Packet, udp_packet
from repro.dataplane.topology import GeoLocation, HostSpec

ReceiveHandler = Callable[[Packet], None]


class Host:
    """A host attached to one switch port."""

    def __init__(self, spec: HostSpec, send_fn: Callable[["Host", Packet], None]) -> None:
        self.spec = spec
        self._send_fn = send_fn
        self._handlers: Dict[int, List[ReceiveHandler]] = {}
        self.received: List[Packet] = []
        self.sent_count = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def mac(self) -> MacAddress:
        return self.spec.mac

    @property
    def ip(self) -> IPv4Address:
        return self.spec.ip

    @property
    def location(self) -> Optional[GeoLocation]:
        return self.spec.location

    @property
    def access_point(self) -> tuple[str, int]:
        return (self.spec.switch, self.spec.port)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send_udp(
        self,
        dst_ip: IPv4Address,
        dport: int,
        payload: Any,
        *,
        sport: int = 40000,
        dst_mac: Optional[MacAddress] = None,
        vlan_id: int = 0,
    ) -> Packet:
        """Emit a UDP packet onto the access link.

        ``dst_mac`` defaults to the broadcast-free convention of this
        network model: L2 destination is resolved by the caller or left
        as the gateway-style placeholder (the provider's rules route on
        IP anyway).
        """
        packet = udp_packet(
            eth_src=self.mac,
            eth_dst=dst_mac if dst_mac is not None else MacAddress.from_host_index(0),
            ip_src=self.ip,
            ip_dst=dst_ip,
            sport=sport,
            dport=dport,
            payload=payload,
            vlan_id=vlan_id,
        )
        self.send_packet(packet)
        return packet

    def send_packet(self, packet: Packet) -> None:
        self.sent_count += 1
        self._send_fn(self, packet)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def register_udp_handler(self, dport: int, handler: ReceiveHandler) -> None:
        """Attach a callback for UDP packets addressed to ``dport``."""
        self._handlers.setdefault(dport, []).append(handler)

    def deliver(self, packet: Packet) -> None:
        """Called by the network when a packet reaches this host's port."""
        self.received.append(packet)
        for handler in self._handlers.get(packet.tp_dst, []):
            handler(packet)

    def received_on(self, dport: int) -> list[Packet]:
        return [p for p in self.received if p.tp_dst == dport]
