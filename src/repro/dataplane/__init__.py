"""Deterministic discrete-event network emulator.

This is the reproduction's substitute for physical switches / Mininet: a
seeded, single-threaded event simulator (:mod:`~repro.dataplane.simulator`)
moving packets across latency/bandwidth links between OpenFlow switches
(:mod:`repro.openflow.switch`) and UDP-speaking hosts.  Topology builders
for the standard shapes used in experiments live in
:mod:`~repro.dataplane.topologies`.
"""

from repro.dataplane.asgraph import (
    ASGraph,
    ASNode,
    as_graph_topology,
    build_snapshot,
    client_registration,
    federation_from_asgraph,
    valley_free_next_hops,
)
from repro.dataplane.host import Host
from repro.dataplane.link import Link
from repro.dataplane.network import Network
from repro.dataplane.simulator import Event, Simulator
from repro.dataplane.topology import GeoLocation, HostSpec, LinkSpec, SwitchSpec, Topology
from repro.dataplane.topologies import (
    abilene_topology,
    fat_tree_topology,
    isp_topology,
    linear_topology,
    ring_topology,
    single_switch_topology,
    tree_topology,
    waxman_topology,
)

__all__ = [
    "ASGraph",
    "ASNode",
    "Event",
    "abilene_topology",
    "as_graph_topology",
    "build_snapshot",
    "client_registration",
    "federation_from_asgraph",
    "valley_free_next_hops",
    "GeoLocation",
    "Host",
    "HostSpec",
    "Link",
    "LinkSpec",
    "Network",
    "Simulator",
    "SwitchSpec",
    "Topology",
    "fat_tree_topology",
    "isp_topology",
    "linear_topology",
    "ring_topology",
    "single_switch_topology",
    "tree_topology",
    "waxman_topology",
]
