"""A deterministic discrete-event simulator.

Single-threaded, heap-ordered virtual time.  All nondeterminism in the
whole reproduction flows through :attr:`Simulator.rng`, which is seeded
at construction — identical seeds give bit-identical runs, which the
property tests and the random-polling experiment (E6) rely on.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback; sort key is (time, priority, sequence)."""

    time: float
    priority: int
    sequence: int
    callback: Optional[Callable[[], None]] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True
        self.callback = None


class Simulator:
    """The event loop every component schedules against."""

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self.seed = seed
        self.rng = random.Random(seed)
        self.events_executed = 0

    @property
    def now(self) -> float:
        return self._now

    def derive_rng(self, label: str) -> random.Random:
        """An independent RNG deterministically derived from the seed.

        Used by subsystems (e.g. fault injection) that need their own
        reproducible randomness without perturbing :attr:`rng`'s draw
        sequence — so enabling such a subsystem with all-zero
        probabilities leaves the rest of the run byte-identical.
        """
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def schedule(
        self, delay: float, callback: Callable[[], None], *, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = Event(
            time=self._now + delay,
            priority=priority,
            sequence=next(self._sequence),
            callback=callback,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, when: float, callback: Callable[[], None], *, priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        return self.schedule(max(0.0, when - self._now), callback, priority=priority)

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            callback = event.callback
            event.callback = None
            if callback is not None:
                callback()
            self.events_executed += 1
            return True
        return False

    def run(self, duration: float) -> None:
        """Run events until ``duration`` seconds of virtual time elapse."""
        self.run_until(self._now + duration)

    def run_until(self, deadline: float) -> None:
        """Run all events scheduled strictly up to (and at) ``deadline``."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > deadline:
                break
            self.step()
        self._now = max(self._now, deadline)

    def run_until_idle(self, max_time: float = 1e6) -> None:
        """Drain the queue, bounded by ``max_time`` to catch runaway loops."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > max_time:
                raise RuntimeError(
                    f"simulation exceeded max_time={max_time} "
                    f"(next event at t={head.time})"
                )
            self.step()

    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)
