"""The multi-tenant query scheduler: admission → coalesce → shard → reply.

RVaaS is a *service*: many mutually distrusting clients query one
verification provider.  The controller's synchronous path walks one
request at a time through unseal → snapshot → verify → seal, which
bottlenecks the warm-query wins of the atom matrix on a serial
frontend.  :class:`QueryScheduler` is the serving tier in front of the
:class:`~repro.core.engine.VerificationEngine`:

* **Admission control** — a bounded queue with shed-oldest overflow and
  per-client token-bucket rate limiting.  Refused and shed requests get
  an explicit ``OVERLOADED`` reply carrying the current
  :class:`~repro.core.protocol.FreshnessReport`, never a silent drop:
  under overload the service degrades honestly, exactly as it does
  under lossy control channels.
* **Coalescing** — all queued requests with an identical
  ``(client, query, snapshot content-hash)`` key share one engine call;
  the single answer fans back out through per-request response
  construction (and, in the in-band path, per-client sealing).  A
  bounded answer cache extends coalescing across batch boundaries on an
  unchanged snapshot.
* **Sharded batch execution** — the unique keys of a batch are sorted
  and fanned over a :class:`~repro.hsa.parallel.FanOutPool`; the merge
  is positional over the sorted key list, so any worker count produces
  byte-identical responses in the same order.
* **Stale-but-honest fast path** — when a snapshot is mid-churn (its
  artifacts are not compiled yet) and the queue is under pressure, the
  batch is served from the last *verified* snapshot while the new one
  warms in the background; the reply's freshness report discloses the
  age, so the client sees "isolated, as of 0.8s ago" instead of a
  latency spike.

The scheduler is deliberately transport-agnostic: the controller feeds
it unsealed in-band requests and seals its outcomes, while benchmarks
and the workload driver feed it directly with callbacks.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.protocol import (
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_RATE_LIMITED,
    FreshnessReport,
)
from repro.core.queries import Answer, Query
from repro.core.snapshot import NetworkSnapshot
from repro.hsa.parallel import FanOutPool, env_pool_mode
from repro.serving.clock import MonotonicClock
from repro.serving.metrics import SchedulerMetrics


@dataclass(frozen=True)
class ServingConfig:
    """Tuning knobs for one :class:`QueryScheduler`."""

    #: in-flight bound; a submit beyond it sheds the *oldest* queued
    #: request (freshest-first under overload: a client that waited
    #: longest is the one whose answer is most likely already stale)
    max_queue: int = 4096
    #: requests drained per pump; also the coalescing window size
    batch_size: int = 256
    #: virtual seconds between a submit and the drain that serves it
    #: (in-band mode only; direct mode pumps explicitly)
    drain_interval: float = 0.005
    #: sustained per-client admission rate (requests / second);
    #: ``None`` disables rate limiting
    rate_per_client: Optional[float] = None
    #: token-bucket burst capacity; defaults to one second of rate
    rate_burst: Optional[float] = None
    #: share one answer among identical (client, query, snapshot) keys
    coalesce: bool = True
    #: cross-batch answer reuse (entries; 0 disables the cache)
    answer_cache_entries: int = 8192
    #: fan-out width for unique-key execution within a batch
    shard_workers: int = 1
    #: "thread" | "process" (the compile farm); ``None`` reads
    #: ``RVAAS_POOL_MODE`` so a deployment flips the whole serving tier
    #: with one environment variable.  Process mode needs a picklable
    #: ``answer_fn``; a closure falls back to threads loudly (counted
    #: in ``pool_fallbacks``), never silently.
    pool_mode: Optional[str] = None
    #: serve from the last verified snapshot while a churned one compiles
    stale_serve: bool = True
    #: never serve evidence older than this from the stale fast path
    max_stale_age: float = 30.0
    #: query classes that must never share answers (history-dependent
    #: queries whose result is not a function of the snapshot hash)
    never_coalesce: Tuple[str, ...] = ("ExposureHistoryQuery",)


class TokenBucket:
    """Per-client admission throttle: ``rate`` tokens/s, ``burst`` cap."""

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last_refill = now

    def try_take(self, now: float) -> bool:
        elapsed = max(0.0, now - self.last_refill)
        self.last_refill = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class PendingQuery:
    """One admitted request waiting in the scheduler's queue."""

    client: str
    query: Query
    nonce: int
    submitted_at: float
    on_done: Callable[["PendingQuery", "ServeOutcome"], None]
    #: opaque caller state (the controller stashes the unsealed request
    #: and packet origin here; the workload driver stashes arrival time)
    context: Any = None


@dataclass(frozen=True)
class ServeOutcome:
    """What the scheduler hands back for one request.

    ``status`` is one of the :mod:`repro.core.protocol` status strings;
    ``answer`` is ``None`` exactly when the request was refused
    (overload / rate limit).  ``snapshot`` is the snapshot the answer
    was computed on — the *stale* one on the fast path, which is why the
    freshness report travels with it.
    """

    status: str
    answer: Optional[Answer]
    snapshot: Optional[NetworkSnapshot]
    freshness: Optional[FreshnessReport]
    stale: bool = False
    coalesced: bool = False


class QueryScheduler:
    """Async admission, coalescing, and sharded batch execution."""

    def __init__(
        self,
        *,
        answer_fn: Callable[[str, Query, NetworkSnapshot], Answer],
        snapshot_fn: Callable[[], NetworkSnapshot],
        freshness_fn: Optional[
            Callable[[NetworkSnapshot], FreshnessReport]
        ] = None,
        clock: Optional[Callable[[], float]] = None,
        config: Optional[ServingConfig] = None,
        ready_fn: Optional[Callable[[NetworkSnapshot], bool]] = None,
        warm_fn: Optional[Callable[[NetworkSnapshot], None]] = None,
        schedule_fn: Optional[Callable[[float, Callable[[], None]], Any]] = None,
    ) -> None:
        self.config = config or ServingConfig()
        self._answer_fn = answer_fn
        self._snapshot_fn = snapshot_fn
        self._freshness_fn = freshness_fn
        #: monotonic view of the injected clock: freshness ages, bucket
        #: refills and latency accounting can never run backwards even
        #: if the underlying time source does (ISSUE 7 satellite)
        self.clock = MonotonicClock(clock if clock is not None else _zero_clock)
        self._ready_fn = ready_fn
        self._warm_fn = warm_fn
        self._schedule_fn = schedule_fn
        self.metrics = SchedulerMetrics()
        self._queue: Deque[PendingQuery] = deque()
        self._buckets: Dict[str, TokenBucket] = {}
        self._answer_cache: "OrderedDict[tuple, Answer]" = OrderedDict()
        pool_mode = self.config.pool_mode
        if pool_mode is None:
            pool_mode = env_pool_mode("thread")
        #: the persistent shard-execution pool — one executor for the
        #: scheduler's lifetime, torn down by :meth:`close`
        self._pool = FanOutPool(max(1, self.config.shard_workers), pool_mode)
        self.metrics.pool_mode = pool_mode
        self.metrics.pool_workers = self._pool.workers
        self._drain_scheduled = False
        #: last snapshot this scheduler served from (the stale-path source)
        self._last_snapshot: Optional[NetworkSnapshot] = None
        self._last_content: Optional[str] = None
        #: content hash currently warming in the background, if any
        self._warming: Optional[str] = None
        self._pending_warm: Optional[NetworkSnapshot] = None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def submit(
        self,
        client: str,
        query: Query,
        *,
        nonce: int = 0,
        on_done: Callable[[PendingQuery, ServeOutcome], None],
        context: Any = None,
    ) -> Optional[PendingQuery]:
        """Admit one request; refusals are answered immediately.

        Returns the queued :class:`PendingQuery`, or ``None`` when the
        request was refused (its ``on_done`` has already been called
        with an ``OVERLOADED`` outcome).
        """
        now = self.clock.now()
        pending = PendingQuery(
            client=client,
            query=query,
            nonce=nonce,
            submitted_at=now,
            on_done=on_done,
            context=context,
        )
        if not self._admit_rate(client, now):
            self.metrics.rate_limited += 1
            self._refuse(pending, STATUS_RATE_LIMITED)
            return None
        if len(self._queue) >= self.config.max_queue:
            shed = self._queue.popleft()
            self.metrics.shed += 1
            self._refuse(shed, STATUS_OVERLOADED)
        self._queue.append(pending)
        self.metrics.admitted += 1
        if len(self._queue) > self.metrics.queue_peak:
            self.metrics.queue_peak = len(self._queue)
        self._schedule_drain()
        return pending

    def _admit_rate(self, client: str, now: float) -> bool:
        rate = self.config.rate_per_client
        if rate is None:
            return True
        bucket = self._buckets.get(client)
        if bucket is None:
            burst = self.config.rate_burst
            if burst is None:
                burst = max(1.0, rate)
            bucket = TokenBucket(rate, burst, now)
            self._buckets[client] = bucket
        return bucket.try_take(now)

    def _refuse(self, pending: PendingQuery, status: str) -> None:
        """An explicit refusal, carrying whatever freshness we have."""
        snapshot = self._last_snapshot
        freshness = None
        if snapshot is not None and self._freshness_fn is not None:
            freshness = self._freshness_fn(snapshot)
        self.metrics.overload_responses += 1
        pending.on_done(
            pending,
            ServeOutcome(
                status=status,
                answer=None,
                snapshot=snapshot,
                freshness=freshness,
            ),
        )

    def _schedule_drain(self) -> None:
        if self._schedule_fn is None or self._drain_scheduled:
            return
        self._drain_scheduled = True
        self._schedule_fn(self.config.drain_interval, self._drain)

    def _drain(self) -> None:
        self._drain_scheduled = False
        self.pump()
        if self._queue:
            self._schedule_drain()

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def pump(self) -> int:
        """Serve one batch; returns the number of requests answered."""
        if not self._queue:
            self.idle_work()
            return 0
        batch: List[PendingQuery] = []
        while self._queue and len(batch) < self.config.batch_size:
            batch.append(self._queue.popleft())
        self.metrics.record_batch(len(batch))
        pressure = bool(self._queue) or len(batch) >= self.config.batch_size
        current = self._snapshot_fn()
        snapshot, content, stale = self._serving_snapshot(current, pressure)

        # Group the batch under its coalesce keys, in arrival order.
        groups: "OrderedDict[tuple, List[PendingQuery]]" = OrderedDict()
        singles: List[PendingQuery] = []
        for pending in batch:
            if self._coalescible(pending.query):
                key = (pending.client, _canonical(pending.query), content)
                groups.setdefault(key, []).append(pending)
            else:
                singles.append(pending)

        answers: Dict[tuple, Answer] = {}
        jobs: List[tuple] = []
        for key in groups:
            cached = self._cache_get(key)
            if cached is not None:
                self.metrics.answer_cache_hits += 1
                answers[key] = cached
            else:
                jobs.append(key)
        # Deterministic shard order: sorted keys split into contiguous
        # shards, merged positionally — byte-identical for any worker
        # count.
        jobs.sort(key=_job_sort_key)
        # The context is (answer_fn, snapshot) — not the scheduler — so
        # process-mode shards only need the answer path to pickle, not
        # the pool and queue machinery.
        results = self._pool.map_chunked(
            _run_serving_job, (self._answer_fn, snapshot), jobs
        )
        for key, answer in zip(jobs, results):
            answers[key] = answer
            self._cache_put(key, answer)
        self.metrics.engine_calls += len(jobs)

        freshness = (
            self._freshness_fn(snapshot)
            if self._freshness_fn is not None
            else None
        )
        served = 0
        for key, members in groups.items():
            answer = answers[key]
            if len(members) > 1:
                self.metrics.coalesced += len(members) - 1
            for index, pending in enumerate(members):
                self._deliver(
                    pending,
                    ServeOutcome(
                        status=STATUS_OK,
                        answer=answer,
                        snapshot=snapshot,
                        freshness=freshness,
                        stale=stale,
                        coalesced=index > 0,
                    ),
                )
                served += 1
        for pending in singles:
            answer = self._answer_fn(pending.client, pending.query, snapshot)
            self.metrics.engine_calls += 1
            self._deliver(
                pending,
                ServeOutcome(
                    status=STATUS_OK,
                    answer=answer,
                    snapshot=snapshot,
                    freshness=freshness,
                    stale=stale,
                ),
            )
            served += 1
        if stale:
            self.metrics.stale_served += served
        if not self._queue:
            self.idle_work()
        self._sync_pool_metrics()
        return served

    def flush(self) -> int:
        """Pump until the queue is empty; returns total served."""
        total = 0
        while self._queue:
            total += self.pump()
        return total

    def idle_work(self) -> None:
        """Run deferred maintenance (direct mode's background warm)."""
        if self._pending_warm is not None and self._schedule_fn is None:
            self._run_warm()

    def close(self) -> None:
        """Release the persistent shard pool (idempotent).

        A closed scheduler still serves — :meth:`pump` degrades to the
        inline serial loop — so shutdown ordering cannot lose requests.
        """
        self._pool.close()

    def _sync_pool_metrics(self) -> None:
        """Mirror shard-pool / farm counters into the metrics."""
        m = self.metrics
        m.pool_fallbacks = self._pool.process_fallbacks
        counters = self._pool.farm_counters
        m.farm_batches = counters["batches"]
        m.farm_tasks = counters["tasks"]
        m.farm_bytes_shipped = counters["bytes_shipped"]
        m.farm_parts_shipped = counters["parts_shipped"]
        m.farm_parts_cached = counters["parts_cached"]
        m.farm_worker_restarts = counters["worker_restarts"]
        farm = self._pool._farm
        if farm is not None:
            m.farm_queue_depth_peak = farm.metrics.queue_depth_peak

    def _deliver(self, pending: PendingQuery, outcome: ServeOutcome) -> None:
        self.metrics.served += 1
        pending.on_done(pending, outcome)

    def _coalescible(self, query: Query) -> bool:
        if not self.config.coalesce:
            return False
        return type(query).__name__ not in self.config.never_coalesce

    # ------------------------------------------------------------------
    # Stale-but-honest fast path
    # ------------------------------------------------------------------

    def _serving_snapshot(
        self, current: NetworkSnapshot, pressure: bool
    ) -> Tuple[NetworkSnapshot, str, bool]:
        """Pick the snapshot this batch is served from.

        The fast path engages only when all of: the configuration
        changed since the last served batch, the new snapshot's
        artifacts are not compiled yet (``ready_fn``), the queue is
        under pressure, and the last verified evidence is younger than
        ``max_stale_age``.  Everything else serves fresh (paying the
        compile) and records the snapshot as the new stale-path source.
        """
        content = current.content_hash()
        cfg = self.config
        if (
            cfg.stale_serve
            and pressure
            and self._ready_fn is not None
            and self._last_snapshot is not None
            and self._last_content is not None
            and content != self._last_content
            and not self._ready_fn(current)
        ):
            age = self.clock.now() - self._last_snapshot.taken_at
            if 0.0 <= age <= cfg.max_stale_age:
                self._request_warm(current, content)
                return self._last_snapshot, self._last_content, True
        self._last_snapshot = current
        self._last_content = content
        return current, content, False

    def _request_warm(self, snapshot: NetworkSnapshot, content: str) -> None:
        if self._warm_fn is None or self._warming == content:
            return
        self._warming = content
        self._pending_warm = snapshot
        if self._schedule_fn is not None:
            self._schedule_fn(0.0, self._run_warm)

    def _run_warm(self) -> None:
        snapshot = self._pending_warm
        self._pending_warm = None
        if snapshot is None or self._warm_fn is None:
            self._warming = None
            return
        try:
            self._warm_fn(snapshot)
            self.metrics.warm_compiles += 1
        finally:
            self._warming = None

    # ------------------------------------------------------------------
    # Answer cache (cross-batch coalescing)
    # ------------------------------------------------------------------

    def _cache_get(self, key: tuple) -> Optional[Answer]:
        if self.config.answer_cache_entries <= 0:
            return None
        cached = self._answer_cache.get(key)
        if cached is not None:
            self._answer_cache.move_to_end(key)
        return cached

    def _cache_put(self, key: tuple, answer: Answer) -> None:
        limit = self.config.answer_cache_entries
        if limit <= 0:
            return
        self._answer_cache[key] = answer
        while len(self._answer_cache) > limit:
            self._answer_cache.popitem(last=False)


def _run_serving_job(context: tuple, key: tuple) -> Answer:
    """One shard task: answer a unique (client, query, content) key."""
    answer_fn, snapshot = context
    client, query, _content = key
    return answer_fn(client, query, snapshot)


def _canonical(query: Query) -> Query:
    """The query as the *engine* sees it.

    Authentication is per-request liveness evidence grafted on after
    verification (never by the engine), so two requests differing only
    in ``authenticate`` have byte-identical logical answers and may
    share one engine call.
    """
    if getattr(query, "authenticate", False):
        return dataclasses.replace(query, authenticate=False)
    return query


def _job_sort_key(key: tuple) -> tuple:
    client, query, _content = key
    return (client, type(query).__name__, repr(query))


def _zero_clock() -> float:
    return 0.0
