"""Serving-tier telemetry: admission, coalescing, and batch shape.

:class:`SchedulerMetrics` follows the :class:`~repro.core.engine.EngineMetrics`
conventions — plain integer counters, a ``snapshot_counters()`` deep
copy for before/after accounting in benchmarks, and dict-valued
breakdowns keyed by small strings.  The batch-size histogram uses
power-of-two buckets ("1", "2", "3-4", "5-8", ...) so a glance at
``python -m repro stats`` shows whether the scheduler actually batches
or drains one request at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Sequence


def counters_dict(metrics: object) -> Dict[str, object]:
    """Deep-copy a counters dataclass into a plain dict.

    Shared by :class:`SchedulerMetrics` and
    :class:`~repro.core.gate.GateMetrics`: integer fields are copied by
    value, dict-valued breakdowns are shallow-copied so a "before"
    snapshot is never mutated by later counting.
    """
    counters: Dict[str, object] = {}
    for f in fields(metrics):
        value = getattr(metrics, f.name)
        counters[f.name] = dict(value) if isinstance(value, dict) else value
    return counters


def batch_bucket(size: int) -> str:
    """The histogram bucket label for a batch of ``size`` requests."""
    if size <= 1:
        return "1"
    if size == 2:
        return "2"
    low = 3
    high = 4
    while size > high:
        low = high + 1
        high *= 2
    return f"{low}-{high}"


@dataclass
class SchedulerMetrics:
    """Counters for one :class:`~repro.serving.scheduler.QueryScheduler`."""

    admitted: int = 0  # requests accepted into the queue
    served: int = 0  # requests answered (any status="ok" reply)
    coalesced: int = 0  # requests that shared another request's answer
    shed: int = 0  # oldest-in-queue requests dropped for a newcomer
    rate_limited: int = 0  # requests refused by a client's token bucket
    overload_responses: int = 0  # explicit OVERLOADED replies sent
    stale_served: int = 0  # requests served from the last verified snapshot
    answer_cache_hits: int = 0  # cross-batch coalescing via the answer cache
    engine_calls: int = 0  # unique (client, query, snapshot) computations
    batches: int = 0  # pump() invocations that served at least one request
    max_batch: int = 0
    queue_peak: int = 0
    warm_compiles: int = 0  # background compiles of a mid-churn snapshot
    # Shard-pool / compile-farm telemetry (E24): how batch execution
    # actually ran — thread pool, process farm, or loud fallbacks.
    pool_mode: str = "thread"
    pool_workers: int = 1
    pool_fallbacks: int = 0  # process batches that fell back to threads
    farm_batches: int = 0
    farm_tasks: int = 0
    farm_bytes_shipped: int = 0
    farm_parts_shipped: int = 0
    farm_parts_cached: int = 0
    farm_worker_restarts: int = 0
    farm_queue_depth_peak: int = 0
    #: batch-size histogram, power-of-two buckets -> count
    batch_size_hist: Dict[str, int] = field(default_factory=dict)

    def record_batch(self, size: int) -> None:
        self.batches += 1
        if size > self.max_batch:
            self.max_batch = size
        bucket = batch_bucket(size)
        self.batch_size_hist[bucket] = self.batch_size_hist.get(bucket, 0) + 1

    def snapshot_counters(self) -> Dict[str, object]:
        return counters_dict(self)


def percentile(samples: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100) by nearest-rank on a copy.

    Deterministic and dependency-free; good enough for latency tables.
    Returns 0.0 for an empty sample set.
    """
    if not samples:
        return 0.0
    ordered: List[float] = sorted(samples)
    if p <= 0:
        return ordered[0]
    if p >= 100:
        return ordered[-1]
    rank = max(0, min(len(ordered) - 1, int(round(p / 100.0 * len(ordered) + 0.5)) - 1))
    return ordered[rank]
