"""The multi-tenant serving tier (ISSUE 7).

Async admission, query coalescing, sharded batch execution, and a
closed-loop workload generator on top of the verification engine.
"""

from repro.serving.clock import MonotonicClock, VirtualClock
from repro.serving.metrics import SchedulerMetrics, batch_bucket, percentile
from repro.serving.scheduler import (
    PendingQuery,
    QueryScheduler,
    ServeOutcome,
    ServingConfig,
    TokenBucket,
)
from repro.serving.workload import (
    Arrival,
    DriveResult,
    WorkloadSpec,
    build_catalog,
    drive_scheduler,
    drive_serial,
    generate_arrivals,
    percentile_table,
    scope_wildcard_seeds,
    simulated_client_of,
)

__all__ = [
    "Arrival",
    "DriveResult",
    "MonotonicClock",
    "PendingQuery",
    "QueryScheduler",
    "SchedulerMetrics",
    "ServeOutcome",
    "ServingConfig",
    "TokenBucket",
    "VirtualClock",
    "WorkloadSpec",
    "batch_bucket",
    "build_catalog",
    "drive_scheduler",
    "drive_serial",
    "generate_arrivals",
    "percentile",
    "percentile_table",
    "scope_wildcard_seeds",
    "simulated_client_of",
]
