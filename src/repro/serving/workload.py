"""Closed-loop workload generation for the serving tier (E21).

Builds reproducible multi-tenant query streams — a *population* of
simulated clients mapped onto the deployment's registered tenants, a
catalog of distinct ``(client, query)`` pairs, Poisson arrivals, and a
zipfian popularity law over the catalog — and drives them through
either the serial frontend or a :class:`~repro.serving.scheduler.QueryScheduler`
while measuring throughput and latency percentiles.

The duplicate rate is constructed, not emergent: a stream of ``n``
requests contains exactly ``round(n * duplicate_fraction)`` repeats of
earlier requests, with the repeat mass distributed zipf(``zipf_s``)
across the catalog (a few very hot pairs, a long cold tail).  That
makes "≥5× at a 50% duplicate workload" a statement about a precisely
known workload shape.

Latency methodology: the driver advances a
:class:`~repro.serving.clock.VirtualClock` by the *measured wall-clock
cost* of each service step, and admits arrivals at their virtual
arrival times.  Latency is (virtual completion − virtual arrival) — a
closed-loop hybrid simulation in which queueing delay is real but the
arrival process is reproducible.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.protocol import STATUS_OK, ClientRegistration
from repro.core.queries import (
    BandwidthQuery,
    FairnessQuery,
    GeoLocationQuery,
    IsolationQuery,
    PathLengthQuery,
    Query,
    ReachableDestinationsQuery,
    ReachingSourcesQuery,
    TrafficScope,
    TransferFunctionQuery,
    WaypointAvoidanceQuery,
)
from repro.serving.clock import VirtualClock
from repro.serving.metrics import percentile
from repro.serving.scheduler import QueryScheduler


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one synthetic multi-tenant workload."""

    requests: int = 600
    #: simulated end-user population; each request is attributed to one
    #: simulated client, which maps onto a registered tenant
    population: int = 10_000
    #: fraction of requests that repeat an earlier (client, query) pair
    duplicate_fraction: float = 0.5
    #: zipf exponent for the popularity of repeated pairs
    zipf_s: float = 1.1
    #: mean arrival rate, requests per (virtual) second
    arrival_rate: float = 4000.0
    #: distinct TrafficScope tp_dst values the catalog draws from;
    #: kept modest so seeding them cannot overflow the atom universe
    #: (more tenants, not more scopes, is how the catalog scales)
    scope_pool: int = 16
    seed: int = 0


@dataclass(frozen=True)
class Arrival:
    """One request in the generated stream."""

    at: float
    client: str
    query: Query
    #: index of the (client, query) pair in the catalog (telemetry)
    key_id: int


@dataclass
class DriveResult:
    """What one driven run measured."""

    label: str
    completed: int = 0
    refused: int = 0
    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Completed requests per wall-clock second of service work."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    def latency_percentiles(self) -> Dict[str, float]:
        return {
            "p50": percentile(self.latencies, 50),
            "p99": percentile(self.latencies, 99),
            "p999": percentile(self.latencies, 99.9),
        }


# ----------------------------------------------------------------------
# Catalog and arrival-stream construction
# ----------------------------------------------------------------------


def scope_wildcard_seeds(spec: WorkloadSpec):
    """The tp_dst scope constants this workload's queries are built from.

    Seeding them into the engine's atom universe
    (:meth:`~repro.core.engine.VerificationEngine.seed_atoms`) lets the
    matrix serve scoped queries exactly instead of falling back to
    wildcard propagation — the serving tier registers popular scope
    constants the same way the verifier registers host addresses.
    """
    from repro.hsa.wildcard import Wildcard

    return [
        Wildcard.from_fields(tp_dst=_scope_port(i))
        for i in range(spec.scope_pool)
    ]


def _scope_port(i: int) -> int:
    return 20000 + i


def build_catalog(
    registrations: Dict[str, ClientRegistration],
    spec: WorkloadSpec,
    *,
    unique_pairs: int,
) -> List[Tuple[str, Query]]:
    """``unique_pairs`` distinct (client, query) pairs, deterministically.

    The variant space crosses registered tenants, query classes,
    per-host parameters and a pool of traffic scopes; pairs are drawn
    without replacement in a seeded shuffle so the same spec always
    yields the same catalog.

    The class mix models a monitoring-heavy tenant: the bulk of the
    catalog is tenant-level invariant checks (isolation, reachability,
    geo, waypoint — all matrix-servable lookups on the atom backend),
    while per-host diagnostics and the propagation-heavy audit classes
    (path length, bandwidth, transfer function) appear once per tenant
    rather than once per scope, the cadence a real operator runs them at.
    """
    rng = random.Random(spec.seed ^ 0xCA7A)
    scopes = [TrafficScope()] + [
        TrafficScope(tp_dst=_scope_port(i)) for i in range(spec.scope_pool)
    ]
    variants: List[Tuple[str, Query]] = []
    for name in sorted(registrations):
        registration = registrations[name]
        hosts = [h.name for h in registration.hosts]
        for scope in scopes:
            variants.append((name, IsolationQuery(scope=scope)))
            variants.append(
                (name, IsolationQuery(scope=scope, authenticate=False))
            )
            variants.append(
                (name, ReachableDestinationsQuery(scope=scope))
            )
            variants.append(
                (
                    name,
                    ReachableDestinationsQuery(scope=scope, authenticate=False),
                )
            )
            variants.append((name, GeoLocationQuery(scope=scope)))
            # One avoidance policy per region of interest: distinct
            # queries, but all derived from the same geo rows.
            for region in (
                ("offshore",),
                ("apac",),
                ("us-east", "us-west"),
                ("eu-central", "eu-west"),
            ):
                variants.append(
                    (
                        name,
                        WaypointAvoidanceQuery(
                            scope=scope, forbidden_regions=region
                        ),
                    )
                )
            variants.append((name, ReachingSourcesQuery(scope=scope)))
            for host in hosts[:2]:
                variants.append(
                    (
                        name,
                        ReachingSourcesQuery(scope=scope, destination_host=host),
                    )
                )
        # Audit-class queries: once per tenant, unscoped.
        for host in hosts:
            variants.append((name, PathLengthQuery(destination_host=host)))
        variants.append((name, FairnessQuery()))
        variants.append((name, BandwidthQuery(minimum_mbps=500)))
        variants.append((name, TransferFunctionQuery()))
    rng.shuffle(variants)
    if unique_pairs > len(variants):
        raise ValueError(
            f"catalog supports at most {len(variants)} unique pairs, "
            f"{unique_pairs} requested (grow scope_pool)"
        )
    return variants[:unique_pairs]


def generate_arrivals(
    registrations: Dict[str, ClientRegistration], spec: WorkloadSpec
) -> List[Arrival]:
    """The full request stream: Poisson arrivals over a zipfian catalog."""
    rng = random.Random(spec.seed ^ 0xA221)
    n = spec.requests
    duplicates = int(round(n * spec.duplicate_fraction))
    unique = max(1, n - duplicates)
    catalog = build_catalog(registrations, spec, unique_pairs=unique)
    # One occurrence of every catalog pair, plus the duplicate mass
    # distributed zipf across the catalog.
    key_ids = list(range(unique))
    if duplicates:
        weights = [1.0 / (rank + 1) ** spec.zipf_s for rank in range(unique)]
        key_ids.extend(rng.choices(range(unique), weights=weights, k=duplicates))
    rng.shuffle(key_ids)
    arrivals: List[Arrival] = []
    at = 0.0
    for key_id in key_ids:
        at += rng.expovariate(spec.arrival_rate)
        client, query = catalog[key_id]
        arrivals.append(Arrival(at=at, client=client, query=query, key_id=key_id))
    return arrivals


def simulated_client_of(arrival: Arrival, spec: WorkloadSpec) -> int:
    """Which of the ``population`` simulated clients issued this arrival.

    Deterministic hash of the catalog key: the same (client, query)
    pair always belongs to the same simulated end user, so per-client
    rate limits and attribution are stable across runs.
    """
    return hash((arrival.client, arrival.key_id)) % max(1, spec.population)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------


def drive_serial(
    answer_fn: Callable[[str, Query], object],
    arrivals: Sequence[Arrival],
    *,
    label: str = "serial",
) -> DriveResult:
    """The baseline: one synchronous engine walk per request."""
    result = DriveResult(label=label)
    clock = VirtualClock()
    for arrival in arrivals:
        clock.advance_to(arrival.at)
        t0 = time.perf_counter()
        answer_fn(arrival.client, arrival.query)
        dt = time.perf_counter() - t0
        clock.advance(dt)
        result.wall_seconds += dt
        result.completed += 1
        result.latencies.append(clock.now() - arrival.at)
    result.virtual_seconds = clock.now()
    return result


def drive_scheduler(
    scheduler: QueryScheduler,
    clock: VirtualClock,
    arrivals: Sequence[Arrival],
    *,
    label: str = "serving",
    sink: Optional[Dict[int, object]] = None,
) -> DriveResult:
    """Closed-loop drive: admit due arrivals, pump, advance virtual time.

    ``clock`` must be the same :class:`VirtualClock` the scheduler was
    constructed over, so token buckets and freshness ages see the
    driver's time.  Arrival times are relative to the clock's position
    at entry, so consecutive streams against one scheduler (a service
    lifetime) measure honest latencies rather than a stale-clock offset.
    """
    result = DriveResult(label=label)
    start = clock.now()

    def on_done(pending, outcome) -> None:
        if sink is not None:
            # Keyed by stream index (the submit nonce): lets callers
            # compare exactly what was served — including coalesced and
            # cache-served responses — against a reference run.
            sink[pending.nonce] = outcome
        if outcome.status == STATUS_OK:
            result.completed += 1
            result.latencies.append(clock.now() - pending.context)
        else:
            result.refused += 1

    drain = scheduler.config.drain_interval
    index = 0
    n = len(arrivals)
    while index < n or scheduler.backlog:
        if not scheduler.backlog and index < n:
            clock.advance_to(start + arrivals[index].at)
        # Batch window: the drain interval opens when the first request
        # of the batch is waiting, and everything arriving before it
        # closes joins the same pump — the admission/batching trade the
        # scheduler is configured for (throughput bought with a bounded
        # wait, which the measured latencies include).
        deadline = clock.now() + drain
        while index < n and start + arrivals[index].at <= deadline:
            arrival = arrivals[index]
            scheduler.submit(
                arrival.client,
                arrival.query,
                nonce=index,
                on_done=on_done,
                context=start + arrival.at,
            )
            index += 1
        if drain:
            clock.advance_to(deadline)
        t0 = time.perf_counter()
        scheduler.pump()
        dt = time.perf_counter() - t0
        clock.advance(dt)
        result.wall_seconds += dt
    result.virtual_seconds = clock.now()
    return result


def percentile_table(results: Sequence[DriveResult]) -> List[List[object]]:
    """Rows for an aligned table: label, served, throughput, p50/p99/p999."""
    rows: List[List[object]] = []
    for result in results:
        pcts = result.latency_percentiles()
        rows.append(
            [
                result.label,
                result.completed,
                result.refused,
                f"{result.throughput:,.0f}",
                f"{pcts['p50'] * 1e3:.2f}",
                f"{pcts['p99'] * 1e3:.2f}",
                f"{pcts['p999'] * 1e3:.2f}",
            ]
        )
    return rows
