"""Clock sources for the serving tier.

Freshness disclosure (:class:`~repro.core.protocol.FreshnessReport`)
subtracts timestamps, and the serving tier runs under three different
time regimes — live simulator time, replayed/simulated time in the
workload driver, and wall-clock benchmarks.  A subtraction across
regimes (or across a simulator rewind in a replayed scenario) must never
produce a *negative* age: a reply claiming evidence from the future is
dishonest in the one place RVaaS promises honesty.

:class:`MonotonicClock` wraps any base clock and clamps it to be
non-decreasing; :class:`VirtualClock` is the manually-advanced clock the
closed-loop workload driver uses to couple measured wall-clock service
times to virtual arrival times.
"""

from __future__ import annotations

from typing import Callable


class MonotonicClock:
    """A never-decreasing view of a base clock.

    Reads pass through while the base clock moves forward; if the base
    clock ever steps backwards (scenario replay, a simulator swapped
    under a long-lived service, coarse timer granularity), reads hold at
    the high-water mark instead of going back in time.  ``regressions``
    counts how often the clamp engaged, for telemetry.
    """

    def __init__(self, base: Callable[[], float]) -> None:
        self._base = base
        self._high_water = float("-inf")
        self.regressions = 0

    def now(self) -> float:
        reading = self._base()
        if reading < self._high_water:
            self.regressions += 1
            return self._high_water
        self._high_water = reading
        return reading

    def __call__(self) -> float:
        return self.now()


class VirtualClock:
    """A manually-advanced clock for closed-loop workload driving.

    The workload driver interleaves request admission (at virtual
    arrival times) with batch service (advancing by the *measured*
    wall-clock cost of each pump), which turns wall-clock service times
    into honest virtual-time latency percentiles.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        return self._now

    def __call__(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"negative advance: {dt}")
        self._now += dt
        return self._now

    def advance_to(self, when: float) -> float:
        """Jump forward to ``when`` (never backwards)."""
        self._now = max(self._now, when)
        return self._now
