"""Number theory helpers for the textbook RSA implementation.

Deterministic given a seed: key generation draws candidate primes from a
``random.Random`` instance supplied by the caller, so the whole
simulation (including all key material) is reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

# Small primes used to cheaply reject composite candidates before
# running Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
)

# Deterministic Miller-Rabin witness sets: these bases are proven
# sufficient for all n below the stated bounds, so primality testing is
# exact (no probabilistic failure) for every modulus size we generate.
_MR_BASES_3_317_044_064_679_887_385_961_981 = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37,
)


def is_probable_prime(n: int) -> bool:
    """Miller-Rabin primality test, deterministic for n < 3.3e24."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_BASES_3_317_044_064_679_887_385_961_981:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Draw a random prime with exactly ``bits`` bits from ``rng``."""
    if bits < 8:
        raise ValueError("prime size too small")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate):
            return candidate


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m`` via extended Euclid."""
    g, x = _extended_gcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m}")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple[int, int]:
    """Return (gcd, x) such that a*x ≡ gcd (mod b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    return old_r, old_s


def int_to_bytes(n: int, length: Optional[int] = None) -> bytes:
    """Big-endian byte encoding of a non-negative integer."""
    if n < 0:
        raise ValueError("cannot encode negative integer")
    if length is None:
        length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")
