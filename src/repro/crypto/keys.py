"""Textbook RSA key pairs (simulation-grade, deterministic).

.. warning::
   This is *not* production cryptography — no padding (raw RSA on a
   hash), small default modulus for speed, deterministic keygen from a
   seed.  Inside the simulation it provides the genuine *properties* the
   RVaaS protocol relies on (only the private-key holder can sign /
   decrypt), which is what the reproduction needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.numbers import generate_prime, modinv

DEFAULT_MODULUS_BITS = 512
_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)``; distributed to clients and switches."""

    n: int
    e: int

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> str:
        """Short stable identifier used in logs and attestation reports."""
        import hashlib

        digest = hashlib.sha256(f"{self.n}:{self.e}".encode()).hexdigest()
        return digest[:16]


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key ``(n, d)``; held only by its owner."""

    n: int
    d: int

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8


@dataclass(frozen=True)
class KeyPair:
    """A public/private key pair bound to an owner name."""

    owner: str
    public: PublicKey
    private: PrivateKey


def generate_keypair(
    owner: str,
    *,
    rng: random.Random,
    bits: int = DEFAULT_MODULUS_BITS,
) -> KeyPair:
    """Generate an RSA key pair deterministically from ``rng``.

    ``bits`` is the modulus size; 512 is cryptographically weak but keeps
    simulated protocol runs fast while still flowing real key material
    through every protocol message.
    """
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        d = modinv(_PUBLIC_EXPONENT, phi)
        return KeyPair(
            owner=owner,
            public=PublicKey(n=n, e=_PUBLIC_EXPONENT),
            private=PrivateKey(n=n, d=d),
        )
