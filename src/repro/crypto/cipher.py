"""Confidentiality and channel authentication primitives.

Two building blocks:

* :func:`hybrid_encrypt` / :func:`hybrid_decrypt` — public-key hybrid
  encryption (RSA-wrapped session key + SHA-256 counter-mode keystream).
  Clients use this to keep their queries confidential from the provider
  (paper §III: "the provider should not learn about their queries").

* :class:`SecureChannelKeys` — per-channel symmetric keys providing the
  authenticated, encrypted OpenFlow sessions between RVaaS and switches
  (paper §III: "Switch to RVaaS controller sessions are secured").

.. warning:: Simulation-grade cryptography; see :mod:`repro.crypto`.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import random
from dataclasses import dataclass

from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.numbers import bytes_to_int, int_to_bytes

_SESSION_KEY_BYTES = 32


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 in counter mode: KS_i = H(key || nonce || i)."""
    blocks = []
    for counter in range((length + 31) // 32):
        blocks.append(
            hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        )
    return b"".join(blocks)[:length]


def keystream_encrypt(key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
    """XOR ``plaintext`` with the (key, nonce) keystream."""
    stream = _keystream(key, nonce, len(plaintext))
    return bytes(p ^ s for p, s in zip(plaintext, stream))


# XOR is an involution.
keystream_decrypt = keystream_encrypt


@dataclass(frozen=True)
class HybridCiphertext:
    """RSA-wrapped session key plus keystream-encrypted body."""

    wrapped_key: int
    nonce: bytes
    body: bytes


def hybrid_encrypt(
    plaintext: bytes, recipient: PublicKey, rng: random.Random
) -> HybridCiphertext:
    """Encrypt ``plaintext`` so only the holder of ``recipient``'s private key reads it."""
    session_key = rng.getrandbits(_SESSION_KEY_BYTES * 8).to_bytes(
        _SESSION_KEY_BYTES, "big"
    )
    nonce = rng.getrandbits(96).to_bytes(12, "big")
    wrapped = pow(bytes_to_int(session_key), recipient.e, recipient.n)
    body = keystream_encrypt(session_key, nonce, plaintext)
    return HybridCiphertext(wrapped_key=wrapped, nonce=nonce, body=body)


def hybrid_decrypt(ciphertext: HybridCiphertext, key: PrivateKey) -> bytes:
    """Inverse of :func:`hybrid_encrypt`.

    With the wrong private key the unwrapped value is garbage (possibly
    wider than the session key); the low bytes are used so decryption
    yields garbage rather than crashing, as a real cipher would.
    """
    session_int = pow(ciphertext.wrapped_key, key.d, key.n)
    session_key = int_to_bytes(
        session_int % (1 << (_SESSION_KEY_BYTES * 8)), _SESSION_KEY_BYTES
    )
    return keystream_decrypt(session_key, ciphertext.nonce, ciphertext.body)


def hmac_tag(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 authentication tag."""
    return _hmac.new(key, message, hashlib.sha256).digest()


def hmac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time verification of an HMAC tag."""
    return _hmac.compare_digest(hmac_tag(key, message), tag)


@dataclass(frozen=True)
class SecureChannelKeys:
    """Symmetric key material for one controller<->switch session.

    Modelled after a completed TLS handshake: the switch authenticated
    the controller's certificate (and vice versa), and both ends derived
    ``auth_key`` and ``enc_key``.  The handshake itself is abstracted —
    what matters to the threat model is that the adversary can neither
    read nor forge channel traffic, which these keys enforce at the
    channel layer (:mod:`repro.openflow.channel`).
    """

    channel_id: str
    auth_key: bytes
    enc_key: bytes

    @classmethod
    def derive(cls, channel_id: str, master_secret: bytes) -> "SecureChannelKeys":
        """Derive the per-channel keys from a master secret (HKDF-like)."""
        auth = hashlib.sha256(master_secret + channel_id.encode() + b"auth").digest()
        enc = hashlib.sha256(master_secret + channel_id.encode() + b"enc").digest()
        return cls(channel_id=channel_id, auth_key=auth, enc_key=enc)

    def protect(self, message: bytes, sequence: int) -> tuple[bytes, bytes]:
        """Encrypt-then-MAC one channel record."""
        nonce = sequence.to_bytes(12, "big")
        ciphertext = keystream_encrypt(self.enc_key, nonce, message)
        tag = hmac_tag(self.auth_key, nonce + ciphertext)
        return ciphertext, tag

    def unprotect(self, ciphertext: bytes, tag: bytes, sequence: int) -> bytes:
        """Verify-then-decrypt one channel record; raises on tamper."""
        nonce = sequence.to_bytes(12, "big")
        if not hmac_verify(self.auth_key, nonce + ciphertext, tag):
            raise ValueError(f"channel {self.channel_id}: record authentication failed")
        return keystream_decrypt(self.enc_key, nonce, ciphertext)
