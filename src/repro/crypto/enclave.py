"""SGX-style enclave attestation model.

The paper (§I-B, §IV-A) proposes running the RVaaS application on secure
hardware such as Intel SGX, so that (a) clients can verify they are
talking to the genuine RVaaS code and (b) the provider can verify the
server is not a fake that would leak infrastructure secrets.

We model the trust flow of SGX remote attestation:

* an :class:`Enclave` is loaded with application code; loading computes a
  :class:`Measurement` (hash of the code identity);
* the (simulated) CPU holds an attestation key whose public half is known
  to the :class:`AttestationVerifier` (standing in for Intel's
  attestation service);
* :meth:`Enclave.quote` binds the measurement and user data (e.g. the
  RVaaS public key) under the attestation key;
* both clients and the provider verify quotes against the measurement
  they expect.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.crypto.keys import KeyPair, PublicKey, generate_keypair
from repro.crypto.sign import sign, verify


class AttestationError(Exception):
    """Raised when a quote fails verification."""


@dataclass(frozen=True)
class Measurement:
    """The identity hash (MRENCLAVE analogue) of enclave code."""

    digest: str

    @classmethod
    def of_code(cls, code_identity: str) -> "Measurement":
        """Measure a code identity string (stands in for hashing the binary)."""
        return cls(hashlib.sha256(code_identity.encode()).hexdigest())


@dataclass(frozen=True)
class Quote:
    """A signed attestation statement: measurement + report data."""

    measurement: Measurement
    report_data: str
    signature: int

    def statement(self) -> str:
        return f"{self.measurement.digest}|{self.report_data}"


class Enclave:
    """A loaded enclave: measured code plus a quoting facility.

    ``code_identity`` should uniquely name the application version, e.g.
    ``"rvaas-core-1.0.0"``.  Calling the enclave (:meth:`run`) executes
    the protected function; only code loaded into the enclave can produce
    quotes over its own measurement.
    """

    def __init__(self, code_identity: str, attestation_key: KeyPair) -> None:
        self.code_identity = code_identity
        self.measurement = Measurement.of_code(code_identity)
        self._attestation_key = attestation_key

    def quote(self, report_data: str) -> Quote:
        """Produce a quote binding ``report_data`` to this enclave's measurement.

        RVaaS puts its public-key fingerprint in ``report_data`` so that a
        verified quote also authenticates the service key.
        """
        statement = f"{self.measurement.digest}|{report_data}"
        return Quote(
            measurement=self.measurement,
            report_data=report_data,
            signature=sign(statement, self._attestation_key.private),
        )

    def run(self, func: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Execute ``func`` inside the enclave boundary (trust marker only)."""
        return func(*args, **kwargs)


class AttestationVerifier:
    """Verifies quotes; stands in for the hardware vendor's attestation service."""

    def __init__(self, attestation_public_key: PublicKey) -> None:
        self._public = attestation_public_key

    def verify_quote(self, quote: Quote, expected: Measurement) -> None:
        """Raise :class:`AttestationError` unless ``quote`` is genuine and matches."""
        if quote.measurement != expected:
            raise AttestationError(
                "measurement mismatch: enclave runs "
                f"{quote.measurement.digest[:12]}…, expected {expected.digest[:12]}…"
            )
        if not verify(quote.statement(), quote.signature, self._public):
            raise AttestationError("quote signature invalid (fake enclave?)")


def make_attestation_root(rng: random.Random) -> tuple[KeyPair, AttestationVerifier]:
    """Create the platform attestation key and its verifier."""
    keypair = generate_keypair("attestation-root", rng=rng)
    return keypair, AttestationVerifier(keypair.public)
