"""Hash-then-RSA signatures for RVaaS protocol messages.

Used for: RVaaS-signed integrity replies, host-signed auth replies, and
enclave-signed attestation quotes.  Payloads are canonicalised with
:func:`canonical_bytes` so that signing a protocol dataclass and
verifying its transmitted copy always agree.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.numbers import bytes_to_int


class SignatureError(Exception):
    """Raised when a signature fails verification."""


def canonical_bytes(message: Any) -> bytes:
    """Stable byte serialisation of a message for hashing.

    Accepts bytes directly; everything else goes through ``repr`` of a
    recursively-sorted structure, which is stable for the dataclasses,
    tuples, frozensets and primitives used in :mod:`repro.core.protocol`.
    """
    if isinstance(message, bytes):
        return message
    if isinstance(message, str):
        return message.encode()
    return _canonical_repr(message).encode()


def _canonical_repr(obj: Any) -> str:
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        inner = ",".join(f"{_canonical_repr(k)}:{_canonical_repr(v)}" for k, v in items)
        return "{" + inner + "}"
    if isinstance(obj, (set, frozenset)):
        inner = ",".join(sorted(_canonical_repr(item) for item in obj))
        return "{" + inner + "}"
    if isinstance(obj, (list, tuple)):
        inner = ",".join(_canonical_repr(item) for item in obj)
        return "[" + inner + "]"
    if hasattr(obj, "__dataclass_fields__"):
        fields = sorted(obj.__dataclass_fields__)
        inner = ",".join(f"{name}={_canonical_repr(getattr(obj, name))}" for name in fields)
        return f"{type(obj).__name__}({inner})"
    return repr(obj)


def _digest_int(message: Any, n: int) -> int:
    digest = hashlib.sha256(canonical_bytes(message)).digest()
    return bytes_to_int(digest) % n


def sign(message: Any, key: PrivateKey) -> int:
    """Sign ``message`` (any canonicalisable object) with ``key``."""
    return pow(_digest_int(message, key.n), key.d, key.n)


def verify(message: Any, signature: int, key: PublicKey) -> bool:
    """Return True iff ``signature`` is valid for ``message`` under ``key``."""
    if not 0 <= signature < key.n:
        return False
    return pow(signature, key.e, key.n) == _digest_int(message, key.n)


def require_valid(message: Any, signature: int, key: PublicKey, what: str = "message") -> None:
    """Verify or raise :class:`SignatureError` — used on trust boundaries."""
    if not verify(message, signature, key):
        raise SignatureError(f"invalid signature on {what}")
