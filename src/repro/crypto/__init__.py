"""Self-contained, dependency-free crypto substrate.

The RVaaS architecture needs four cryptographic capabilities:

1. *Authenticated encrypted OpenFlow sessions* between RVaaS and every
   switch (paper §III) — provided by :class:`~repro.crypto.cipher.SecureChannelKeys`
   (HMAC-SHA256 authentication + keystream confidentiality).
2. *Client query confidentiality*: clients encrypt queries to the RVaaS
   public key (§IV-A3) — :func:`~repro.crypto.cipher.hybrid_encrypt`.
3. *Authenticated responses*: RVaaS signs integrity replies and hosts
   sign auth replies — :mod:`repro.crypto.sign`.
4. *Attestation* that the genuine RVaaS application runs on the secure
   server (§IV-A) — :mod:`repro.crypto.enclave`, an SGX-style
   measurement/quote model.

Everything here is textbook-grade and deterministic (seedable), which is
exactly what a reproducible simulation needs; it is **not** production
cryptography and says so loudly in each module.
"""

from repro.crypto.cipher import (
    SecureChannelKeys,
    hybrid_decrypt,
    hybrid_encrypt,
    hmac_tag,
    hmac_verify,
    keystream_decrypt,
    keystream_encrypt,
)
from repro.crypto.enclave import (
    AttestationError,
    AttestationVerifier,
    Enclave,
    Measurement,
    Quote,
)
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, generate_keypair
from repro.crypto.sign import SignatureError, sign, verify

__all__ = [
    "AttestationError",
    "AttestationVerifier",
    "Enclave",
    "KeyPair",
    "Measurement",
    "PrivateKey",
    "PublicKey",
    "Quote",
    "SecureChannelKeys",
    "SignatureError",
    "generate_keypair",
    "hmac_tag",
    "hmac_verify",
    "hybrid_decrypt",
    "hybrid_encrypt",
    "keystream_decrypt",
    "keystream_encrypt",
    "sign",
    "verify",
]
