"""Controller framework and the provider's control plane.

:class:`~repro.controlplane.controller.ControllerApp` is a Ryu/POX-style
event-dispatching base class used by both the provider's controller and
the RVaaS controller.  :class:`~repro.controlplane.provider.ProviderController`
implements proactive shortest-path routing (the benign network management
system); :class:`~repro.controlplane.malicious.CompromisedController`
models the paper's threat: the same controller after a cyber attack,
executing attacks from :mod:`repro.attacks` through its legitimate
control channels.
"""

from repro.controlplane.controller import ControllerApp
from repro.controlplane.malicious import CompromisedController
from repro.controlplane.provider import ProviderController
from repro.controlplane.routing import RoutePlan, compute_route_plan

__all__ = [
    "CompromisedController",
    "ControllerApp",
    "ProviderController",
    "RoutePlan",
    "compute_route_plan",
]
