"""The provider's network management system / SDN controller.

Benign behaviour: proactively install latency-weighted shortest-path
routing for every host (``deploy``), reroute around failed links, and
answer out-of-band path queries — the latter is what the *provider-
trusting* baseline verifiers (:mod:`repro.baselines`) consume, and what a
compromised controller can lie about.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.controlplane.controller import ControllerApp
from repro.controlplane.routing import (
    ROUTE_PRIORITY,
    RoutePlan,
    compute_pair_route_plan,
    compute_route_plan,
    isolation_pairs,
)
from repro.dataplane.network import Network
from repro.dataplane.topology import Topology
from repro.openflow.match import Match
from repro.openflow.messages import PortStatus


class ProviderController(ControllerApp):
    """Proactive shortest-path routing over the whole topology."""

    def __init__(self, name: str = "provider") -> None:
        super().__init__(name)
        self.topology: Optional[Topology] = None
        self.route_plan: Optional[RoutePlan] = None
        self.deployed = False
        self.isolated = False
        self.port_events: List[Tuple[float, str, int, str]] = []

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def attach(self, network: Network, switches=None) -> None:  # type: ignore[override]
        super().attach(network, switches)
        self.topology = network.topology

    def deploy(self, *, isolate_clients: bool = False) -> RoutePlan:
        """Compute and install the routing configuration on all switches.

        With ``isolate_clients=True`` the agreed policy is per-client
        isolation: routes exist only between hosts of the same client.
        The compiled pipeline is then two-staged:

        * table 0 — ingress guards: packets from an edge port are
          admitted to routing only with the attached host's source IP
          (anti-spoofing); packets from internal ports are admitted
          unconditionally; everything else at an edge port drops.
        * table 1 — pair routes matching both ``ip_src`` and ``ip_dst``.

        Without isolation, plain destination-based shortest-path routes
        go into table 0 directly.
        """
        assert self.topology is not None, "attach() before deploy()"
        # One transaction: a policy deployment is all-or-nothing under a
        # preventive gate (a rejected rule rolls the whole deploy back).
        with self.flow_transaction():
            if isolate_clients:
                plan = compute_pair_route_plan(
                    self.topology, isolation_pairs(self.topology)
                )
                self._install_ingress_guards()
                route_table = 1
            else:
                plan = compute_route_plan(self.topology)
                route_table = 0
            for rule in plan.rules:
                self.install_flow(
                    rule.switch,
                    rule.match,
                    rule.actions,
                    priority=rule.priority,
                    table_id=route_table,
                    cookie=1,  # provider cookie, distinguishes provider rules
                )
        self.route_plan = plan
        self.isolated = isolate_clients
        self.deployed = True
        return plan

    #: Priorities of the ingress-guard tier (all below attack/RVaaS tiers).
    GUARD_ADMIT_PRIORITY = 8
    GUARD_DROP_PRIORITY = 6

    def _install_ingress_guards(self) -> None:
        assert self.topology is not None
        from repro.openflow.actions import Drop, GotoTable

        for host in self.topology.hosts.values():
            self.install_flow(
                host.switch,
                Match(in_port=host.port, ip_src=host.ip),
                (GotoTable(1),),
                priority=self.GUARD_ADMIT_PRIORITY,
                cookie=1,
            )
            self.install_flow(
                host.switch,
                Match(in_port=host.port),
                (Drop(),),
                priority=self.GUARD_DROP_PRIORITY,
                cookie=1,
            )
        for switch, ports in self.topology.internal_port_map().items():
            for port in sorted(ports):
                self.install_flow(
                    switch,
                    Match(in_port=port),
                    (GotoTable(1),),
                    priority=self.GUARD_ADMIT_PRIORITY,
                    cookie=1,
                )

    def withdraw_all(self) -> None:
        """Remove every provider-installed rule (cookie-selected)."""
        for switch in self.channels:
            from repro.openflow.messages import FlowMod, FlowModCommand

            self.channel_for(switch).send_to_switch(
                FlowMod(command=FlowModCommand.DELETE, match=Match.any(), cookie=1)
            )

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def on_port_status(self, switch: str, message: PortStatus) -> None:
        """Note topology changes (the demos keep the physical plant stable).

        Rerouting policy is orthogonal to verification — RVaaS checks
        whatever configuration is installed, however the provider reacts
        to failures — so the reference provider just records the event.
        """
        self.port_events.append((self.now, switch, message.port, message.status))

    # ------------------------------------------------------------------
    # The provider's self-reported answers (for baseline verifiers)
    # ------------------------------------------------------------------

    def report_path(self, src_host: str, dst_host: str) -> Optional[Tuple[str, ...]]:
        """The path the provider *claims* traffic takes.

        A benign provider answers truthfully from its route plan.  A
        compromised one (see :class:`~repro.controlplane.malicious.CompromisedController`)
        keeps answering from the *original* plan while the data plane
        does something else — which is exactly why traceroute-style
        verification fails in this threat model (paper §I).
        """
        if self.route_plan is None:
            return None
        return self.route_plan.path_between(src_host, dst_host)

    def report_reachable_hosts(self, src_host: str) -> Tuple[str, ...]:
        """Hosts the provider claims are reachable from ``src_host``."""
        if self.route_plan is None or self.topology is None:
            return ()
        return tuple(
            sorted(
                dst
                for (src, dst) in self.route_plan.paths
                if src == src_host
            )
        )

    def expected_rules(self) -> Dict[str, List]:
        """The benign configuration, per switch (ground truth for tests)."""
        assert self.route_plan is not None
        by_switch: Dict[str, List] = {}
        for rule in self.route_plan.rules:
            by_switch.setdefault(rule.switch, []).append(rule)
        return by_switch
