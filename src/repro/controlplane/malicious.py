"""The compromised provider controller.

Models the paper's central threat (§III): an external attacker has taken
over the network management system / SDN control plane.  The controller
first behaves benignly (deploys the agreed routing policy), then executes
:mod:`repro.attacks` through its own legitimate channels — and keeps
*lying* in its out-of-band reports: ``report_path`` and
``report_reachable_hosts`` still answer from the original benign plan,
which is why provider-trusting verifiers (traceroute, trajectory
sampling) observe nothing.
"""

from __future__ import annotations

from typing import List

from repro.attacks.base import Attack, AttackReport
from repro.controlplane.provider import ProviderController


class CompromisedController(ProviderController):
    """A provider controller under adversary control."""

    def __init__(self, name: str = "provider") -> None:
        super().__init__(name)
        self.active_attacks: List[Attack] = []
        self.attack_reports: List[AttackReport] = []

    def compromise(self, attack: Attack) -> AttackReport:
        """Execute ``attack`` through this controller's channels."""
        assert self.topology is not None, "attach() and deploy() first"
        # The attacker naturally batches its rules (it wants the attack
        # installed atomically); under a preventive gate the same
        # grouping means a mid-attack BLOCK rolls back the prefix, so a
        # half-armed attack never lingers on the data plane.
        with self.flow_transaction():
            report = attack.arm(self, self.topology)
        self.active_attacks.append(attack)
        self.attack_reports.append(report)
        return report

    def retreat(self, attack: Attack) -> None:
        """Remove one attack's rules (e.g. when the attacker covers tracks)."""
        attack.disarm(self)
        if attack in self.active_attacks:
            self.active_attacks.remove(attack)

    # ------------------------------------------------------------------
    # Lies
    # ------------------------------------------------------------------
    # report_path / report_reachable_hosts are inherited unchanged: they
    # answer from self.route_plan, which still holds the benign plan.
    # That *is* the lie — the data plane no longer matches it.

    def is_compromised(self) -> bool:
        return bool(self.active_attacks)
