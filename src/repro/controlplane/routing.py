"""Shortest-path route computation and rule compilation.

The provider's (benign) routing policy: latency-weighted shortest paths
between all hosts, compiled into per-destination IP rules.  The result
is a :class:`RoutePlan` — also handed to RVaaS verifiers in tests as the
*expected* configuration, and used by the PathLength (optimality) query
as the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.dataplane.topology import HostSpec, Topology
from repro.netlib.addresses import IPv4Address
from repro.openflow.actions import Action, Output
from repro.openflow.match import Match

#: Priority used by the provider's destination routes.
ROUTE_PRIORITY = 10


@dataclass(frozen=True)
class CompiledRule:
    """One rule of the routing configuration, addressed to a switch."""

    switch: str
    match: Match
    actions: Tuple[Action, ...]
    priority: int = ROUTE_PRIORITY


@dataclass
class RoutePlan:
    """The full routing configuration plus its path metadata."""

    rules: List[CompiledRule] = field(default_factory=list)
    # host name -> (ordered switch path from src switch to dst switch)
    paths: Dict[Tuple[str, str], Tuple[str, ...]] = field(default_factory=dict)

    def rules_for(self, switch: str) -> List[CompiledRule]:
        return [rule for rule in self.rules if rule.switch == switch]

    def path_between(self, src_host: str, dst_host: str) -> Optional[Tuple[str, ...]]:
        return self.paths.get((src_host, dst_host))

    def rule_count(self) -> int:
        return len(self.rules)


def _port_toward(topology: Topology, here: str, there: str) -> int:
    """The port on ``here`` wired toward neighbouring switch ``there``."""
    for link in topology.links:
        if (link.switch_a, link.switch_b) == (here, there):
            return link.port_a
        if (link.switch_b, link.switch_a) == (here, there):
            return link.port_b
    raise ValueError(f"no link between {here} and {there}")


def compute_route_plan(
    topology: Topology,
    *,
    weight: str = "latency",
    hosts: Optional[List[HostSpec]] = None,
) -> RoutePlan:
    """Compile latency-weighted shortest-path routing for all hosts.

    For every destination host ``d`` a shortest-path tree rooted at
    ``d``'s switch is installed: each switch gets one rule matching
    ``ip_dst == d.ip`` forwarding toward the tree parent, and the root
    switch delivers to the host port.
    """
    graph = topology.graph()
    plan = RoutePlan()
    all_hosts = hosts if hosts is not None else list(topology.hosts.values())

    for dst in all_hosts:
        # networkx: distances/paths from the destination's switch.
        paths = nx.single_source_dijkstra_path(graph, dst.switch, weight=weight)
        for switch_name in sorted(topology.switches):
            if switch_name == dst.switch:
                plan.rules.append(
                    CompiledRule(
                        switch=switch_name,
                        match=Match(ip_dst=dst.ip),
                        actions=(Output(dst.port),),
                    )
                )
                continue
            if switch_name not in paths:
                continue  # disconnected — no route
            # paths[switch] is the path dst.switch -> ... -> switch; the
            # next hop from `switch` toward dst is the previous element.
            path_from_dst = paths[switch_name]
            next_toward_dst = path_from_dst[-2]
            out_port = _port_toward(topology, switch_name, next_toward_dst)
            plan.rules.append(
                CompiledRule(
                    switch=switch_name,
                    match=Match(ip_dst=dst.ip),
                    actions=(Output(out_port),),
                )
            )

    # Record host-to-host switch paths for optimality baselines.
    for src in all_hosts:
        shortest = nx.single_source_dijkstra_path(graph, src.switch, weight=weight)
        for dst in all_hosts:
            if src.name == dst.name:
                continue
            if dst.switch in shortest:
                plan.paths[(src.name, dst.name)] = tuple(shortest[dst.switch])
    return plan


def compute_pair_route_plan(
    topology: Topology,
    pairs: List[Tuple[HostSpec, HostSpec]],
    *,
    weight: str = "latency",
) -> RoutePlan:
    """Compile routing for explicit (src, dst) host pairs only.

    Rules match on *both* ``ip_src`` and ``ip_dst``, so connectivity
    exists exactly for the allowed pairs — this is how the provider
    implements per-client isolation ("no client can gain access to
    another client's network", paper §IV-B1).
    """
    graph = topology.graph()
    plan = RoutePlan()
    for src, dst in pairs:
        if src.name == dst.name:
            continue
        try:
            path = nx.shortest_path(graph, src.switch, dst.switch, weight=weight)
        except nx.NetworkXNoPath:
            continue
        match = Match(ip_src=src.ip, ip_dst=dst.ip)
        for here, there in zip(path, path[1:]):
            plan.rules.append(
                CompiledRule(
                    switch=here,
                    match=match,
                    actions=(Output(_port_toward(topology, here, there)),),
                )
            )
        plan.rules.append(
            CompiledRule(
                switch=dst.switch,
                match=match,
                actions=(Output(dst.port),),
            )
        )
        plan.paths[(src.name, dst.name)] = tuple(path)
    return plan


def isolation_pairs(topology: Topology) -> List[Tuple[HostSpec, HostSpec]]:
    """All ordered same-client host pairs (the isolation policy)."""
    pairs: List[Tuple[HostSpec, HostSpec]] = []
    for src in topology.hosts.values():
        for dst in topology.hosts.values():
            if src.name != dst.name and src.client and src.client == dst.client:
                pairs.append((src, dst))
    return pairs


def shortest_path_length(
    topology: Topology, src_switch: str, dst_switch: str, *, weight: str = "latency"
) -> int:
    """Hop count of the shortest path between two switches."""
    graph = topology.graph()
    path = nx.shortest_path(graph, src_switch, dst_switch, weight=weight)
    return len(path) - 1


def destination_for(
    topology: Topology, address: IPv4Address
) -> Optional[HostSpec]:
    return topology.host_by_ip(address)
