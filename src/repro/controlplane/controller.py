"""Base class for OpenFlow controller applications.

Provides channel management, message dispatch to ``on_*`` handlers, and
the convenience senders (flow installation, packet-out, stats/monitor
requests) that both the provider controller and RVaaS are written
against.  One controller may manage many switches, each over its own
authenticated channel (:meth:`attach`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterable, Iterator, Optional

from repro.dataplane.network import Network
from repro.netlib.packet import Packet
from repro.openflow.actions import Action
from repro.openflow.channel import ControlChannel
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    EchoReply,
    FeaturesReply,
    FlowMod,
    FlowModCommand,
    FlowMonitorRequest,
    FlowMonitorUpdate,
    FlowRemoved,
    FlowStatsReply,
    FlowStatsRequest,
    MeterMod,
    MeterStatsReply,
    MeterStatsRequest,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PortStatus,
)
from repro.openflow.meters import MeterBand
from repro.openflow.actions import Output


class ControllerApp:
    """An OpenFlow controller application managing a set of switches."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.network: Optional[Network] = None
        self.channels: Dict[str, ControlChannel] = {}
        self._dpid_to_switch: Dict[int, str] = {}
        self._stats_callbacks: Dict[int, Callable[[OpenFlowMessage], None]] = {}
        # Transaction bookkeeping read by the preventive gate: FlowMods
        # sent inside one flow_transaction() block share a transaction id
        # and are verified/installed all-or-nothing (mid-batch rejection
        # rolls back the already-forwarded prefix).
        self._transaction_depth = 0
        self._transaction_counter = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(
        self, network: Network, switches: Optional[Iterable[str]] = None
    ) -> None:
        """Open control channels to ``switches`` (default: all)."""
        self.network = network
        names = list(switches) if switches is not None else sorted(network.switches)
        for switch_name in names:
            channel = network.open_control_channel(self.name, switch_name)
            channel.controller_end.set_handler(
                lambda message, _sw=switch_name: self._dispatch(_sw, message)
            )
            channel.controller_app = self
            self.channels[switch_name] = channel
            self._dpid_to_switch[network.switches[switch_name].dpid] = switch_name

    def channel_for(self, switch: str) -> ControlChannel:
        try:
            return self.channels[switch]
        except KeyError:
            raise KeyError(f"{self.name} has no channel to switch {switch!r}") from None

    def switch_name_for_dpid(self, dpid: int) -> str:
        return self._dpid_to_switch[dpid]

    @property
    def now(self) -> float:
        assert self.network is not None, "controller not attached"
        return self.network.sim.now

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, switch: str, message: OpenFlowMessage) -> None:
        callback = self._stats_callbacks.pop(message.xid, None)
        if callback is not None and isinstance(
            message, (FlowStatsReply, MeterStatsReply)
        ):
            callback(message)
            return
        if isinstance(message, PacketIn):
            self.on_packet_in(switch, message)
        elif isinstance(message, FlowMonitorUpdate):
            self.on_monitor_update(switch, message)
        elif isinstance(message, FlowRemoved):
            self.on_flow_removed(switch, message)
        elif isinstance(message, PortStatus):
            self.on_port_status(switch, message)
        elif isinstance(message, FlowStatsReply):
            self.on_flow_stats(switch, message)
        elif isinstance(message, MeterStatsReply):
            self.on_meter_stats(switch, message)
        elif isinstance(message, (EchoReply, BarrierReply, FeaturesReply)):
            self.on_control_reply(switch, message)

    # Handlers for subclasses ------------------------------------------------

    def on_packet_in(self, switch: str, message: PacketIn) -> None:
        """Called for every Packet-In from ``switch``."""

    def on_monitor_update(self, switch: str, message: FlowMonitorUpdate) -> None:
        """Called for every flow-monitor change notification."""

    def on_flow_removed(self, switch: str, message: FlowRemoved) -> None:
        """Called when a flow expires or is deleted with notification."""

    def on_port_status(self, switch: str, message: PortStatus) -> None:
        """Called on port up/down transitions."""

    def on_flow_stats(self, switch: str, message: FlowStatsReply) -> None:
        """Called for unsolicited stats replies (solicited ones use callbacks)."""

    def on_meter_stats(self, switch: str, message: MeterStatsReply) -> None:
        """Called for unsolicited meter stats replies."""

    def on_control_reply(self, switch: str, message: OpenFlowMessage) -> None:
        """Echo/Barrier/Features replies."""

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @contextmanager
    def flow_transaction(self) -> Iterator[int]:
        """Group the FlowMods sent inside the block into one transaction.

        Without a gate this is pure bookkeeping (FlowMods flow exactly as
        before).  With a :class:`~repro.core.gate.PreventiveGate`
        interposed, the gate treats the group as all-or-nothing: a
        mid-batch BLOCK rolls back the already-installed prefix with
        strict deletes.  Nesting joins the outermost transaction.
        """
        self._transaction_depth += 1
        if self._transaction_depth == 1:
            self._transaction_counter += 1
        try:
            yield self._transaction_counter
        finally:
            self._transaction_depth -= 1

    @property
    def current_transaction(self) -> Optional[int]:
        """The open transaction id, or None outside any transaction."""
        return self._transaction_counter if self._transaction_depth else None

    # ------------------------------------------------------------------
    # Senders
    # ------------------------------------------------------------------

    def install_flow(
        self,
        switch: str,
        match: Match,
        actions: tuple[Action, ...],
        *,
        priority: int = 0,
        table_id: int = 0,
        cookie: int = 0,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
    ) -> None:
        self.channel_for(switch).send_to_switch(
            FlowMod(
                command=FlowModCommand.ADD,
                match=match,
                actions=actions,
                priority=priority,
                table_id=table_id,
                cookie=cookie,
                idle_timeout=idle_timeout,
                hard_timeout=hard_timeout,
            )
        )

    def remove_flow(
        self,
        switch: str,
        match: Match,
        *,
        priority: Optional[int] = None,
        strict: bool = False,
    ) -> None:
        command = FlowModCommand.DELETE_STRICT if strict else FlowModCommand.DELETE
        self.channel_for(switch).send_to_switch(
            FlowMod(command=command, match=match, priority=priority or 0)
        )

    def send_packet(self, switch: str, packet: Packet, out_port: int) -> None:
        """Inject a packet at a switch via Packet-Out."""
        self.channel_for(switch).send_to_switch(
            PacketOut(packet=packet, actions=(Output(out_port),))
        )

    def install_meter(self, switch: str, meter_id: int, band: MeterBand) -> None:
        self.channel_for(switch).send_to_switch(
            MeterMod(command=FlowModCommand.ADD, meter_id=meter_id, band=band)
        )

    def request_flow_stats(
        self, switch: str, callback: Callable[[FlowStatsReply], None]
    ) -> int:
        """Active configuration poll with a per-request callback.

        Returns the request's transaction id so the caller can
        :meth:`cancel_stats_request` on timeout.
        """
        request = FlowStatsRequest()
        self._stats_callbacks[request.xid] = callback  # type: ignore[arg-type]
        self.channel_for(switch).send_to_switch(request)
        return request.xid

    def request_meter_stats(
        self, switch: str, callback: Callable[[MeterStatsReply], None]
    ) -> int:
        request = MeterStatsRequest()
        self._stats_callbacks[request.xid] = callback  # type: ignore[arg-type]
        self.channel_for(switch).send_to_switch(request)
        return request.xid

    def cancel_stats_request(self, xid: int) -> bool:
        """Forget a pending stats callback (timed-out or superseded poll).

        A late reply for a cancelled request is then dispatched to the
        unsolicited ``on_flow_stats`` / ``on_meter_stats`` handlers (a
        no-op by default) instead of a stale callback — so a reply that
        limps in after its retry already resynced cannot clobber the
        fresher state.  Returns True if the callback was still pending.
        """
        return self._stats_callbacks.pop(xid, None) is not None

    def subscribe_flow_monitor(self, switch: str) -> None:
        """Passive monitoring subscription (OpenFlow flow monitor)."""
        self.channel_for(switch).send_to_switch(FlowMonitorRequest())

    def control_message_count(self) -> int:
        """Total control messages this controller has exchanged."""
        return sum(channel.total_messages() for channel in self.channels.values())
