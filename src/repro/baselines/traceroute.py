"""Traceroute-style verification against provider-reported paths.

Classic operational practice: ask the network for the path (the network
answers from its management system), compare with expectations.  Under
the paper's threat model the management system is the compromised
component, so its answers reflect the *benign* plan regardless of what
the data plane does — every check below therefore passes even while an
attack is active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.controlplane.provider import ProviderController


@dataclass(frozen=True)
class TracerouteFinding:
    """The verdict of one traceroute-style check."""

    src_host: str
    dst_host: str
    reported_path: Tuple[str, ...]
    expected_path: Tuple[str, ...]
    suspicious: bool
    reason: str = ""


class TracerouteVerifier:
    """Verifies routing by interrogating the provider's control plane."""

    def __init__(self, provider: ProviderController) -> None:
        self.provider = provider

    def check_path(
        self,
        src_host: str,
        dst_host: str,
        expected_path: Optional[Tuple[str, ...]] = None,
    ) -> TracerouteFinding:
        """Compare the provider-reported path against the expectation.

        With no explicit expectation, the agreed (shortest-path) route is
        used — which is also what a benign provider reports, so the check
        is vacuous under compromise: the lie matches the expectation.
        """
        reported = self.provider.report_path(src_host, dst_host) or ()
        expected = expected_path if expected_path is not None else reported
        suspicious = reported != expected
        return TracerouteFinding(
            src_host=src_host,
            dst_host=dst_host,
            reported_path=tuple(reported),
            expected_path=tuple(expected),
            suspicious=suspicious,
            reason="reported path deviates from expectation" if suspicious else "",
        )

    def check_reachable_set(
        self, src_host: str, expected_hosts: Tuple[str, ...]
    ) -> bool:
        """True iff the provider-reported reachable set matches expectations."""
        reported = set(self.provider.report_reachable_hosts(src_host))
        return reported == set(expected_hosts)

    def detects_attack(self, src_host: str, dst_host: str) -> bool:
        """Would this tool flag the currently-armed attack?  (Spoiler: no.)

        The provider keeps reporting the benign plan, so the reported
        path always equals the agreed path and nothing is flagged.
        """
        finding = self.check_path(src_host, dst_host)
        return finding.suspicious
