"""Baseline verifiers that trust the provider (for experiment E7).

The paper's introduction argues that "traceroute and trajectory sampling
tools ... are insufficient in non-cooperative and adversarial
environments: an unreliable network operator may simply not reply with
the correct information".  These baselines implement exactly that broken
trust model — they consume the provider controller's self-reported state
— so the comparison experiments can show where they fail and RVaaS does
not.
"""

from repro.baselines.traceroute import TracerouteVerifier
from repro.baselines.trajectory import (
    TrajectorySamplingVerifier,
    TrustedCollectorTrajectoryVerifier,
)

__all__ = [
    "TracerouteVerifier",
    "TrajectorySamplingVerifier",
    "TrustedCollectorTrajectoryVerifier",
]
