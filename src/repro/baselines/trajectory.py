"""Trajectory-sampling verification with provider-controlled reporting.

Duffield & Grossglauser's trajectory sampling has routers hash-sample
packets and report (packet-label, router) observations to a collector.
In an SDN, the *controller* configures what gets sampled and relays the
reports — so a compromised control plane can censor observations from
switches a flow should not be crossing, and fabricate observations for
the agreed path.  This verifier faithfully implements that failure mode:
sampling reports pass through the provider, which filters them down to
the benign plan.

(With a trusted collection channel the tool would work; the point of the
comparison is that under the paper's threat model no such channel exists
outside RVaaS.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.controlplane.provider import ProviderController
from repro.dataplane.network import Network


@dataclass(frozen=True)
class TrajectoryReport:
    """One (sampled) packet trajectory as presented to the analyst."""

    src_host: str
    dst_host: str
    observed_switches: Tuple[str, ...]


class TrajectorySamplingVerifier:
    """Samples packet trajectories — through the provider's reporting path."""

    def __init__(self, provider: ProviderController, network: Network) -> None:
        self.provider = provider
        self.network = network
        self.reports: List[TrajectoryReport] = []

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self, src_host: str, dst_host: str) -> TrajectoryReport:
        """Sample the trajectory of the (src, dst) flow.

        The switches *do* observe the true trajectory (the packet trace),
        but reports are relayed by the provider's management system,
        which replaces them with the benign plan when compromised —
        "an unreliable network operator may simply not reply with the
        correct information" (§I).
        """
        true_trajectory = self._true_trajectory(src_host, dst_host)
        reported = self._provider_filter(src_host, dst_host, true_trajectory)
        report = TrajectoryReport(
            src_host=src_host, dst_host=dst_host, observed_switches=reported
        )
        self.reports.append(report)
        return report

    def _true_trajectory(self, src_host: str, dst_host: str) -> Tuple[str, ...]:
        dst = self.network.host(dst_host)
        for packet in reversed(dst.received):
            src_spec = self.network.topology.hosts[src_host]
            if packet.ip_src == src_spec.ip:
                return tuple(switch for switch, _port in packet.trace)
        return ()

    def _provider_filter(
        self, src_host: str, dst_host: str, true_trajectory: Tuple[str, ...]
    ) -> Tuple[str, ...]:
        """What the compromised management system lets the analyst see."""
        claimed = self.provider.report_path(src_host, dst_host)
        if claimed is None:
            return true_trajectory
        # Censorship: only observations on the claimed path survive, and
        # missing ones are fabricated — the report equals the claim.
        return tuple(claimed)

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def detects_attack(self, src_host: str, dst_host: str) -> bool:
        """Does the sampled trajectory deviate from the agreed path?"""
        report = self.collect(src_host, dst_host)
        expected = self.provider.report_path(src_host, dst_host) or ()
        return tuple(report.observed_switches) != tuple(expected)

    def observed_switch_set(self) -> Set[str]:
        observed: Set[str] = set()
        for report in self.reports:
            observed.update(report.observed_switches)
        return observed


class TrustedCollectorTrajectoryVerifier(TrajectorySamplingVerifier):
    """Trajectory sampling with an *uncompromised* collection channel.

    The counterfactual the paper implies: the tool itself is fine — its
    trust model is what breaks.  With switch observations reaching the
    analyst directly (which in an SDN would require exactly the kind of
    independent secure channel RVaaS builds), trajectory deviations
    become visible again.

    Even then the tool remains reactive and sampling-based: it sees only
    flows that actually carried traffic, while RVaaS's logical
    verification covers every potential flow, including ones the victim
    never sent.
    """

    def _provider_filter(
        self, src_host: str, dst_host: str, true_trajectory: Tuple[str, ...]
    ) -> Tuple[str, ...]:
        return true_trajectory  # observations arrive untampered
