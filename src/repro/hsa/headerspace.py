"""Header spaces: finite unions of wildcard expressions.

A :class:`HeaderSpace` is the working set type of every verification
query: "all headers my traffic could carry", "all headers that reach
port p", etc.  It is immutable; operations return new spaces.  Subset
pruning keeps the union small after subtraction chains (the design
choice ablated in benchmark E10).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.hsa.layout import HEADER_BITS
from repro.hsa.wildcard import Wildcard


class HeaderSpace:
    """An immutable union of wildcards (possibly empty)."""

    __slots__ = ("_wildcards", "_fingerprint")

    def __init__(self, wildcards: Iterable[Wildcard] = (), *, prune: bool = False):
        items = list(wildcards)
        if prune:
            items = _prune_subsets(items)
        self._wildcards: tuple[Wildcard, ...] = tuple(items)
        self._fingerprint: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _from_pieces(cls, pieces: Sequence[Wildcard]) -> "HeaderSpace":
        """Trusted constructor for algebra-internal results.

        Skips ``__init__``'s defensive list copy and the prune option —
        for hot-path callers that already hold a finished piece sequence.
        """
        made = object.__new__(cls)
        made._wildcards = tuple(pieces)
        made._fingerprint = None
        return made

    @classmethod
    def empty(cls) -> "HeaderSpace":
        return cls(())

    @classmethod
    def all(cls) -> "HeaderSpace":
        return cls((Wildcard.all(),))

    @classmethod
    def single(cls, wildcard: Wildcard) -> "HeaderSpace":
        return cls((wildcard,))

    @classmethod
    def point(cls, vector: int) -> "HeaderSpace":
        return cls((Wildcard.point(vector),))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    @property
    def wildcards(self) -> tuple[Wildcard, ...]:
        return self._wildcards

    def is_empty(self) -> bool:
        return not self._wildcards

    def contains_point(self, vector: int) -> bool:
        return any(w.contains_point(vector) for w in self._wildcards)

    def is_subset_of(self, other: "HeaderSpace") -> bool:
        """Exact subset test: self \\ other == empty."""
        return self.subtract(other).is_empty()

    def overlaps(self, other: "HeaderSpace") -> bool:
        return any(
            a.intersect(b) is not None
            for a in self._wildcards
            for b in other._wildcards
        )

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def union(self, other: "HeaderSpace") -> "HeaderSpace":
        # Pruning here keeps long-lived accumulators (e.g. reachability
        # coverage maps) compact; transient results skip it for speed.
        return HeaderSpace(self._wildcards + other._wildcards, prune=True)

    def intersect(self, other: "HeaderSpace") -> "HeaderSpace":
        pieces: List[Wildcard] = []
        for a in self._wildcards:
            for b in other._wildcards:
                joined = a.intersect(b)
                if joined is not None:
                    pieces.append(joined)
        return HeaderSpace(pieces)

    def intersect_wildcard(self, wildcard: Wildcard) -> "HeaderSpace":
        pieces = []
        wc_value, wc_mask = wildcard.value, wildcard.mask
        for a in self._wildcards:
            if (a.value ^ wc_value) & a.mask & wc_mask:
                continue
            pieces.append(Wildcard._make(a.value | wc_value, a.mask | wc_mask))
        return HeaderSpace._from_pieces(pieces)

    def subtract(self, other: "HeaderSpace") -> "HeaderSpace":
        return self.subtract_many(other._wildcards)

    def subtract_many(self, wildcards: Sequence[Wildcard]) -> "HeaderSpace":
        """``self`` minus a union of wildcards, in one disjoint-piece pass.

        Equivalent to chaining :meth:`subtract_wildcard`, but carries the
        working piece list through the whole chain instead of wrapping it
        in an intermediate HeaderSpace per subtrahend.  Wildcard.subtract
        yields pairwise-disjoint pieces, so no piece can subsume another;
        skipping the prune keeps this linear in the piece count.
        """
        pieces: List[Wildcard] = list(self._wildcards)
        for b in wildcards:
            b_value, b_mask = b.value, b.mask
            next_pieces: List[Wildcard] = []
            for piece in pieces:
                # Disjoint pieces pass through untouched (common case).
                if (piece.value ^ b_value) & piece.mask & b_mask:
                    next_pieces.append(piece)
                else:
                    next_pieces.extend(piece.subtract(b))
            pieces = next_pieces
            if not pieces:
                break
        return HeaderSpace._from_pieces(pieces)

    def subtract_wildcard(self, wildcard: Wildcard) -> "HeaderSpace":
        return self.subtract_many((wildcard,))

    def complement(self) -> "HeaderSpace":
        return HeaderSpace.all().subtract(self)

    def compact(self) -> "HeaderSpace":
        """Semantically-equal space with adjacent wildcards merged.

        Two wildcards with identical masks whose values differ in exactly
        one care bit cover a single larger wildcard with that bit freed
        (the classic Quine-McCluskey adjacency step).  One pass of
        merging plus subset pruning; applied to long-lived accumulators
        where subtraction chains produce many sibling pieces.
        """
        pieces = list(_prune_subsets(self._wildcards))
        changed = True
        while changed:
            changed = False
            merged: List[Wildcard] = []
            used = [False] * len(pieces)
            for i in range(len(pieces)):
                if used[i]:
                    continue
                candidate = pieces[i]
                for j in range(i + 1, len(pieces)):
                    if used[j]:
                        continue
                    other = pieces[j]
                    if candidate.mask != other.mask:
                        continue
                    delta = candidate.value ^ other.value
                    if delta and delta & (delta - 1) == 0:  # single bit
                        candidate = Wildcard(
                            value=candidate.value & ~delta,
                            mask=candidate.mask & ~delta,
                        )
                        used[j] = True
                        changed = True
                merged.append(candidate)
            pieces = _prune_subsets(merged)
        return HeaderSpace(pieces, prune=False)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def complexity(self) -> int:
        """Number of wildcard terms (the cost driver of HSA operations)."""
        return len(self._wildcards)

    def fingerprint(self) -> tuple:
        """A hashable, order-insensitive key for memoisation tables.

        Two spaces with the same fingerprint are identical unions of
        wildcards; semantically-equal spaces built differently may hash
        apart, which only costs a cache miss, never a wrong hit.  Cached
        after the first call — fingerprints key both the engine's
        propagation memo and the atom backend's query-encoding cache, so
        a served query should not pay the sort twice.
        """
        if self._fingerprint is None:
            self._fingerprint = tuple(
                sorted((w.value, w.mask) for w in self._wildcards)
            )
        return self._fingerprint

    def sample(self, rng: random.Random) -> Optional[int]:
        """A concrete header from this space, or None when empty."""
        if not self._wildcards:
            return None
        wildcard = rng.choice(self._wildcards)
        return wildcard.sample(rng)

    def size_log2_upper_bound(self) -> float:
        """log2 of an upper bound on the number of headers (union bound)."""
        import math

        if not self._wildcards:
            return float("-inf")
        top = max(w.size_log2() for w in self._wildcards)
        total = sum(2.0 ** (w.size_log2() - top) for w in self._wildcards)
        return top + math.log2(total)

    def describe(self, limit: int = 4) -> str:
        if not self._wildcards:
            return "HeaderSpace(empty)"
        shown = ", ".join(w.describe() for w in self._wildcards[:limit])
        extra = len(self._wildcards) - limit
        suffix = f", … +{extra}" if extra > 0 else ""
        return f"HeaderSpace[{shown}{suffix}]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HeaderSpace):
            return NotImplemented
        return self.is_subset_of(other) and other.is_subset_of(self)

    def __hash__(self) -> int:  # pragma: no cover - explicitness only
        raise TypeError("HeaderSpace is unhashable (semantic equality)")

    def __repr__(self) -> str:
        return self.describe()


def _prune_subsets(items: Sequence[Wildcard]) -> List[Wildcard]:
    """Drop wildcards already covered by another single wildcard."""
    kept: List[Wildcard] = []
    # Wider wildcards first so narrower duplicates get absorbed.
    for candidate in sorted(items, key=lambda w: w.fixed_bits()):
        if not any(candidate.is_subset_of(existing) for existing in kept):
            kept.append(candidate)
    return kept
