"""Per-switch transfer functions derived from flow-table snapshots.

A transfer function T maps (in_port, header space) to a set of
(out_port, header space) pairs, with exact priority shadowing: the space
handed to rule *r* is the input minus the matches of all applicable
higher-priority rules.  GotoTable instructions compose tables; SetField /
Push/PopVlan become header-space rewrites.

Transfer functions are built from :class:`SnapshotRule` records — plain
data extracted from flow-monitor updates or flow-stats dumps — never from
live switch objects, because RVaaS reasons over its *snapshot* of the
configuration (paper §IV-A1), not over privileged access to the switch.

Fast path (benchmark E17): rules are served through per-(table, in-port)
:class:`_RuleClassifier` indexes.  A classifier pre-filters the in-port
constraint once, and pre-partitions rules by a *guard field* — the header
field exactly constrained by the most rules (e.g. ``ip_dst`` in routing
tables).  A propagated space that pins the guard field consults only the
matching bucket plus the guard-free residue, skipping provably-disjoint
rules without intersecting against them.  Skipping is sound for the
shadowing subtraction too: a rule disjoint from the input space
contributes an empty segment and an identity subtraction.  The naive
linear-scan kernel is preserved in :mod:`repro.hsa.reference` as the
differential-testing oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.hsa.headerspace import HeaderSpace
from repro.hsa.layout import FIELD_LAYOUT, field_slice
from repro.hsa.wildcard import Wildcard
from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.constants import VLAN_NONE
from repro.openflow.actions import (
    Action,
    Drop,
    Flood,
    GotoTable,
    Meter,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)
from repro.openflow.match import Match

#: Symbolic output meaning "punted to the control plane".
CONTROLLER_PORT = -1


@dataclass(frozen=True)
class SnapshotRule:
    """One flow entry as recorded in a configuration snapshot."""

    table_id: int
    priority: int
    match: Match
    actions: Tuple[Action, ...]
    cookie: int = 0

    def identity(self) -> tuple:
        return (self.table_id, self.priority, self.match, self.actions)

    def identity_digest(self) -> bytes:
        """SHA-256 of :meth:`identity`, cached on the instance.

        Rule objects are structurally shared across snapshot versions, so
        caching here makes rehashing a changed switch cost O(new rules)
        instead of re-rendering every identity repr each version.
        """
        cached = self.__dict__.get("_identity_digest")
        if cached is None:
            import hashlib

            cached = hashlib.sha256(repr(self.identity()).encode()).digest()
            object.__setattr__(self, "_identity_digest", cached)
        return cached


@dataclass(frozen=True)
class TransferRule:
    """A compiled rule: match wildcard plus port constraint plus actions.

    ``ops`` is the pre-compiled form of ``actions`` for the fast apply
    loop — ``(clear, bits, ports, goto_table)`` meaning "rewrite every
    piece to ``(value & ~clear) | bits``, emit to ``ports``, then
    optionally continue in ``goto_table``".  ``None`` marks action lists
    the compact form cannot express (Flood, rewrite-after-emit); those
    fall back to the interpreting :meth:`SwitchTransferFunction._apply_actions`.
    """

    table_id: int
    priority: int
    in_port: Optional[int]
    match_wc: Wildcard
    actions: Tuple[Action, ...]
    source: SnapshotRule
    ops: Optional[Tuple[int, int, Tuple[int, ...], Optional[int]]] = None


def compile_actions(
    actions: Sequence[Action],
) -> Optional[Tuple[int, int, Tuple[int, ...], Optional[int]]]:
    """Pre-compile an action list into the compact ``ops`` form.

    Folds every run of SetField / PushVlan / PopVlan into a single
    (clear-mask, value-bits) integer pair — sequential rewrites of the
    same field collapse to the last writer — and collects the emission
    ports.  Returns ``None`` for shapes the compact form cannot express
    (Flood's in-port dependence, rewrites after an emission), which keep
    the general interpreter path.
    """
    clear = 0
    bits = 0
    ports: List[int] = []
    goto: Optional[int] = None
    for action in actions:
        if isinstance(action, Meter):
            continue
        if isinstance(action, (SetField, PushVlan, PopVlan)):
            if ports:
                return None  # rewrite after emit: segment forks, interpret
            if isinstance(action, SetField):
                slice_ = field_slice(action.field)
                raw = action.value
                raw = (
                    raw.value
                    if isinstance(raw, (MacAddress, IPv4Address))
                    else int(raw)
                )
            else:
                slice_ = field_slice("vlan_id")
                raw = (
                    action.vlan_id if isinstance(action, PushVlan) else VLAN_NONE
                )
            fmask = slice_.mask
            clear |= fmask
            bits = (bits & ~fmask) | slice_.pack(raw)
        elif isinstance(action, Output):
            ports.append(action.port)
        elif isinstance(action, ToController):
            ports.append(CONTROLLER_PORT)
        elif isinstance(action, GotoTable):
            goto = action.table_id
            break  # goto terminates the action list
        elif isinstance(action, Drop):
            break  # drop terminates; prior emissions stand
        else:
            return None  # Flood or unknown: interpret
    return (clear, bits, tuple(ports), goto)


#: One output of a transfer application.
Emission = Tuple[int, HeaderSpace]


class KernelStats:
    """Cumulative fast-path counters for one transfer function.

    Telemetry only — increments are not synchronised, so totals may be
    slightly lossy under parallel fan-out; they never affect results.
    """

    __slots__ = (
        "rules_checked",
        "rules_skipped",
        "early_exits",
        "index_hits",
        "index_misses",
    )

    def __init__(self) -> None:
        self.rules_checked = 0  # rules the apply loop actually visited
        self.rules_skipped = 0  # rules the classifier proved disjoint
        self.early_exits = 0  # subsumption early exits taken
        self.index_hits = 0  # applications served from a guard bucket
        self.index_misses = 0  # applications that fell back to full scan

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def add(self, other: "KernelStats") -> None:
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


class _RuleClassifier:
    """The indexed view of one table as seen from one ingress port.

    Holds the in-port-filtered rule list in priority order, plus a guard
    index: rules exactly constraining the guard field are bucketed by
    their guard value; the residue (rules leaving any guard bit free) is
    checked on every application.  Merged per-value candidate lists are
    memoised because propagation revisits the same few guard values.

    Every candidate list carries a parallel tuple of *shadow flags*:
    flag[i] is False when no later rule in the list overlaps rule i's
    match, which makes the priority-shadowing subtraction after rule i a
    provable no-op the apply loop can skip.  Real tables are mostly
    pairwise-disjoint (distinct destinations), so this removes the
    dominant subtraction cost.  Restricting the overlap test to the
    candidate list is sound: rules outside it are disjoint from the
    applied space, so their segments are empty whether or not the
    subtraction happened.
    """

    __slots__ = ("rules", "flags", "guard_mask", "_exact", "_rest", "_merged")

    #: Build a guard index only when it can bucket at least this many rules.
    MIN_GUARDED = 2

    def __init__(self, rules: Sequence[TransferRule]) -> None:
        self.rules: Tuple[TransferRule, ...] = tuple(rules)
        # Full-list shadow flags are O(n²) to derive and only needed when
        # a space escapes the guard index, so they are built on demand.
        self.flags: Optional[Tuple[bool, ...]] = None
        self.guard_mask = 0
        self._exact: Dict[int, List[Tuple[int, TransferRule]]] = {}
        self._rest: List[Tuple[int, TransferRule]] = []
        self._merged: Dict[
            int, Tuple[Tuple[TransferRule, ...], Tuple[bool, ...]]
        ] = {}
        if len(self.rules) < self.MIN_GUARDED:
            return
        # The guard is the first (in layout order) field exactly
        # constrained by the most rules — the discriminating field.
        best_count = 0
        for slice_ in FIELD_LAYOUT.values():
            fmask = slice_.mask
            count = sum(
                1 for r in self.rules if r.match_wc.mask & fmask == fmask
            )
            if count > best_count:
                best_count = count
                self.guard_mask = fmask
        if best_count < self.MIN_GUARDED:
            self.guard_mask = 0
            return
        gmask = self.guard_mask
        for pos, rule in enumerate(self.rules):
            wc = rule.match_wc
            if wc.mask & gmask == gmask:
                self._exact.setdefault(wc.value & gmask, []).append((pos, rule))
            else:
                self._rest.append((pos, rule))

    def select(
        self, space: HeaderSpace, stats: KernelStats
    ) -> Tuple[Tuple[TransferRule, ...], Tuple[bool, ...]]:
        """(candidate rules, shadow flags) for ``space``, in priority order."""
        gmask = self.guard_mask
        pieces = space.wildcards
        if not gmask or not pieces:
            stats.index_misses += 1
            return self.rules, self._full_flags()
        # The bucket applies only when every piece pins the whole guard
        # field to one shared value; otherwise any rule could intersect.
        guard_value = pieces[0].value & gmask
        for piece in pieces:
            if piece.mask & gmask != gmask or piece.value & gmask != guard_value:
                stats.index_misses += 1
                return self.rules, self._full_flags()
        stats.index_hits += 1
        merged = self._merged.get(guard_value)
        if merged is None:
            rules = self._merge(self._exact.get(guard_value, []), self._rest)
            merged = (rules, _shadow_flags(rules))
            self._merged[guard_value] = merged
        return merged

    def _full_flags(self) -> Tuple[bool, ...]:
        flags = self.flags
        if flags is None:
            flags = self.flags = _shadow_flags(self.rules)
        return flags

    @staticmethod
    def _merge(
        bucket: List[Tuple[int, TransferRule]],
        rest: List[Tuple[int, TransferRule]],
    ) -> Tuple[TransferRule, ...]:
        """Two position-sorted runs merged back into priority order."""
        out: List[TransferRule] = []
        i = j = 0
        while i < len(bucket) and j < len(rest):
            if bucket[i][0] < rest[j][0]:
                out.append(bucket[i][1])
                i += 1
            else:
                out.append(rest[j][1])
                j += 1
        out.extend(rule for _pos, rule in bucket[i:])
        out.extend(rule for _pos, rule in rest[j:])
        return tuple(out)


class SwitchTransferFunction:
    """The HSA view of one switch's configuration."""

    def __init__(
        self,
        switch_name: str,
        rules: Sequence[SnapshotRule],
        ports: Sequence[int],
        *,
        n_tables: int = 2,
    ) -> None:
        self.switch_name = switch_name
        self.ports = tuple(sorted(ports))
        self._tables: Dict[int, List[TransferRule]] = {
            table_id: [] for table_id in range(n_tables)
        }
        # OpenFlow replacement semantics: a later rule with the same
        # (table, priority, match) overwrites the earlier one, exactly as
        # FlowTable.add does on the switch — otherwise HSA and the data
        # plane disagree on which actions such a flow entry carries.
        deduped: Dict[tuple, SnapshotRule] = {}
        for rule in rules:
            key = (rule.table_id, rule.priority, rule.match)
            # pop-then-insert so a replacement also moves to the back,
            # matching the fresh entry id the switch assigns it
            deduped.pop(key, None)
            deduped[key] = rule
        for rule in deduped.values():
            actions = tuple(rule.actions)
            compiled = TransferRule(
                table_id=rule.table_id,
                priority=rule.priority,
                in_port=rule.match.in_port,
                match_wc=Wildcard.from_match(rule.match),
                actions=actions,
                source=rule,
                ops=compile_actions(actions),
            )
            self._tables.setdefault(rule.table_id, []).append(compiled)
        for table_rules in self._tables.values():
            # Priority desc; the sort is stable, so equal-priority rules
            # keep their given order — the same first-installed-wins
            # tie-break the switch pipeline applies via entry ids.
            table_rules.sort(key=lambda r: -r.priority)
        self.stats = KernelStats()
        #: (table_id, in_port) -> lazily built classifier index
        self._classifiers: Dict[Tuple[int, int], _RuleClassifier] = {}
        #: table_id -> classifier shared by every in_port (built when no
        #: rule in the table constrains in_port — e.g. routing tables)
        self._portless: Dict[int, _RuleClassifier] = {}

    def _classifier(self, table_id: int, in_port: int) -> _RuleClassifier:
        key = (table_id, in_port)
        classifier = self._classifiers.get(key)
        if classifier is None:
            table_rules = self._tables.get(table_id, ())
            applicable = [
                rule
                for rule in table_rules
                if rule.in_port is None or rule.in_port == in_port
            ]
            if len(applicable) == len(table_rules):
                # Port-oblivious table: one classifier serves every
                # ingress, so its guard scan and shadow flags are built
                # once instead of once per port.
                classifier = self._portless.get(table_id)
                if classifier is None:
                    classifier = _RuleClassifier(applicable)
                    self._portless[table_id] = classifier
            else:
                classifier = _RuleClassifier(applicable)
            self._classifiers[key] = classifier
        return classifier

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply(self, in_port: int, space: HeaderSpace) -> List[Emission]:
        """Run ``space`` arriving on ``in_port`` through the pipeline.

        Returns (out_port, space) emissions; ``CONTROLLER_PORT`` marks
        Packet-In punts.  Dropped space is simply absent from the result.
        """
        return self._apply_table(0, in_port, space)

    def apply_with_drops(
        self, in_port: int, space: HeaderSpace
    ) -> Tuple[List[Emission], HeaderSpace]:
        """Like :meth:`apply`, but also return the space this switch drops.

        The dropped space is the input minus every matched segment whose
        action list produced at least one emission (accounted by the
        *matched* input segment, so rewrites do not confuse the
        bookkeeping).  Conservative on multi-table pipelines: a segment
        that a GotoTable forwards partially is treated as forwarded.
        Table-miss and Drop-action space is exact — which is what the
        blackhole-localization diagnostics need.
        """
        stats = self.stats
        classifier = self._classifier(0, in_port)
        candidates, _flags = classifier.select(space, stats)
        stats.rules_checked += len(candidates)
        stats.rules_skipped += len(classifier.rules) - len(candidates)
        emissions: List[Emission] = []
        forwarded_input = HeaderSpace.empty()
        remaining = space
        for rule in candidates:
            if remaining.is_empty():
                break
            segment = remaining.intersect_wildcard(rule.match_wc)
            if segment.is_empty():
                continue
            produced = self._apply_actions(rule, in_port, segment)
            emissions.extend(produced)
            if produced:
                forwarded_input = forwarded_input.union(segment)
            remaining = remaining.subtract_wildcard(rule.match_wc)
        dropped = space.subtract(forwarded_input)
        return emissions, dropped

    def _apply_table(
        self, table_id: int, in_port: int, space: HeaderSpace
    ) -> List[Emission]:
        stats = self.stats
        classifier = self._classifier(table_id, in_port)
        candidates, flags = classifier.select(space, stats)
        stats.rules_checked += len(candidates)
        stats.rules_skipped += len(classifier.rules) - len(candidates)
        emissions: List[Emission] = []
        # The remainder is carried as a plain piece list — no HeaderSpace
        # is materialised per shadowing step, only per emitted segment.
        pieces: List[Wildcard] = list(space.wildcards)
        # AND of the remaining pieces' masks: a rule can only subsume the
        # remainder if every bit it constrains is fixed in every piece,
        # so the (piece-linear) subset scan hides behind this one intop.
        masks_and = _masks_and(pieces)
        _make = Wildcard._make
        for index, rule in enumerate(candidates):
            if not pieces:
                break
            match_wc = rule.match_wc
            rv = match_wc.value
            rm = match_wc.mask
            seg_pieces = [
                _make(p.value | rv, p.mask | rm)
                for p in pieces
                if not ((p.value ^ rv) & p.mask & rm)
            ]
            if not seg_pieces:
                continue  # disjoint: no segment, identity subtraction
            ops = rule.ops
            if ops is None:
                emissions.extend(
                    self._apply_actions(
                        rule, in_port, HeaderSpace._from_pieces(seg_pieces)
                    )
                )
            else:
                clear, bits, out_ports, goto = ops
                if clear:
                    seg_pieces = [
                        _make((p.value & ~clear) | bits, p.mask | clear)
                        for p in seg_pieces
                    ]
                segment = HeaderSpace._from_pieces(seg_pieces)
                for out_port in out_ports:
                    emissions.append((out_port, segment))
                if goto is not None:
                    emissions.extend(self._apply_table(goto, in_port, segment))
            if not (rm & ~masks_and) and all(
                piece.is_subset_of(match_wc) for piece in pieces
            ):
                stats.early_exits += 1
                break  # this rule swallows everything still unmatched
            if not flags[index]:
                continue  # no later candidate overlaps: shadowing is a no-op
            next_pieces: List[Wildcard] = []
            masks_and = -1
            for piece in pieces:
                if (piece.value ^ rv) & piece.mask & rm:
                    next_pieces.append(piece)
                    masks_and &= piece.mask
                else:
                    for part in piece.subtract(match_wc):
                        next_pieces.append(part)
                        masks_and &= part.mask
            pieces = next_pieces
        # Table miss: OpenFlow 1.3 default-drops; nothing emitted.
        return emissions

    def _apply_actions(
        self, rule: TransferRule, in_port: int, segment: HeaderSpace
    ) -> List[Emission]:
        emissions: List[Emission] = []
        current = segment
        for action in rule.actions:
            if isinstance(action, SetField):
                current = _rewrite(current, action.field, action.value)
            elif isinstance(action, PushVlan):
                current = _rewrite(current, "vlan_id", action.vlan_id)
            elif isinstance(action, PopVlan):
                current = _rewrite(current, "vlan_id", VLAN_NONE)
            elif isinstance(action, Output):
                emissions.append((action.port, current))
            elif isinstance(action, Flood):
                for port in self.ports:
                    if port != in_port:
                        emissions.append((port, current))
            elif isinstance(action, ToController):
                emissions.append((CONTROLLER_PORT, current))
            elif isinstance(action, GotoTable):
                emissions.extend(
                    self._apply_table(action.table_id, in_port, current)
                )
                break  # goto terminates this action list
            elif isinstance(action, Meter):
                continue  # metering does not change reachability
            elif isinstance(action, Drop):
                break
        return emissions

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def rule_count(self) -> int:
        return sum(len(rules) for rules in self._tables.values())

    def rules(self) -> List[TransferRule]:
        collected: List[TransferRule] = []
        for table_id in sorted(self._tables):
            collected.extend(self._tables[table_id])
        return collected

    def iter_tables(self) -> List[Tuple[int, Tuple[TransferRule, ...]]]:
        """(table_id, priority-ordered rules) pairs, in table order."""
        return [
            (table_id, tuple(self._tables[table_id]))
            for table_id in sorted(self._tables)
        ]

    def constraint_wildcards(self) -> List[Wildcard]:
        """Every header predicate this pipeline can distinguish.

        Match wildcards plus singleton wildcards for each constant a
        rewrite action writes — exactly the predicate set whose induced
        partition the atomic-predicate engine (:mod:`repro.hsa.atoms`)
        must refine for atom-granularity reasoning to be exact.
        """
        out: List[Wildcard] = []
        for rule in self.rules():
            out.append(rule.match_wc)
            for action in rule.actions:
                if isinstance(action, SetField):
                    raw = action.value
                    raw = (
                        raw.value
                        if isinstance(raw, (MacAddress, IPv4Address))
                        else int(raw)
                    )
                    out.append(Wildcard.from_fields(**{action.field: raw}))
                elif isinstance(action, PushVlan):
                    out.append(Wildcard.from_fields(vlan_id=action.vlan_id))
                elif isinstance(action, PopVlan):
                    out.append(Wildcard.from_fields(vlan_id=VLAN_NONE))
        return out


def _shadow_flags(rules: Sequence[TransferRule]) -> Tuple[bool, ...]:
    """flag[i]: does any later rule overlap rule i's match wildcard?

    When False, subtracting rule i's match from the remaining space
    cannot change any later rule's segment — the apply loop skips the
    subtraction outright.
    """
    flags: List[bool] = []
    for i, rule in enumerate(rules):
        value, mask = rule.match_wc.value, rule.match_wc.mask
        flags.append(
            any(
                not ((value ^ later.match_wc.value) & mask & later.match_wc.mask)
                for later in rules[i + 1 :]
            )
        )
    return tuple(flags)


def _masks_and(pieces: Sequence[Wildcard]) -> int:
    acc = -1
    for piece in pieces:
        acc &= piece.mask
    return acc


def _rewrite(
    space: HeaderSpace, field: str, value: Union[int, MacAddress, IPv4Address]
) -> HeaderSpace:
    slice_ = field_slice(field)
    raw = value.value if isinstance(value, (MacAddress, IPv4Address)) else int(value)
    return HeaderSpace._from_pieces(
        [w.rewrite_field(slice_, raw) for w in space.wildcards]
    )


def compile_switch_tf(
    switch: str, rules: Sequence[SnapshotRule], ports: Sequence[int]
) -> SwitchTransferFunction:
    """One switch's compiled pipeline from its snapshot rule set.

    The single compile recipe shared by the verification engine, the
    snapshot's lazy ``network_tf()``, and the compile-farm workers — a
    pure function of ``(switch, rules, ports)``, so the same content
    key compiles to behaviourally identical artifacts in any process.
    """
    n_tables = max((r.table_id for r in rules), default=0) + 1
    return SwitchTransferFunction(
        switch, rules, ports=tuple(ports), n_tables=max(n_tables, 2)
    )
