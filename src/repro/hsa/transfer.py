"""Per-switch transfer functions derived from flow-table snapshots.

A transfer function T maps (in_port, header space) to a set of
(out_port, header space) pairs, with exact priority shadowing: the space
handed to rule *r* is the input minus the matches of all applicable
higher-priority rules.  GotoTable instructions compose tables; SetField /
Push/PopVlan become header-space rewrites.

Transfer functions are built from :class:`SnapshotRule` records — plain
data extracted from flow-monitor updates or flow-stats dumps — never from
live switch objects, because RVaaS reasons over its *snapshot* of the
configuration (paper §IV-A1), not over privileged access to the switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.hsa.headerspace import HeaderSpace
from repro.hsa.layout import field_slice
from repro.hsa.wildcard import Wildcard
from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.constants import VLAN_NONE
from repro.openflow.actions import (
    Action,
    Drop,
    Flood,
    GotoTable,
    Meter,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)
from repro.openflow.match import Match

#: Symbolic output meaning "punted to the control plane".
CONTROLLER_PORT = -1


@dataclass(frozen=True)
class SnapshotRule:
    """One flow entry as recorded in a configuration snapshot."""

    table_id: int
    priority: int
    match: Match
    actions: Tuple[Action, ...]
    cookie: int = 0

    def identity(self) -> tuple:
        return (self.table_id, self.priority, self.match, self.actions)

    def identity_digest(self) -> bytes:
        """SHA-256 of :meth:`identity`, cached on the instance.

        Rule objects are structurally shared across snapshot versions, so
        caching here makes rehashing a changed switch cost O(new rules)
        instead of re-rendering every identity repr each version.
        """
        cached = self.__dict__.get("_identity_digest")
        if cached is None:
            import hashlib

            cached = hashlib.sha256(repr(self.identity()).encode()).digest()
            object.__setattr__(self, "_identity_digest", cached)
        return cached


@dataclass(frozen=True)
class TransferRule:
    """A compiled rule: match wildcard plus port constraint plus actions."""

    table_id: int
    priority: int
    in_port: Optional[int]
    match_wc: Wildcard
    actions: Tuple[Action, ...]
    source: SnapshotRule


#: One output of a transfer application.
Emission = Tuple[int, HeaderSpace]


class SwitchTransferFunction:
    """The HSA view of one switch's configuration."""

    def __init__(
        self,
        switch_name: str,
        rules: Sequence[SnapshotRule],
        ports: Sequence[int],
        *,
        n_tables: int = 2,
    ) -> None:
        self.switch_name = switch_name
        self.ports = tuple(sorted(ports))
        self._tables: Dict[int, List[TransferRule]] = {
            table_id: [] for table_id in range(n_tables)
        }
        # OpenFlow replacement semantics: a later rule with the same
        # (table, priority, match) overwrites the earlier one, exactly as
        # FlowTable.add does on the switch — otherwise HSA and the data
        # plane disagree on which actions such a flow entry carries.
        deduped: Dict[tuple, SnapshotRule] = {}
        for rule in rules:
            key = (rule.table_id, rule.priority, rule.match)
            # pop-then-insert so a replacement also moves to the back,
            # matching the fresh entry id the switch assigns it
            deduped.pop(key, None)
            deduped[key] = rule
        for rule in deduped.values():
            compiled = TransferRule(
                table_id=rule.table_id,
                priority=rule.priority,
                in_port=rule.match.in_port,
                match_wc=Wildcard.from_match(rule.match),
                actions=tuple(rule.actions),
                source=rule,
            )
            self._tables.setdefault(rule.table_id, []).append(compiled)
        for table_rules in self._tables.values():
            # Priority desc; the sort is stable, so equal-priority rules
            # keep their given order — the same first-installed-wins
            # tie-break the switch pipeline applies via entry ids.
            table_rules.sort(key=lambda r: -r.priority)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply(self, in_port: int, space: HeaderSpace) -> List[Emission]:
        """Run ``space`` arriving on ``in_port`` through the pipeline.

        Returns (out_port, space) emissions; ``CONTROLLER_PORT`` marks
        Packet-In punts.  Dropped space is simply absent from the result.
        """
        return self._apply_table(0, in_port, space)

    def apply_with_drops(
        self, in_port: int, space: HeaderSpace
    ) -> Tuple[List[Emission], HeaderSpace]:
        """Like :meth:`apply`, but also return the space this switch drops.

        The dropped space is the input minus every matched segment whose
        action list produced at least one emission (accounted by the
        *matched* input segment, so rewrites do not confuse the
        bookkeeping).  Conservative on multi-table pipelines: a segment
        that a GotoTable forwards partially is treated as forwarded.
        Table-miss and Drop-action space is exact — which is what the
        blackhole-localization diagnostics need.
        """
        emissions: List[Emission] = []
        forwarded_input = HeaderSpace.empty()
        remaining = space
        for rule in self._tables.get(0, ()):
            if remaining.is_empty():
                break
            if rule.in_port is not None and rule.in_port != in_port:
                continue
            segment = remaining.intersect_wildcard(rule.match_wc)
            if segment.is_empty():
                continue
            produced = self._apply_actions(rule, in_port, segment)
            emissions.extend(produced)
            if produced:
                forwarded_input = forwarded_input.union(segment)
            remaining = remaining.subtract_wildcard(rule.match_wc)
        dropped = space.subtract(forwarded_input)
        return emissions, dropped

    def _apply_table(
        self, table_id: int, in_port: int, space: HeaderSpace
    ) -> List[Emission]:
        emissions: List[Emission] = []
        remaining = space
        for rule in self._tables.get(table_id, ()):
            if remaining.is_empty():
                break
            if rule.in_port is not None and rule.in_port != in_port:
                continue
            segment = remaining.intersect_wildcard(rule.match_wc)
            if segment.is_empty():
                continue
            emissions.extend(self._apply_actions(rule, in_port, segment))
            if all(
                piece.is_subset_of(rule.match_wc) for piece in remaining.wildcards
            ):
                break  # this rule swallows everything still unmatched
            remaining = remaining.subtract_wildcard(rule.match_wc)
        # Table miss: OpenFlow 1.3 default-drops; nothing emitted.
        return emissions

    def _apply_actions(
        self, rule: TransferRule, in_port: int, segment: HeaderSpace
    ) -> List[Emission]:
        emissions: List[Emission] = []
        current = segment
        for action in rule.actions:
            if isinstance(action, SetField):
                current = _rewrite(current, action.field, action.value)
            elif isinstance(action, PushVlan):
                current = _rewrite(current, "vlan_id", action.vlan_id)
            elif isinstance(action, PopVlan):
                current = _rewrite(current, "vlan_id", VLAN_NONE)
            elif isinstance(action, Output):
                emissions.append((action.port, current))
            elif isinstance(action, Flood):
                for port in self.ports:
                    if port != in_port:
                        emissions.append((port, current))
            elif isinstance(action, ToController):
                emissions.append((CONTROLLER_PORT, current))
            elif isinstance(action, GotoTable):
                emissions.extend(
                    self._apply_table(action.table_id, in_port, current)
                )
                break  # goto terminates this action list
            elif isinstance(action, Meter):
                continue  # metering does not change reachability
            elif isinstance(action, Drop):
                break
        return emissions

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def rule_count(self) -> int:
        return sum(len(rules) for rules in self._tables.values())

    def rules(self) -> List[TransferRule]:
        collected: List[TransferRule] = []
        for table_id in sorted(self._tables):
            collected.extend(self._tables[table_id])
        return collected


def _rewrite(
    space: HeaderSpace, field: str, value: Union[int, MacAddress, IPv4Address]
) -> HeaderSpace:
    slice_ = field_slice(field)
    raw = value.value if isinstance(value, (MacAddress, IPv4Address)) else int(value)
    return HeaderSpace(
        (w.rewrite_field(slice_, raw) for w in space.wildcards), prune=False
    )
