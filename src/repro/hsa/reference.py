"""The naive HSA kernel, kept as a differential-testing oracle.

This module is a frozen copy of the evaluation core as it existed before
the fast-path kernel rewrite: linear rule scans with no classifier
index, chained single-wildcard subtraction through the public
constructors, and recursive depth-first propagation with the
O(path-length) loop-membership scan.  It is deliberately *not* kept
DRY with :mod:`repro.hsa.transfer` / :mod:`repro.hsa.reachability` —
sharing the traversal or shadowing logic would blind the differential
property tests to a bug introduced in the fast path.

Scope of the oracle: rule shadowing, multi-table composition, drop
accounting, propagation order, *and* the set algebra itself — the
module carries its own copies of the pre-rewrite intersection,
subtraction, and rewrite routines, built through the public validating
constructors.  That keeps the oracle independent of the trusted
constructors and batched subtraction the fast kernel relies on, and
keeps the E17 baseline honest: timing the reference times the kernel
as it was, not the old control flow over the new algebra.

Not for production use: the recursive walk hits Python's recursion
limit on deep topologies and the linear scans are the exact bottleneck
the fast kernel removes (benchmarked in E17).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.hsa.headerspace import HeaderSpace
from repro.hsa.network_tf import NetworkTransferFunction, PortRef
from repro.hsa.reachability import (
    DropZone,
    Hop,
    LoopReport,
    ReachabilityResult,
    ReachablePath,
    ReachableZone,
)
from repro.hsa.layout import field_slice
from repro.hsa.transfer import (
    CONTROLLER_PORT,
    Emission,
    SnapshotRule,
    TransferRule,
)
from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.constants import VLAN_NONE
from repro.openflow.actions import (
    Drop,
    Flood,
    GotoTable,
    Meter,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)
from repro.hsa.wildcard import Wildcard


# ----------------------------------------------------------------------
# Pre-rewrite set algebra (public validating constructors throughout)
# ----------------------------------------------------------------------


def _wc_intersect(a: Wildcard, b: Wildcard) -> "Wildcard | None":
    common = a.mask & b.mask
    if (a.value ^ b.value) & common:
        return None
    return Wildcard(value=a.value | b.value, mask=a.mask | b.mask)


def _wc_subtract(a: Wildcard, b: Wildcard) -> List[Wildcard]:
    if _wc_intersect(a, b) is None:
        return [a]
    pieces: List[Wildcard] = []
    fixed_value, fixed_mask = a.value, a.mask
    remaining = b.mask & ~a.mask
    while remaining:
        bit = remaining & -remaining
        remaining &= remaining - 1
        other_bit = b.value & bit
        pieces.append(
            Wildcard(
                value=(fixed_value & ~bit) | (bit ^ other_bit),
                mask=fixed_mask | bit,
            )
        )
        fixed_value = (fixed_value & ~bit) | other_bit
        fixed_mask |= bit
    return pieces


def _hs_intersect_wildcard(space: HeaderSpace, wildcard: Wildcard) -> HeaderSpace:
    pieces = []
    for a in space.wildcards:
        joined = _wc_intersect(a, wildcard)
        if joined is not None:
            pieces.append(joined)
    return HeaderSpace(pieces, prune=False)


def _hs_subtract(space: HeaderSpace, other: HeaderSpace) -> HeaderSpace:
    pieces: List[Wildcard] = list(space.wildcards)
    for b in other.wildcards:
        next_pieces: List[Wildcard] = []
        for piece in pieces:
            next_pieces.extend(_wc_subtract(piece, b))
        pieces = next_pieces
        if not pieces:
            break
    return HeaderSpace(pieces)


def _hs_rewrite(space: HeaderSpace, field: str, value) -> HeaderSpace:
    slice_ = field_slice(field)
    raw = value.value if isinstance(value, (MacAddress, IPv4Address)) else int(value)
    field_mask = slice_.mask
    return HeaderSpace(
        [
            Wildcard(
                value=(w.value & ~field_mask) | slice_.pack(raw),
                mask=w.mask | field_mask,
            )
            for w in space.wildcards
        ]
    )


class ReferenceSwitchTransferFunction:
    """Pre-rewrite switch pipeline: full-table linear scans."""

    def __init__(
        self,
        switch_name: str,
        rules: Sequence[SnapshotRule],
        ports: Sequence[int],
        *,
        n_tables: int = 2,
    ) -> None:
        self.switch_name = switch_name
        self.ports = tuple(sorted(ports))
        self._tables: Dict[int, List[TransferRule]] = {
            table_id: [] for table_id in range(n_tables)
        }
        deduped: Dict[tuple, SnapshotRule] = {}
        for rule in rules:
            key = (rule.table_id, rule.priority, rule.match)
            deduped.pop(key, None)
            deduped[key] = rule
        for rule in deduped.values():
            compiled = TransferRule(
                table_id=rule.table_id,
                priority=rule.priority,
                in_port=rule.match.in_port,
                match_wc=Wildcard.from_match(rule.match),
                actions=tuple(rule.actions),
                source=rule,
            )
            self._tables.setdefault(rule.table_id, []).append(compiled)
        for table_rules in self._tables.values():
            table_rules.sort(key=lambda r: -r.priority)

    def apply(self, in_port: int, space: HeaderSpace) -> List[Emission]:
        return self._apply_table(0, in_port, space)

    def apply_with_drops(
        self, in_port: int, space: HeaderSpace
    ) -> Tuple[List[Emission], HeaderSpace]:
        emissions: List[Emission] = []
        forwarded_input = HeaderSpace.empty()
        remaining = space
        for rule in self._tables.get(0, ()):
            if remaining.is_empty():
                break
            if rule.in_port is not None and rule.in_port != in_port:
                continue
            segment = _hs_intersect_wildcard(remaining, rule.match_wc)
            if segment.is_empty():
                continue
            produced = self._apply_actions(rule, in_port, segment)
            emissions.extend(produced)
            if produced:
                forwarded_input = forwarded_input.union(segment)
            remaining = _hs_subtract(remaining, HeaderSpace.single(rule.match_wc))
        dropped = _hs_subtract(space, forwarded_input)
        return emissions, dropped

    def _apply_table(
        self, table_id: int, in_port: int, space: HeaderSpace
    ) -> List[Emission]:
        emissions: List[Emission] = []
        remaining = space
        for rule in self._tables.get(table_id, ()):
            if remaining.is_empty():
                break
            if rule.in_port is not None and rule.in_port != in_port:
                continue
            segment = _hs_intersect_wildcard(remaining, rule.match_wc)
            if segment.is_empty():
                continue
            emissions.extend(self._apply_actions(rule, in_port, segment))
            if all(
                piece.is_subset_of(rule.match_wc) for piece in remaining.wildcards
            ):
                break
            remaining = _hs_subtract(remaining, HeaderSpace.single(rule.match_wc))
        return emissions

    def _apply_actions(
        self, rule: TransferRule, in_port: int, segment: HeaderSpace
    ) -> List[Emission]:
        emissions: List[Emission] = []
        current = segment
        for action in rule.actions:
            if isinstance(action, SetField):
                current = _hs_rewrite(current, action.field, action.value)
            elif isinstance(action, PushVlan):
                current = _hs_rewrite(current, "vlan_id", action.vlan_id)
            elif isinstance(action, PopVlan):
                current = _hs_rewrite(current, "vlan_id", VLAN_NONE)
            elif isinstance(action, Output):
                emissions.append((action.port, current))
            elif isinstance(action, Flood):
                for port in self.ports:
                    if port != in_port:
                        emissions.append((port, current))
            elif isinstance(action, ToController):
                emissions.append((CONTROLLER_PORT, current))
            elif isinstance(action, GotoTable):
                emissions.extend(
                    self._apply_table(action.table_id, in_port, current)
                )
                break
            elif isinstance(action, Meter):
                continue
            elif isinstance(action, Drop):
                break
        return emissions

    def rule_count(self) -> int:
        return sum(len(rules) for rules in self._tables.values())

    def rules(self) -> List[TransferRule]:
        collected: List[TransferRule] = []
        for table_id in sorted(self._tables):
            collected.extend(self._tables[table_id])
        return collected


class ReferenceReachabilityAnalyzer:
    """Pre-rewrite propagation: recursive DFS, tuple-scan loop check."""

    def __init__(
        self,
        network_tf: NetworkTransferFunction,
        *,
        max_depth: int = 64,
        collect_paths: bool = True,
        collect_drops: bool = False,
    ) -> None:
        self.network_tf = network_tf
        self.max_depth = max_depth
        self.collect_paths = collect_paths
        self.collect_drops = collect_drops

    def analyze(
        self, start_switch: str, start_port: int, space: HeaderSpace
    ) -> ReachabilityResult:
        result = ReachabilityResult()
        seen: Dict[PortRef, HeaderSpace] = {}
        self._expand(
            start_switch, start_port, space, (), result, seen, depth=0
        )
        return result

    def _expand(
        self,
        switch: str,
        in_port: int,
        space: HeaderSpace,
        path: Tuple[Hop, ...],
        result: ReachabilityResult,
        seen: Dict[PortRef, HeaderSpace],
        depth: int,
    ) -> None:
        if space.is_empty() or depth > self.max_depth:
            return
        key = (switch, in_port)
        if any(hop[0] == switch and hop[1] == in_port for hop in path):
            result.loops.append(
                LoopReport(switch=switch, port=in_port, cycle=path, space=space)
            )
            return
        covered = seen.get(key)
        if covered is not None:
            space = _hs_subtract(space, covered)
            if space.is_empty():
                return
            seen[key] = covered.union(space)
        else:
            seen[key] = space
        result.expansions += 1
        result.switches_traversed.add(switch)
        if self.collect_drops:
            tf = self.network_tf.transfer_functions.get(switch)
            if tf is None:
                return
            emissions, dropped = tf.apply_with_drops(in_port, space)
            if not dropped.is_empty():
                result.drops.append(
                    DropZone(switch=switch, port=in_port, space=dropped, depth=depth)
                )
        else:
            emissions = self.network_tf.apply_switch(switch, in_port, space)
        for out_port, out_space in emissions:
            if out_space.is_empty():
                continue
            hop: Hop = (switch, in_port, out_port)
            if out_port == CONTROLLER_PORT:
                self._record_zone(
                    result, "controller", switch, out_port, out_space, path + (hop,)
                )
                continue
            role = self.network_tf.role_of(switch, out_port)
            if role.kind == "edge":
                self._record_zone(
                    result, "edge", switch, out_port, out_space, path + (hop,)
                )
            elif role.kind == "link" and role.peer is not None:
                peer_switch, peer_port = role.peer
                result.links_traversed.add(frozenset((switch, peer_switch)))
                self._expand(
                    peer_switch,
                    peer_port,
                    out_space,
                    path + (hop,),
                    result,
                    seen,
                    depth + 1,
                )
            else:
                self._record_zone(
                    result, "unbound", switch, out_port, out_space, path + (hop,)
                )

    def _record_zone(
        self,
        result: ReachabilityResult,
        kind: str,
        switch: str,
        port: int,
        space: HeaderSpace,
        hops: Tuple[Hop, ...],
    ) -> None:
        zone = ReachableZone(kind=kind, switch=switch, port=port, space=space)
        result.zones.append(zone)
        if self.collect_paths:
            result.paths.append(ReachablePath(hops=hops, endpoint=zone))

    def sources_reaching(
        self,
        target_switch: str,
        target_port: int,
        space: HeaderSpace,
    ) -> Dict[PortRef, HeaderSpace]:
        sources: Dict[PortRef, HeaderSpace] = {}
        for switch, port in self.network_tf.all_edge_ports():
            if (switch, port) == (target_switch, target_port):
                continue
            result = self.analyze(switch, port, space)
            arriving = HeaderSpace.empty()
            for zone in result.edge_zones():
                if zone.port_ref == (target_switch, target_port):
                    arriving = arriving.union(zone.space)
            if not arriving.is_empty():
                sources[(switch, port)] = arriving
        return sources

    def detect_all_loops(self, space: HeaderSpace) -> List[LoopReport]:
        loops: List[LoopReport] = []
        for switch, port in self.network_tf.all_edge_ports():
            loops.extend(self.analyze(switch, port, space).loops)
        return loops


def reference_network_tf(
    fast_ntf: NetworkTransferFunction,
) -> NetworkTransferFunction:
    """The same network with every switch recompiled by the naive kernel.

    Convenience for differential tests and the E17 benchmark: rebuilds
    each :class:`ReferenceSwitchTransferFunction` from the fast TF's
    source rules, sharing the wiring plan and edge-port map.
    """
    tfs = {}
    for name, tf in fast_ntf.transfer_functions.items():
        source_rules = [rule.source for rule in tf.rules()]
        n_tables = max(tf._tables) + 1 if tf._tables else 2
        tfs[name] = ReferenceSwitchTransferFunction(
            name, source_rules, ports=tf.ports, n_tables=n_tables
        )
    return NetworkTransferFunction(
        tfs, fast_ntf.wiring, fast_ntf.edge_ports
    )
