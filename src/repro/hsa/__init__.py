"""Header Space Analysis — the paper's logical verification engine.

A from-scratch implementation of the static data-plane analysis of
Kazemian et al. (NSDI'12), which the paper names as the mechanism behind
RVaaS's logical verification (§IV-A2: "the RVaaS controller may perform
Header Space Analysis, or simply emulate the network").

Packets are points in {0,1}^L for the packed header layout
(:mod:`~repro.hsa.layout`); sets of packets are unions of ternary
wildcard expressions (:mod:`~repro.hsa.wildcard`,
:mod:`~repro.hsa.headerspace`); switches become transfer functions
derived from their flow tables with exact priority shadowing
(:mod:`~repro.hsa.transfer`); and reachability / path / loop analysis
propagates header spaces over the wiring plan
(:mod:`~repro.hsa.reachability`).

The production kernel is the fast path: indexed rule classifiers,
trusted low-overhead wildcard construction, iterative worklist
propagation, and optional parallel fan-out of whole-network sweeps
(:mod:`~repro.hsa.parallel`).  The original naive kernel is retained in
:mod:`~repro.hsa.reference` as the oracle for differential testing.
"""

from repro.hsa.atoms import (
    GLOBAL_ATOM_TABLE,
    AtomNetwork,
    AtomSpace,
    AtomTable,
    MatrixRow,
    ReachabilityMatrix,
)
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.layout import FIELD_LAYOUT, HEADER_BITS, field_slice, pack_headers
from repro.hsa.parallel import FanOutPool, default_workers
from repro.hsa.reachability import (
    DropZone,
    LoopReport,
    ReachabilityAnalyzer,
    ReachablePath,
    ReachableZone,
    build_reachability_matrix,
)
from repro.hsa.reference import (
    ReferenceReachabilityAnalyzer,
    ReferenceSwitchTransferFunction,
    reference_network_tf,
)
from repro.hsa.transfer import KernelStats, SwitchTransferFunction, TransferRule
from repro.hsa.network_tf import NetworkTransferFunction
from repro.hsa.wildcard import Wildcard

__all__ = [
    "AtomNetwork",
    "AtomSpace",
    "AtomTable",
    "DropZone",
    "FIELD_LAYOUT",
    "FanOutPool",
    "GLOBAL_ATOM_TABLE",
    "HEADER_BITS",
    "HeaderSpace",
    "KernelStats",
    "LoopReport",
    "MatrixRow",
    "NetworkTransferFunction",
    "ReachabilityAnalyzer",
    "ReachabilityMatrix",
    "ReachablePath",
    "ReachableZone",
    "build_reachability_matrix",
    "ReferenceReachabilityAnalyzer",
    "ReferenceSwitchTransferFunction",
    "SwitchTransferFunction",
    "TransferRule",
    "Wildcard",
    "default_workers",
    "field_slice",
    "pack_headers",
    "reference_network_tf",
]
