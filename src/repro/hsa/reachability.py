"""Reachability, path and loop analysis over a network transfer function.

This module implements the analyses RVaaS runs to answer client queries
(paper §IV-A2 and §IV-B): which edge ports a client's traffic can reach
(isolation), which switches/links it can traverse (geo-location), how
long its paths are (optimality), and whether forwarding loops exist.

The core routine is a depth-first propagation of header spaces with a
coverage guard: a (switch, in-port) is re-expanded only for the part of
the space not already seen there, which guarantees termination even with
forwarding loops and keeps complexity tied to the real rule interactions.

The propagation runs on an explicit worklist (not recursion), so deep
topologies cannot hit Python's recursion limit, and the on-path loop
check is an O(1) set-membership test against a visited set carried per
branch — branches that never fork share one set, so a pure chain costs
O(length), not O(length²).  The worklist is ordered to reproduce the
recursive DFS visit order exactly; the pre-rewrite recursive analyzer
survives in :mod:`repro.hsa.reference` as the differential oracle.

Whole-network sweeps (``sources_reaching``, ``detect_all_loops``) fan
their independent per-ingress propagations over an optional worker pool
(:mod:`repro.hsa.parallel`); results are merged in sorted-candidate
order, so any worker count returns bit-identical answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hsa.farm import FarmError, FarmTaskError
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.network_tf import NetworkTransferFunction, PortRef
from repro.hsa.parallel import FanOutPool
from repro.hsa.transfer import CONTROLLER_PORT

#: One forwarding step: (switch, in_port, out_port).
Hop = Tuple[str, int, int]


@dataclass(frozen=True)
class ReachableZone:
    """An endpoint the analysed traffic can arrive at."""

    kind: str  # "edge" | "controller" | "unbound"
    switch: str
    port: int
    space: HeaderSpace

    @property
    def port_ref(self) -> PortRef:
        return (self.switch, self.port)


@dataclass(frozen=True)
class ReachablePath:
    """One concrete path from ingress to an endpoint, with surviving space."""

    hops: Tuple[Hop, ...]
    endpoint: ReachableZone

    def switches(self) -> Tuple[str, ...]:
        return tuple(hop[0] for hop in self.hops)

    def length(self) -> int:
        return len(self.hops)

    def links(self) -> Tuple[Tuple[str, str], ...]:
        """Inter-switch links traversed, as ordered (from, to) pairs."""
        pairs = []
        for (sw_a, _in_a, _out_a), (sw_b, _in_b, _out_b) in zip(
            self.hops, self.hops[1:]
        ):
            pairs.append((sw_a, sw_b))
        return tuple(pairs)


@dataclass(frozen=True)
class DropZone:
    """Header space that dies at a switch (table miss or Drop action).

    ``depth`` distinguishes ingress policy drops (0 — e.g. anti-spoofing
    guards at the access switch) from mid-path dead ends (>0 — traffic
    that was accepted and forwarded, then silently discarded: the
    structural signature of a blackhole)."""

    switch: str
    port: int
    space: HeaderSpace
    depth: int


@dataclass(frozen=True)
class LoopReport:
    """A forwarding loop: the traffic re-entered a port it already crossed."""

    switch: str
    port: int
    cycle: Tuple[Hop, ...]
    space: HeaderSpace


@dataclass
class ReachabilityResult:
    """Everything one propagation discovered."""

    zones: List[ReachableZone] = field(default_factory=list)
    paths: List[ReachablePath] = field(default_factory=list)
    loops: List[LoopReport] = field(default_factory=list)
    drops: List[DropZone] = field(default_factory=list)
    switches_traversed: set[str] = field(default_factory=set)
    links_traversed: set[frozenset[str]] = field(default_factory=set)
    expansions: int = 0  # work counter for scaling experiments
    worklist_peak: int = 0  # deepest the explicit worklist grew

    def edge_zones(self) -> List[ReachableZone]:
        return [z for z in self.zones if z.kind == "edge"]

    def edge_port_refs(self) -> frozenset[PortRef]:
        return frozenset(z.port_ref for z in self.edge_zones())

    def reaches(self, switch: str, port: int) -> bool:
        return any(
            z.switch == switch and z.port == port for z in self.edge_zones()
        )


class ReachabilityAnalyzer:
    """Propagates header spaces over a :class:`NetworkTransferFunction`."""

    #: Worklist item tags.  ``_EXPAND`` frames propagate a space into an
    #: ingress; ``_ZONE`` frames record an endpoint.  Interleaving both on
    #: one stack reproduces the recursive DFS result order exactly: items
    #: are pushed in reverse emission order, so an expansion's whole
    #: subtree is drained before its next sibling emission is recorded.
    _ZONE = 0
    _EXPAND = 1

    def __init__(
        self,
        network_tf: NetworkTransferFunction,
        *,
        max_depth: int = 64,
        collect_paths: bool = True,
        collect_drops: bool = False,
        workers: int = 1,
        pool_mode: str = "thread",
    ) -> None:
        self.network_tf = network_tf
        self.max_depth = max_depth
        self.collect_paths = collect_paths
        self.collect_drops = collect_drops
        self.workers = max(1, workers)
        self.pool_mode = pool_mode
        #: persistent pools, one per (workers, mode) this analyzer has
        #: fanned out with — executors are reused across sweeps instead
        #: of being constructed per call
        self._pools: Dict[Tuple[int, str], FanOutPool] = {}

    def __getstate__(self) -> dict:
        # Process-mode sweeps ship ``self.analyze`` (a bound method) to
        # farm workers; executors and their locks are per-process and
        # must not ride along.  The worker-side copy re-creates pools
        # lazily if it ever fans out (it won't — tasks run serially).
        state = self.__dict__.copy()
        state["_pools"] = {}
        return state

    # ------------------------------------------------------------------
    # Forward reachability
    # ------------------------------------------------------------------

    def analyze(
        self, start_switch: str, start_port: int, space: HeaderSpace
    ) -> ReachabilityResult:
        """Propagate ``space`` injected at (start_switch, start_port)."""
        result = ReachabilityResult()
        seen: Dict[PortRef, HeaderSpace] = {}
        # Frame: (_EXPAND, switch, in_port, space, path, visited, depth).
        # ``visited`` is the set of ingresses on the current path; each
        # frame owns its set exclusively, so single-child chains mutate
        # in place and only forks pay for a copy.
        stack: List[tuple] = [
            (self._EXPAND, start_switch, start_port, space, (), set(), 0)
        ]
        peak = 1
        max_depth = self.max_depth
        collect_drops = self.collect_drops
        network_tf = self.network_tf
        role_of = network_tf.role_of
        while stack:
            frame = stack.pop()
            if frame[0] == self._ZONE:
                _tag, kind, switch, port, out_space, hops = frame
                self._record_zone(result, kind, switch, port, out_space, hops)
                continue
            _tag, switch, in_port, space, path, visited, depth = frame
            if space.is_empty() or depth > max_depth:
                continue
            key = (switch, in_port)
            # Loop check: did this traffic already cross this ingress on
            # the current path?
            if key in visited:
                result.loops.append(
                    LoopReport(
                        switch=switch, port=in_port, cycle=path, space=space
                    )
                )
                continue
            covered = seen.get(key)
            if covered is not None:
                space = space.subtract_many(covered.wildcards)
                if space.is_empty():
                    continue
                # After the subtraction the surviving pieces are disjoint
                # from every covered piece, so no subset relation exists
                # in either direction — plain concatenation equals the
                # pruning union without its O(n²) subset scan.
                seen[key] = HeaderSpace._from_pieces(
                    covered.wildcards + space.wildcards
                )
            else:
                seen[key] = space
            result.expansions += 1
            result.switches_traversed.add(switch)
            if collect_drops:
                tf = network_tf.transfer_functions.get(switch)
                if tf is None:
                    continue
                emissions, dropped = tf.apply_with_drops(in_port, space)
                if not dropped.is_empty():
                    result.drops.append(
                        DropZone(
                            switch=switch, port=in_port, space=dropped, depth=depth
                        )
                    )
            else:
                emissions = network_tf.apply_switch(switch, in_port, space)
            children: List[tuple] = []
            n_links = 0
            for out_port, out_space in emissions:
                if out_space.is_empty():
                    continue
                hop: Hop = (switch, in_port, out_port)
                if out_port == CONTROLLER_PORT:
                    children.append(
                        (self._ZONE, "controller", switch, out_port, out_space, path + (hop,))
                    )
                    continue
                role = role_of(switch, out_port)
                if role.kind == "edge":
                    children.append(
                        (self._ZONE, "edge", switch, out_port, out_space, path + (hop,))
                    )
                elif role.kind == "link" and role.peer is not None:
                    peer_switch, peer_port = role.peer
                    result.links_traversed.add(frozenset((switch, peer_switch)))
                    n_links += 1
                    children.append(
                        (
                            self._EXPAND,
                            peer_switch,
                            peer_port,
                            out_space,
                            path + (hop,),
                            None,  # visited set assigned below
                            depth + 1,
                        )
                    )
                else:
                    children.append(
                        (self._ZONE, "unbound", switch, out_port, out_space, path + (hop,))
                    )
            if n_links:
                # Hand this frame's (now unused) visited set to the first
                # link child; every further fork gets its own copy.
                visited.add(key)
                handed_off = False
                for index, child in enumerate(children):
                    if child[0] != self._EXPAND:
                        continue
                    branch_visited = visited if not handed_off else set(visited)
                    handed_off = True
                    children[index] = child[:5] + (branch_visited, child[6])
            stack.extend(reversed(children))
            if len(stack) > peak:
                peak = len(stack)
        result.worklist_peak = peak
        return result

    def _record_zone(
        self,
        result: ReachabilityResult,
        kind: str,
        switch: str,
        port: int,
        space: HeaderSpace,
        hops: Tuple[Hop, ...],
    ) -> None:
        zone = ReachableZone(kind=kind, switch=switch, port=port, space=space)
        result.zones.append(zone)
        if self.collect_paths:
            result.paths.append(ReachablePath(hops=hops, endpoint=zone))

    # ------------------------------------------------------------------
    # Inverse queries
    # ------------------------------------------------------------------

    def sources_reaching(
        self,
        target_switch: str,
        target_port: int,
        space: HeaderSpace,
        *,
        candidate_ports: Optional[tuple[PortRef, ...]] = None,
        analyze_fn=None,
        workers: Optional[int] = None,
        pool_mode: Optional[str] = None,
    ) -> Dict[PortRef, HeaderSpace]:
        """Which edge ports can inject traffic that arrives at the target?

        Computed by forward propagation from every candidate edge port —
        exact, and at the network sizes of this reproduction cheaper than
        maintaining inverted transfer functions.  ``analyze_fn`` lets the
        verification engine substitute its memoized per-ingress
        propagation, so repeated inverse queries on the same snapshot
        reuse one forward pass per candidate port.  With ``workers > 1``
        the candidate propagations fan out over a pool; the sources map
        is assembled in candidate order either way, so the answer is
        bit-identical for any worker count.  Process pools require a
        picklable ``analyze_fn`` (the default bound method is).
        """
        candidates = [
            ref
            for ref in (candidate_ports or self.network_tf.all_edge_ports())
            if ref != (target_switch, target_port)
        ]
        analyze = analyze_fn or self.analyze
        results = self._fan_out(workers, pool_mode).map(
            _fan_analyze, (analyze, space), candidates
        )
        sources: Dict[PortRef, HeaderSpace] = {}
        for (switch, port), result in zip(candidates, results):
            arriving = HeaderSpace.empty()
            for zone in result.edge_zones():
                if zone.port_ref == (target_switch, target_port):
                    arriving = arriving.union(zone.space)
            if not arriving.is_empty():
                sources[(switch, port)] = arriving
        return sources

    # ------------------------------------------------------------------
    # Whole-network sweeps
    # ------------------------------------------------------------------

    def detect_all_loops(
        self,
        space: HeaderSpace,
        *,
        workers: Optional[int] = None,
        pool_mode: Optional[str] = None,
    ) -> List[LoopReport]:
        """Check every edge ingress for forwarding loops on ``space``.

        The per-ingress propagations are independent; with ``workers >
        1`` they fan out over a pool and the reports are concatenated in
        edge-port order — identical output for any worker count.
        """
        candidates = self.network_tf.all_edge_ports()
        results = self._fan_out(workers, pool_mode).map(
            _fan_analyze, (self.analyze, space), candidates
        )
        loops: List[LoopReport] = []
        for result in results:
            loops.extend(result.loops)
        return loops

    def _fan_out(
        self, workers: Optional[int], pool_mode: Optional[str]
    ) -> FanOutPool:
        key = (
            max(1, workers if workers is not None else self.workers),
            pool_mode if pool_mode is not None else self.pool_mode,
        )
        pool = self._pools.get(key)
        if pool is None or pool.closed:
            pool = FanOutPool(*key)
            self._pools[key] = pool
        return pool

    def close(self) -> None:
        """Tear down the persistent fan-out pools (idempotent)."""
        for pool in self._pools.values():
            pool.close()


def _fan_analyze(context, port_ref: PortRef) -> ReachabilityResult:
    """One fan-out task: propagate ``space`` from one candidate ingress."""
    analyze, space = context
    switch, port = port_ref
    return analyze(switch, port, space)


# ----------------------------------------------------------------------
# All-ingress matrix precomputation (atom backend)
# ----------------------------------------------------------------------


def _matrix_rows(
    pool: FanOutPool,
    refs,
    *,
    network_tf,
    atom_space,
    atom_network,
    max_depth: int,
    farm_spec: Optional[dict],
):
    """Rows for ``refs``, on the compile farm when one is wired up.

    With a ``farm_spec`` (the engine's content-addressed part payload)
    and a process-mode pool, the rows are propagated on worker-side
    :class:`~repro.hsa.atoms.AtomNetwork` mirrors — delta-patched from
    the previous snapshot version, so churn ships only changed parts.
    Otherwise the pool's generic map runs ``atom_network`` directly
    (threads share it; a process pool ships it once per content digest)
    — process mode is honored either way, never silently downgraded.
    A failed farm batch falls back loudly to the generic path.
    """
    from repro.hsa.atoms import AtomNetwork

    refs = list(refs)
    if farm_spec is not None and pool.is_process and len(refs) > 1:
        try:
            return (
                pool.farm_matrix(refs, max_depth=max_depth, **farm_spec),
                atom_network,
            )
        except (FarmError, FarmTaskError) as exc:
            pool._loud_fallback(f"matrix farm batch failed: {exc!r}")
    if atom_network is None:
        atom_network = AtomNetwork(network_tf, atom_space, max_depth=max_depth)
    return pool.map(_fan_matrix_row, atom_network, refs), atom_network


def build_reachability_matrix(
    network_tf,
    atom_space,
    *,
    max_depth: int = 64,
    workers: int = 1,
    pool_mode: str = "thread",
    atom_network=None,
    pool: Optional[FanOutPool] = None,
    farm_spec: Optional[dict] = None,
):
    """Propagate the full header space from every edge ingress, bitwise.

    One :class:`~repro.hsa.atoms.MatrixRow` per edge port, computed in
    the atom domain and fanned out over the same order-preserving
    :class:`FanOutPool` the wildcard sweeps use — so the matrix is
    deterministic for any worker count, thread or process.  Callers
    with a persistent pool (the engine) pass it via ``pool``; otherwise
    a transient one is built from ``workers``/``pool_mode`` and closed
    before returning.  ``farm_spec`` routes the rows to the compile
    farm's content-addressed mirrors (see :func:`_matrix_rows`) — in
    that case the parent-side ``atom_network`` is never needed and the
    build skips compiling one.

    Callers that keep a predecessor state for matrix repair pass a
    pre-built ``atom_network`` so the compiled pipelines survive the
    build and can seed the next repair.
    """
    from repro.hsa.atoms import ReachabilityMatrix

    ingresses = network_tf.all_edge_ports()
    owned = pool is None
    if pool is None:
        pool = FanOutPool(workers, pool_mode)
    try:
        rows, _network = _matrix_rows(
            pool,
            ingresses,
            network_tf=network_tf,
            atom_space=atom_space,
            atom_network=atom_network,
            max_depth=max_depth,
            farm_spec=farm_spec,
        )
    finally:
        if owned:
            pool.close()
    return ReachabilityMatrix(atom_space, dict(zip(ingresses, rows)))


@dataclass
class MatrixRepairStats:
    """What one :func:`repair_reachability_matrix` call did."""

    rows_reused: int = 0  # rows carried over (renumbered, not re-propagated)
    rows_repaired: int = 0  # rows re-propagated from their ingress
    atoms_split: int = 0  # old cells the new universe refined
    space_changed: bool = False  # the constraint set itself changed


def repair_reachability_matrix(
    previous_matrix,
    network_tf,
    atom_space,
    touched_switches,
    *,
    previous_network=None,
    max_depth: int = 64,
    workers: int = 1,
    pool_mode: str = "thread",
    pool: Optional[FanOutPool] = None,
    farm_spec: Optional[dict] = None,
):
    """Repair a predecessor matrix in place of a full rebuild.

    The dependency argument: a row's propagation expanded only at the
    switches in its ``traversed`` set, so if none of those switches'
    transfer entries changed, re-propagating it would walk the identical
    rule sequence and record the identical arrivals — the row is carried
    over, with its bitsets renumbered through the
    :class:`~repro.hsa.atoms.AtomRemap` cell-renumbering table when the
    delta grew or shrank the constraint set.  Only rows whose traversed
    set intersects ``touched_switches`` (plus ingresses the predecessor
    never saw) are re-propagated, fanned out exactly like a cold build.

    Raises :class:`~repro.hsa.atoms.RemapInexact` when a reused row's
    bitsets are not exactly representable in the new universe (a retired
    constant merged cells a live set still distinguishes) — the caller
    falls back to :func:`build_reachability_matrix`.

    Returns ``(matrix, atom_network, stats)``; ``atom_network`` reuses
    the predecessor's compiled pipelines for untouched switches and
    seeds the *next* repair.  On the farm path (``farm_spec`` with a
    process pool) the dirty rows run on worker-side mirrors — which
    hold the delta-patched pipelines themselves — so no parent-side
    :class:`~repro.hsa.atoms.AtomNetwork` is compiled and the returned
    ``atom_network`` is ``None`` (callers rebuild lazily if they need
    boundary rows).
    """
    from repro.hsa.atoms import AtomRemap, ReachabilityMatrix

    remap = AtomRemap(previous_matrix.space, atom_space)
    touched = frozenset(touched_switches)
    ingresses = network_tf.all_edge_ports()
    dirty: List[PortRef] = []
    for ref in ingresses:
        row = previous_matrix.row(ref)
        if row is None or not touched.isdisjoint(row.traversed):
            dirty.append(ref)
    # Renumber the reused rows *before* paying the fan-out, so an
    # inexact remap falls back without wasted propagation work.
    stats = MatrixRepairStats(
        atoms_split=remap.splits, space_changed=not remap.identity
    )
    rows: Dict[PortRef, "object"] = {}
    dirty_set = frozenset(dirty)
    for ref in ingresses:
        if ref in dirty_set:
            rows[ref] = None  # filled from the fan-out below
        else:
            rows[ref] = remap.remap_row(previous_matrix.row(ref))
            stats.rows_reused += 1
    owned = pool is None
    if pool is None:
        pool = FanOutPool(workers, pool_mode)
    atom_network = None
    try:
        if not (farm_spec is not None and pool.is_process and len(dirty) > 1):
            # Thread/generic path (and single-row repairs, where the
            # farm round-trip is not worth it): patch the parent-side
            # network from its predecessor's compiled pipelines.
            from repro.hsa.atoms import AtomNetwork

            atom_network = AtomNetwork(
                network_tf,
                atom_space,
                max_depth=max_depth,
                reuse_from=previous_network,
                touched=touched_switches,
            )
        fresh, atom_network = _matrix_rows(
            pool,
            dirty,
            network_tf=network_tf,
            atom_space=atom_space,
            atom_network=atom_network,
            max_depth=max_depth,
            farm_spec=farm_spec,
        )
    finally:
        if owned:
            pool.close()
    for ref, row in zip(dirty, fresh):
        rows[ref] = row
        stats.rows_repaired += 1
    return ReachabilityMatrix(atom_space, rows), atom_network, stats


def _fan_matrix_row(atom_network, port_ref: PortRef):
    return atom_network.propagate(*port_ref)
