"""Reachability, path and loop analysis over a network transfer function.

This module implements the analyses RVaaS runs to answer client queries
(paper §IV-A2 and §IV-B): which edge ports a client's traffic can reach
(isolation), which switches/links it can traverse (geo-location), how
long its paths are (optimality), and whether forwarding loops exist.

The core routine is a depth-first propagation of header spaces with a
coverage guard: a (switch, in-port) is re-expanded only for the part of
the space not already seen there, which guarantees termination even with
forwarding loops and keeps complexity tied to the real rule interactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hsa.headerspace import HeaderSpace
from repro.hsa.network_tf import NetworkTransferFunction, PortRef
from repro.hsa.transfer import CONTROLLER_PORT

#: One forwarding step: (switch, in_port, out_port).
Hop = Tuple[str, int, int]


@dataclass(frozen=True)
class ReachableZone:
    """An endpoint the analysed traffic can arrive at."""

    kind: str  # "edge" | "controller" | "unbound"
    switch: str
    port: int
    space: HeaderSpace

    @property
    def port_ref(self) -> PortRef:
        return (self.switch, self.port)


@dataclass(frozen=True)
class ReachablePath:
    """One concrete path from ingress to an endpoint, with surviving space."""

    hops: Tuple[Hop, ...]
    endpoint: ReachableZone

    def switches(self) -> Tuple[str, ...]:
        return tuple(hop[0] for hop in self.hops)

    def length(self) -> int:
        return len(self.hops)

    def links(self) -> Tuple[Tuple[str, str], ...]:
        """Inter-switch links traversed, as ordered (from, to) pairs."""
        pairs = []
        for (sw_a, _in_a, _out_a), (sw_b, _in_b, _out_b) in zip(
            self.hops, self.hops[1:]
        ):
            pairs.append((sw_a, sw_b))
        return tuple(pairs)


@dataclass(frozen=True)
class DropZone:
    """Header space that dies at a switch (table miss or Drop action).

    ``depth`` distinguishes ingress policy drops (0 — e.g. anti-spoofing
    guards at the access switch) from mid-path dead ends (>0 — traffic
    that was accepted and forwarded, then silently discarded: the
    structural signature of a blackhole)."""

    switch: str
    port: int
    space: HeaderSpace
    depth: int


@dataclass(frozen=True)
class LoopReport:
    """A forwarding loop: the traffic re-entered a port it already crossed."""

    switch: str
    port: int
    cycle: Tuple[Hop, ...]
    space: HeaderSpace


@dataclass
class ReachabilityResult:
    """Everything one propagation discovered."""

    zones: List[ReachableZone] = field(default_factory=list)
    paths: List[ReachablePath] = field(default_factory=list)
    loops: List[LoopReport] = field(default_factory=list)
    drops: List[DropZone] = field(default_factory=list)
    switches_traversed: set[str] = field(default_factory=set)
    links_traversed: set[frozenset[str]] = field(default_factory=set)
    expansions: int = 0  # work counter for scaling experiments

    def edge_zones(self) -> List[ReachableZone]:
        return [z for z in self.zones if z.kind == "edge"]

    def edge_port_refs(self) -> frozenset[PortRef]:
        return frozenset(z.port_ref for z in self.edge_zones())

    def reaches(self, switch: str, port: int) -> bool:
        return any(
            z.switch == switch and z.port == port for z in self.edge_zones()
        )


class ReachabilityAnalyzer:
    """Propagates header spaces over a :class:`NetworkTransferFunction`."""

    def __init__(
        self,
        network_tf: NetworkTransferFunction,
        *,
        max_depth: int = 64,
        collect_paths: bool = True,
        collect_drops: bool = False,
    ) -> None:
        self.network_tf = network_tf
        self.max_depth = max_depth
        self.collect_paths = collect_paths
        self.collect_drops = collect_drops

    # ------------------------------------------------------------------
    # Forward reachability
    # ------------------------------------------------------------------

    def analyze(
        self, start_switch: str, start_port: int, space: HeaderSpace
    ) -> ReachabilityResult:
        """Propagate ``space`` injected at (start_switch, start_port)."""
        result = ReachabilityResult()
        seen: Dict[PortRef, HeaderSpace] = {}
        self._expand(
            start_switch, start_port, space, (), result, seen, depth=0
        )
        return result

    def _expand(
        self,
        switch: str,
        in_port: int,
        space: HeaderSpace,
        path: Tuple[Hop, ...],
        result: ReachabilityResult,
        seen: Dict[PortRef, HeaderSpace],
        depth: int,
    ) -> None:
        if space.is_empty() or depth > self.max_depth:
            return
        key = (switch, in_port)
        # Loop check: did this traffic already cross this ingress on the
        # current path?
        if any(hop[0] == switch and hop[1] == in_port for hop in path):
            result.loops.append(
                LoopReport(switch=switch, port=in_port, cycle=path, space=space)
            )
            return
        covered = seen.get(key)
        if covered is not None:
            space = space.subtract(covered)
            if space.is_empty():
                return
            seen[key] = covered.union(space)
        else:
            seen[key] = space
        result.expansions += 1
        result.switches_traversed.add(switch)
        if self.collect_drops:
            tf = self.network_tf.transfer_functions.get(switch)
            if tf is None:
                return
            emissions, dropped = tf.apply_with_drops(in_port, space)
            if not dropped.is_empty():
                result.drops.append(
                    DropZone(switch=switch, port=in_port, space=dropped, depth=depth)
                )
        else:
            emissions = self.network_tf.apply_switch(switch, in_port, space)
        for out_port, out_space in emissions:
            if out_space.is_empty():
                continue
            hop: Hop = (switch, in_port, out_port)
            if out_port == CONTROLLER_PORT:
                self._record_zone(
                    result, "controller", switch, out_port, out_space, path + (hop,)
                )
                continue
            role = self.network_tf.role_of(switch, out_port)
            if role.kind == "edge":
                self._record_zone(
                    result, "edge", switch, out_port, out_space, path + (hop,)
                )
            elif role.kind == "link" and role.peer is not None:
                peer_switch, peer_port = role.peer
                result.links_traversed.add(frozenset((switch, peer_switch)))
                self._expand(
                    peer_switch,
                    peer_port,
                    out_space,
                    path + (hop,),
                    result,
                    seen,
                    depth + 1,
                )
            else:
                self._record_zone(
                    result, "unbound", switch, out_port, out_space, path + (hop,)
                )

    def _record_zone(
        self,
        result: ReachabilityResult,
        kind: str,
        switch: str,
        port: int,
        space: HeaderSpace,
        hops: Tuple[Hop, ...],
    ) -> None:
        zone = ReachableZone(kind=kind, switch=switch, port=port, space=space)
        result.zones.append(zone)
        if self.collect_paths:
            result.paths.append(ReachablePath(hops=hops, endpoint=zone))

    # ------------------------------------------------------------------
    # Inverse queries
    # ------------------------------------------------------------------

    def sources_reaching(
        self,
        target_switch: str,
        target_port: int,
        space: HeaderSpace,
        *,
        candidate_ports: Optional[tuple[PortRef, ...]] = None,
        analyze_fn=None,
    ) -> Dict[PortRef, HeaderSpace]:
        """Which edge ports can inject traffic that arrives at the target?

        Computed by forward propagation from every candidate edge port —
        exact, and at the network sizes of this reproduction cheaper than
        maintaining inverted transfer functions.  ``analyze_fn`` lets the
        verification engine substitute its memoized per-ingress
        propagation, so repeated inverse queries on the same snapshot
        reuse one forward pass per candidate port.
        """
        sources: Dict[PortRef, HeaderSpace] = {}
        candidates = candidate_ports or self.network_tf.all_edge_ports()
        analyze = analyze_fn or self.analyze
        for switch, port in candidates:
            if (switch, port) == (target_switch, target_port):
                continue
            result = analyze(switch, port, space)
            arriving = HeaderSpace.empty()
            for zone in result.edge_zones():
                if zone.port_ref == (target_switch, target_port):
                    arriving = arriving.union(zone.space)
            if not arriving.is_empty():
                sources[(switch, port)] = arriving
        return sources

    # ------------------------------------------------------------------
    # Whole-network sweeps
    # ------------------------------------------------------------------

    def detect_all_loops(self, space: HeaderSpace) -> List[LoopReport]:
        """Check every edge ingress for forwarding loops on ``space``."""
        loops: List[LoopReport] = []
        for switch, port in self.network_tf.all_edge_ports():
            loops.extend(self.analyze(switch, port, space).loops)
        return loops
