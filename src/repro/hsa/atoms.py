"""Atomic-predicate compaction: bitset header sets over equivalence classes.

The wildcard calculus (:mod:`repro.hsa.wildcard`) pays per *operation*:
``subtract_many`` / ``intersect`` cost grows with the wildcard count of
both operands, and every query re-runs that algebra over the snapshot.
Scalable verifiers (Yang & Lam's atomic predicates; Seagull, PAPERS.md)
instead compile the rule set once into the coarsest partition of the
header space in which every predicate of interest is a union of parts —
the *atoms* — and then represent every header set as a bitset over
atoms, so intersection/union/complement become single big-int AND/OR/NOT
operations regardless of how many wildcards built the set.

This implementation exploits the structure of OpenFlow matches: every
match wildcard (and every query space this service constructs) is a
*conjunction of per-field constraints*, so the atom partition factors as
a product of per-field partitions:

* :class:`FieldCells` — the partition of one header field's value range
  induced by every (value, mask) constraint any rule places on it.
* :class:`AtomSpace` — the product space: an atom is one cell choice per
  field, indexed mixed-radix; a header set is a Python int with one bit
  per atom.  Encoding a wildcard is an AND of per-field "spread" masks;
  decoding factorises the bitset back into wildcard unions for the
  signed :class:`~repro.core.protocol.QueryResponse`.
* :class:`AtomTable` — content-keyed interning of compiled atom spaces,
  so every snapshot version with the same constraint set (and every
  engine in the process) shares one compiled universe.
* :class:`AtomNetwork` / :class:`ReachabilityMatrix` — transfer and
  inverse-transfer re-expressed in the atom domain.  A propagation
  carries the *injected* atom set plus a tuple of field *pins* (rewrite
  actions pin a field to the cell of the written constant), so the
  all-ingress matrix records, per (ingress, egress), exactly which
  injected headers arrive — rewrites and priority shadowing included —
  and a query becomes ``row_bits & encode(space)``.

Exactness discipline: every test the query layer performs (non-empty
arrival, membership in the interception punt space) is decided at atom
granularity, which is exact *provided the tested set is a union of
atoms*.  Constraints collected from compiled rules are registered by
construction; query spaces built from registered seeds (host addresses,
the punt space) encode exactly; anything else makes
:meth:`AtomSpace.encode_space` return ``None`` and the caller falls back
to the wildcard kernel — the fast path is never allowed to approximate.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hsa.headerspace import HeaderSpace
from repro.hsa.layout import FIELD_LAYOUT
from repro.hsa.transfer import CONTROLLER_PORT as _CONTROLLER_PORT
from repro.hsa.wildcard import Wildcard
from repro.netlib.addresses import IPv4Address, MacAddress
from repro.netlib.constants import VLAN_NONE
from repro.openflow.actions import (
    Drop,
    Flood,
    GotoTable,
    Meter,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)

_FIELD_NAMES: Tuple[str, ...] = tuple(FIELD_LAYOUT)
_FIELD_INDEX: Dict[str, int] = {name: i for i, name in enumerate(_FIELD_NAMES)}

#: A field pin: this field has been rewritten to a constant lying in the
#: given cell.  Pins are kept as a sorted tuple of (field index, cell
#: index) pairs so they are hashable branch state.
Pins = Tuple[Tuple[int, int], ...]

#: Where a propagated set arrived: (kind, switch, port) with kind one of
#: "edge" | "unbound" | "controller" — the same taxonomy as
#: :class:`~repro.hsa.reachability.ReachableZone`.
ZoneKey = Tuple[str, str, int]


# ----------------------------------------------------------------------
# Field-local ternary algebra on (value, mask) pairs
# ----------------------------------------------------------------------


def _fl_intersects(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    return not ((a[0] ^ b[0]) & a[1] & b[1])


def _fl_intersect(
    a: Tuple[int, int], b: Tuple[int, int]
) -> Optional[Tuple[int, int]]:
    if (a[0] ^ b[0]) & a[1] & b[1]:
        return None
    return (a[0] | b[0], a[1] | b[1])


def _fl_subset(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    """Every value matching ``a`` also matches ``b`` (field-local)."""
    if b[1] & ~a[1]:
        return False
    return not ((a[0] ^ b[0]) & b[1])


def _fl_subtract(
    a: Tuple[int, int], b: Tuple[int, int]
) -> List[Tuple[int, int]]:
    """``a`` minus ``b`` as pairwise-disjoint pieces (field-local)."""
    if (a[0] ^ b[0]) & a[1] & b[1]:
        return [a]
    pieces: List[Tuple[int, int]] = []
    fixed_value, fixed_mask = a
    remaining = b[1] & ~a[1]
    while remaining:
        bit = remaining & -remaining
        remaining &= remaining - 1
        other_bit = b[0] & bit
        pieces.append(((fixed_value & ~bit) | (bit ^ other_bit), fixed_mask | bit))
        fixed_value = (fixed_value & ~bit) | other_bit
        fixed_mask |= bit
    return pieces


class FieldCells:
    """The partition of one field's value range induced by constraints.

    Each cell is a tuple of pairwise-disjoint (value, mask) pieces; the
    cells are pairwise disjoint and cover the full range.  Every
    registered constraint is a union of whole cells, which is what makes
    atom-granularity set tests exact.
    """

    __slots__ = ("name", "width", "cells", "_mask_cache", "_value_cache")

    def __init__(
        self, name: str, width: int, constraints: Iterable[Tuple[int, int]]
    ) -> None:
        self.name = name
        self.width = width
        cells: List[Tuple[Tuple[int, int], ...]] = [((0, 0),)]
        # Deterministic build order: the cell list (and hence every atom
        # index) is a pure function of the constraint *set*.
        for constraint in sorted(set(constraints)):
            if constraint[1] == 0:
                continue  # unconstrained: splits nothing
            split: List[Tuple[Tuple[int, int], ...]] = []
            for cell in cells:
                inside: List[Tuple[int, int]] = []
                outside: List[Tuple[int, int]] = []
                for piece in cell:
                    joined = _fl_intersect(piece, constraint)
                    if joined is None:
                        outside.append(piece)
                        continue
                    inside.append(joined)
                    outside.extend(_fl_subtract(piece, constraint))
                if inside:
                    split.append(tuple(inside))
                if outside:
                    split.append(tuple(outside))
            cells = split
        self.cells: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(cells)
        self._mask_cache: Dict[Tuple[int, int], Tuple[int, bool]] = {}
        self._value_cache: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.cells)

    def cell_masks(self, value: int, mask: int) -> Tuple[int, bool]:
        """(bitmask over cells touching the constraint, is it exact?).

        Exact means the selected cells are *covered* by the constraint —
        i.e. the constraint is a union of whole cells, so bitset
        reasoning over it loses nothing.  Guaranteed for registered
        constraints; an unregistered constraint that splits a cell
        reports ``exact=False`` and the caller must fall back.
        """
        if mask == 0:
            return (1 << len(self.cells)) - 1, True
        key = (value, mask)
        cached = self._mask_cache.get(key)
        if cached is not None:
            return cached
        selected = 0
        exact = True
        for index, cell in enumerate(self.cells):
            touched = any(_fl_intersects(piece, key) for piece in cell)
            if not touched:
                continue
            selected |= 1 << index
            if exact and not all(_fl_subset(piece, key) for piece in cell):
                exact = False
        result = (selected, exact)
        self._mask_cache[key] = result
        return result

    def cell_of(self, value: int) -> int:
        """Index of the cell containing a concrete field value."""
        cached = self._value_cache.get(value)
        if cached is not None:
            return cached
        for index, cell in enumerate(self.cells):
            if any(not ((value ^ v) & m) for v, m in cell):
                self._value_cache[value] = index
                return index
        raise AssertionError(
            f"field {self.name}: value {value:#x} in no cell (broken partition)"
        )

    def pieces(self, cellmask: int) -> List[Tuple[int, int]]:
        """Field-local (value, mask) pieces of a union of cells, in order."""
        out: List[Tuple[int, int]] = []
        for index, cell in enumerate(self.cells):
            if (cellmask >> index) & 1:
                out.extend(cell)
        return out


# ----------------------------------------------------------------------
# The atom universe
# ----------------------------------------------------------------------


class AtomSpace:
    """A compiled atom universe: product of per-field partitions.

    An atom is one cell per field; its index is the mixed-radix number
    ``sum(cell_f * stride_f)``.  A header set is a Python int with bit i
    set iff atom i is in the set — AND/OR/NOT on those ints are the
    entire set algebra.
    """

    __slots__ = (
        "field_cells",
        "strides",
        "n_atoms",
        "full_bits",
        "_spread",
        "_union_cache",
        "_encode_cache",
        "signature",
        "__weakref__",
    )

    #: Bound on cached per-space query encodings (cleared when full).
    ENCODE_CACHE_LIMIT = 4096

    def __init__(self, field_cells: Sequence[FieldCells], signature: str) -> None:
        assert len(field_cells) == len(_FIELD_NAMES)
        self.field_cells: Tuple[FieldCells, ...] = tuple(field_cells)
        strides: List[int] = []
        stride = 1
        for cells in self.field_cells:
            strides.append(stride)
            stride *= len(cells)
        self.strides: Tuple[int, ...] = tuple(strides)
        self.n_atoms: int = stride
        self.full_bits: int = (1 << stride) - 1
        self.signature = signature
        # spread[f][c]: the bitset of all atoms whose field-f component
        # is cell c.  Every encode is an AND of unions of these.
        self._spread: List[List[int]] = []
        for f_idx, cells in enumerate(self.field_cells):
            stride_f = self.strides[f_idx]
            period = stride_f * len(cells)
            masks: List[int] = []
            for c in range(len(cells)):
                block = ((1 << stride_f) - 1) << (c * stride_f)
                span = period
                while span < self.n_atoms:
                    block |= block << span
                    span <<= 1
                masks.append(block & self.full_bits)
            self._spread.append(masks)
        self._union_cache: Dict[Tuple[int, int], int] = {}
        self._encode_cache: Dict[tuple, Optional[int]] = {}

    # -- encoding -------------------------------------------------------

    def spread_union(self, f_idx: int, cellmask: int) -> int:
        """Bitset of atoms whose field-f component is in ``cellmask``."""
        cells = self.field_cells[f_idx]
        if cellmask == (1 << len(cells)) - 1:
            return self.full_bits
        key = (f_idx, cellmask)
        cached = self._union_cache.get(key)
        if cached is not None:
            return cached
        bits = 0
        spread = self._spread[f_idx]
        remaining = cellmask
        while remaining:
            low = remaining & -remaining
            bits |= spread[low.bit_length() - 1]
            remaining &= remaining - 1
        self._union_cache[key] = bits
        return bits

    def encode_wildcard(self, wildcard: Wildcard) -> Tuple[int, bool]:
        """(atom bitset touching the wildcard, exact?)."""
        bits = self.full_bits
        exact = True
        for f_idx, name in enumerate(_FIELD_NAMES):
            value, mask = wildcard.field_constraint(name)
            if not mask:
                continue
            cellmask, cell_exact = self.field_cells[f_idx].cell_masks(value, mask)
            if not cell_exact:
                exact = False
            if not cellmask:
                return 0, exact
            bits &= self.spread_union(f_idx, cellmask)
            if not bits:
                return 0, exact
        return bits, exact

    def encode_space(self, space: HeaderSpace) -> Optional[int]:
        """The exact atom bitset of a header space, or None.

        ``None`` means some piece is not a union of atoms, so bitset
        reasoning would approximate — the caller must use the wildcard
        kernel instead.  Results are memoised by space fingerprint
        (repeated query serving is a dictionary hit).
        """
        key = space.fingerprint()
        cached = self._encode_cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        bits = 0
        result: Optional[int] = None
        for wildcard in space.wildcards:
            piece_bits, exact = self.encode_wildcard(wildcard)
            if not exact:
                break
            bits |= piece_bits
        else:
            result = bits
        if len(self._encode_cache) >= self.ENCODE_CACHE_LIMIT:
            self._encode_cache.clear()
        self._encode_cache[key] = result
        return result

    # -- decoding -------------------------------------------------------

    def decode(self, bits: int) -> HeaderSpace:
        """Factorise an atom bitset back into a union of wildcards.

        Recursive grouping from the most significant field down: cells
        of the top field whose sub-bitsets are identical share one
        branch, so aligned product sets decode to single wildcards, not
        one wildcard per atom.  The inverse of :meth:`encode_space` on
        its exact domain: ``encode_space(decode(b)) == b``.
        """
        if not bits:
            return HeaderSpace.empty()
        pieces = [
            Wildcard._make(sum(v for v, _ in parts), sum(m for _, m in parts))
            for parts in self._decode_rec(bits, len(self.field_cells) - 1)
        ]
        return HeaderSpace(pieces, prune=True)

    def _decode_rec(self, bits: int, f_idx: int) -> List[List[Tuple[int, int]]]:
        if f_idx < 0:
            return [[]] if bits else []
        cells = self.field_cells[f_idx]
        stride = self.strides[f_idx]
        chunk_mask = (1 << stride) - 1
        groups: "OrderedDict[int, int]" = OrderedDict()
        for c in range(len(cells)):
            chunk = (bits >> (c * stride)) & chunk_mask
            if chunk:
                groups[chunk] = groups.get(chunk, 0) | (1 << c)
        out: List[List[Tuple[int, int]]] = []
        offset = FIELD_LAYOUT[cells.name].offset
        all_cells = (1 << len(cells)) - 1
        for chunk, cellmask in groups.items():
            subs = self._decode_rec(chunk, f_idx - 1)
            if cellmask == all_cells:
                out.extend(subs)  # field unconstrained in this block
                continue
            field_pieces = [
                (v << offset, m << offset) for v, m in cells.pieces(cellmask)
            ]
            for sub in subs:
                for piece in field_pieces:
                    out.append(sub + [piece])
        return out

    # -- rewrites (pins) ------------------------------------------------

    def pin_for(self, field: str, value: int) -> Tuple[int, int]:
        """(field index, cell index) pin for rewriting ``field``:=value."""
        f_idx = _FIELD_INDEX[field]
        return f_idx, self.field_cells[f_idx].cell_of(value)

    def apply_pins(self, bits: int, pins: Pins) -> int:
        """Image of an injected atom set under accumulated rewrites.

        Each pinned field's dimension collapses onto the pinned cell:
        atoms keep their other components and move to the rewritten
        value's cell.  Exact because rewrite constants are registered,
        so the pinned cell is the singleton of the written value.
        """
        for f_idx, cell in pins:
            stride = self.strides[f_idx]
            spread = self._spread[f_idx]
            collapsed = 0
            for other in range(len(self.field_cells[f_idx])):
                chunk = bits & spread[other]
                if not chunk:
                    continue
                shift = (cell - other) * stride
                collapsed |= chunk << shift if shift >= 0 else chunk >> -shift
            bits = collapsed
        return bits

    # -- inspection -----------------------------------------------------

    def cells_per_field(self) -> Dict[str, int]:
        return {cells.name: len(cells) for cells in self.field_cells}

    def describe(self) -> str:
        dims = "x".join(
            str(len(cells)) for cells in self.field_cells if len(cells) > 1
        )
        return f"AtomSpace({self.n_atoms} atoms = {dims or '1'})"


_MISSING = object()


# ----------------------------------------------------------------------
# Interning
# ----------------------------------------------------------------------


class AtomTable:
    """Content-keyed interning of compiled atom spaces.

    Two snapshots inducing the same constraint set — every version of an
    unchanged network, or the same network seen by different engines —
    share one :class:`AtomSpace` (and all its spread masks and caches).
    Keys are the sorted (value, mask) constraint set, so interning is by
    semantic content, never by snapshot identity.

    Eviction is keyed on liveness: the bounded LRU only controls how
    many spaces the table itself keeps *alive*; every built space is
    additionally tracked in a :class:`weakref.WeakValueDictionary`, so a
    space that was LRU-evicted while a cached
    :class:`ReachabilityMatrix` (or any other artifact) still references
    it is revived on the next request instead of being rebuilt as a
    distinct object.  Bitsets from two matrices over "the same" universe
    are therefore always over the *identical* space object.
    """

    def __init__(self, max_entries: int = 32, atom_limit: int = 1 << 17) -> None:
        self.max_entries = max_entries
        self.atom_limit = atom_limit
        self.hits = 0
        self.builds = 0
        self.overflows = 0
        self.revivals = 0  # live-but-evicted spaces re-pinned into the LRU
        self._lock = threading.Lock()
        self._spaces: "OrderedDict[tuple, Optional[AtomSpace]]" = OrderedDict()
        #: every space ever built and still referenced by *someone*;
        #: entries vanish automatically when the last reference dies
        self._live: "weakref.WeakValueDictionary[tuple, AtomSpace]" = (
            weakref.WeakValueDictionary()
        )

    def space_for(self, constraints: Iterable[Wildcard]) -> Optional[AtomSpace]:
        """The interned atom space for a constraint set, or None.

        ``None`` marks a universe whose atom count exceeds
        ``atom_limit`` — the caller keeps the wildcard backend for that
        snapshot rather than paying an unbounded bitset width.
        """
        key = tuple(sorted({(w.value, w.mask) for w in constraints}))
        with self._lock:
            cached = self._spaces.get(key, _MISSING)
            if cached is not _MISSING:
                self.hits += 1
                self._spaces.move_to_end(key)
                return cached
            alive = self._live.get(key)
            if alive is not None:
                # Evicted from the LRU but still referenced by a live
                # artifact: revive it instead of building a twin.
                self.hits += 1
                self.revivals += 1
                self._spaces[key] = alive
                while len(self._spaces) > self.max_entries:
                    self._spaces.popitem(last=False)
                return alive
        space = self._build(key)
        with self._lock:
            if space is None:
                self.overflows += 1
            else:
                self.builds += 1
                self._live[key] = space
            self._spaces[key] = space
            while len(self._spaces) > self.max_entries:
                self._spaces.popitem(last=False)
        return space

    def _build(self, key: tuple) -> Optional[AtomSpace]:
        per_field: Dict[str, set] = {name: set() for name in _FIELD_NAMES}
        for value, mask in key:
            wildcard = Wildcard._make(value, mask)
            for name in _FIELD_NAMES:
                local_value, local_mask = wildcard.field_constraint(name)
                if local_mask:
                    per_field[name].add((local_value, local_mask))
        field_cells: List[FieldCells] = []
        n_atoms = 1
        for name in _FIELD_NAMES:
            cells = FieldCells(
                name, FIELD_LAYOUT[name].width, per_field[name]
            )
            n_atoms *= len(cells)
            if n_atoms > self.atom_limit:
                return None
            field_cells.append(cells)
        signature = hashlib.sha256(repr(key).encode()).hexdigest()[:16]
        return AtomSpace(field_cells, signature)

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "builds": self.builds,
            "overflows": self.overflows,
            "revivals": self.revivals,
            "entries": len(self._spaces),
        }


#: Process-wide interner shared by every engine (keys are semantic, so
#: sharing across engines/networks is always sound).
GLOBAL_ATOM_TABLE = AtomTable()


def constraint_seed_hash(wildcards: Iterable[Wildcard]) -> str:
    """Short stable digest of a seed wildcard set, for cache keying."""
    pairs = sorted({(w.value, w.mask) for w in wildcards})
    return hashlib.sha256(repr(pairs).encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Cell renumbering between interned universes (matrix repair)
# ----------------------------------------------------------------------


class RemapInexact(Exception):
    """An old-space atom set is not a union of new-space atoms.

    Raised while translating bitsets between two atom universes when a
    merge (the new partition is coarser somewhere) would lose
    information — the caller must fall back to a full matrix rebuild.
    """


class FieldRemap:
    """Cell-renumbering table for one field between two partitions.

    ``new_to_old[c']`` lists the old cells whose value regions intersect
    new cell ``c'``; ``old_to_new[c]`` is the bitmask of new cells old
    cell ``c`` intersects.  Both partitions cover the full range, so
    every list is non-empty and every mask non-zero.  An old cell whose
    mask has several bits was *split* by the new partition (new
    constants refined it); a new cell with several old cells *merged*
    old cells (constants were retired).
    """

    __slots__ = ("new_to_old", "old_to_new", "splits")

    def __init__(self, old: FieldCells, new: FieldCells) -> None:
        new_to_old: List[Tuple[int, ...]] = []
        old_to_new: List[int] = [0] * len(old.cells)
        for c_new, new_cell in enumerate(new.cells):
            olds: List[int] = []
            for c_old, old_cell in enumerate(old.cells):
                if any(
                    _fl_intersects(p, q) for p in new_cell for q in old_cell
                ):
                    olds.append(c_old)
                    old_to_new[c_old] |= 1 << c_new
            new_to_old.append(tuple(olds))
        self.new_to_old: Tuple[Tuple[int, ...], ...] = tuple(new_to_old)
        self.old_to_new: Tuple[int, ...] = tuple(old_to_new)
        self.splits = sum(1 for mask in old_to_new if mask & (mask - 1))


class AtomRemap:
    """Exact bitset translation between two interned atom universes.

    Built once per matrix repair; :meth:`apply` then translates every
    reused row's bitsets through the per-field renumbering tables.  The
    translation is chunk-recursive (mirroring
    :meth:`AtomSpace._decode_rec`): at each field, a *split* old cell
    replicates its sub-chunk into every new cell refining it, and a
    *merged* new cell requires all its old cells' sub-chunks to be
    identical — otherwise the set genuinely distinguishes value regions
    the new universe cannot, and :class:`RemapInexact` is raised.  Both
    directions are exact: ``decode(apply(bits))`` equals the old
    ``decode(bits)`` whenever ``apply`` succeeds.
    """

    __slots__ = ("old", "new", "identity", "fields", "splits", "_memo")

    def __init__(self, old_space: AtomSpace, new_space: AtomSpace) -> None:
        self.old = old_space
        self.new = new_space
        self.identity = old_space is new_space
        if self.identity:
            self.fields: Tuple[FieldRemap, ...] = ()
            self.splits = 0
            self._memo: Tuple[Dict[int, int], ...] = ()
            return
        self.fields = tuple(
            FieldRemap(old, new)
            for old, new in zip(old_space.field_cells, new_space.field_cells)
        )
        self.splits = sum(remap.splits for remap in self.fields)
        # Per-field memo of translated sub-chunks, shared across every
        # row of one repair: identical sub-bitsets (common — most rows
        # agree on the low fields) translate once.
        self._memo = tuple({} for _ in self.fields)

    def apply(self, bits: int) -> int:
        """The new-space bitset denoting the same header set as ``bits``."""
        if self.identity:
            return bits
        return self._rec(bits, len(self.fields) - 1)

    def _rec(self, bits: int, f_idx: int) -> int:
        if f_idx < 0:
            return bits  # the unit chunk: 0 or 1
        memo = self._memo[f_idx]
        cached = memo.get(bits)
        if cached is not None:
            return cached
        old_stride = self.old.strides[f_idx]
        new_stride = self.new.strides[f_idx]
        chunk_mask = (1 << old_stride) - 1
        out = 0
        for c_new, old_cells in enumerate(self.fields[f_idx].new_to_old):
            chunk = (bits >> (old_cells[0] * old_stride)) & chunk_mask
            for c_old in old_cells[1:]:
                if ((bits >> (c_old * old_stride)) & chunk_mask) != chunk:
                    raise RemapInexact(
                        f"field {self.old.field_cells[f_idx].name}: merged "
                        f"cells carry different sub-sets"
                    )
            if chunk:
                out |= self._rec(chunk, f_idx - 1) << (c_new * new_stride)
        memo[bits] = out
        return out

    def remap_pins(self, pins: Pins) -> Pins:
        """Renumber a rewrite-pin tuple into the new universe.

        Pinned cells are singletons of registered rewrite constants, so
        each maps to exactly one new cell; a pin whose old cell was
        split or straddles new cells (its constant was retired) makes
        the translation ambiguous and raises :class:`RemapInexact`.
        """
        if self.identity or not pins:
            return pins
        out: List[Tuple[int, int]] = []
        for f_idx, cell in pins:
            mask = self.fields[f_idx].old_to_new[cell]
            if mask & (mask - 1):
                raise RemapInexact(
                    f"field {self.old.field_cells[f_idx].name}: pinned cell "
                    f"{cell} no longer maps to a single cell"
                )
            out.append((f_idx, mask.bit_length() - 1))
        return tuple(out)

    def remap_row(self, row: "MatrixRow") -> "MatrixRow":
        """A :class:`MatrixRow` with every bitset/pin renumbered."""
        if self.identity:
            return row
        out = MatrixRow()
        for zone, per_pins in row.zones.items():
            translated: Dict[Pins, int] = {}
            for pins, bits in per_pins.items():
                new_pins = self.remap_pins(pins)
                translated[new_pins] = translated.get(new_pins, 0) | self.apply(
                    bits
                )
            out.zones[zone] = translated
        for zone, bits in row.reach.items():
            out.reach[zone] = self.apply(bits)
        for switch, bits in row.traversed.items():
            out.traversed[switch] = self.apply(bits)
        out.expansions = row.expansions
        return out


# ----------------------------------------------------------------------
# Atom-domain transfer functions
# ----------------------------------------------------------------------


class _AtomRule:
    """One compiled rule in the atom domain.

    ``cellmasks`` holds, per constrained field, the bitmask of cells the
    match touches (exact by construction: match constraints are
    registered).  ``base_bits`` is the match's atom set with no pins;
    :meth:`preimage` specialises it to a branch's accumulated rewrites.
    """

    __slots__ = ("in_port", "cellmasks", "base_bits", "actions", "_pre_cache")

    def __init__(self, space: AtomSpace, rule) -> None:
        self.in_port: Optional[int] = rule.in_port
        self.actions = rule.actions
        cellmasks: List[Tuple[int, int]] = []
        bits = space.full_bits
        for f_idx, name in enumerate(_FIELD_NAMES):
            value, mask = rule.match_wc.field_constraint(name)
            if not mask:
                continue
            cellmask, exact = space.field_cells[f_idx].cell_masks(value, mask)
            assert exact, f"rule constraint on {name} not registered"
            cellmasks.append((f_idx, cellmask))
            bits &= space.spread_union(f_idx, cellmask)
        self.cellmasks: Tuple[Tuple[int, int], ...] = tuple(cellmasks)
        self.base_bits = bits
        self._pre_cache: Dict[Pins, int] = {(): bits}

    def preimage(self, space: AtomSpace, pins: Pins) -> int:
        """Injected atoms whose *image* under ``pins`` matches this rule.

        A pinned field contributes a pure membership test (the image
        value's cell either is in the match's cells or the rule is
        unreachable for this branch); unpinned fields constrain the
        injected set directly.
        """
        cached = self._pre_cache.get(pins)
        if cached is not None:
            return cached
        pinned = dict(pins)
        bits = space.full_bits
        for f_idx, cellmask in self.cellmasks:
            cell = pinned.get(f_idx)
            if cell is not None:
                if not (cellmask >> cell) & 1:
                    bits = 0
                    break
                continue
            bits &= space.spread_union(f_idx, cellmask)
            if not bits:
                break
        self._pre_cache[pins] = bits
        return bits


def _with_pin(pins: Pins, f_idx: int, cell: int) -> Pins:
    for i, (pf, _pc) in enumerate(pins):
        if pf == f_idx:
            return pins[:i] + ((f_idx, cell),) + pins[i + 1 :]
        if pf > f_idx:
            return pins[:i] + ((f_idx, cell),) + pins[i:]
    return pins + ((f_idx, cell),)


class _AtomSwitch:
    """The atom-domain pipeline of one switch (mirrors the wildcard TF)."""

    __slots__ = ("space", "name", "ports", "_tables", "_applicable")

    def __init__(self, space: AtomSpace, switch_tf) -> None:
        self.space = space
        self.name = switch_tf.switch_name
        self.ports = switch_tf.ports
        self._tables: Dict[int, Tuple[_AtomRule, ...]] = {
            table_id: tuple(_AtomRule(space, rule) for rule in rules)
            for table_id, rules in switch_tf.iter_tables()
        }
        #: (table, in_port) -> in-port-filtered rule tuple, built lazily
        self._applicable: Dict[Tuple[int, int], Tuple[_AtomRule, ...]] = {}

    def _rules_for(self, table_id: int, in_port: int) -> Tuple[_AtomRule, ...]:
        key = (table_id, in_port)
        rules = self._applicable.get(key)
        if rules is None:
            rules = tuple(
                rule
                for rule in self._tables.get(table_id, ())
                if rule.in_port is None or rule.in_port == in_port
            )
            self._applicable[key] = rules
        return rules

    def apply(
        self,
        table_id: int,
        in_port: int,
        injected: int,
        pins: Pins,
        emit: Callable[[Tuple[int, int, Pins]], None],
    ) -> None:
        """Priority-shadowed table application, all bitwise.

        ``injected`` is an atom set over *original ingress headers*; the
        branch's current headers are its image under ``pins``.  Rule
        matching intersects with the pre-image of the match, shadowing
        is one AND-NOT — no wildcard lists anywhere.
        """
        space = self.space
        remaining = injected
        for rule in self._rules_for(table_id, in_port):
            if not remaining:
                break
            pre = rule.preimage(space, pins)
            segment = remaining & pre
            if segment:
                self._apply_actions(rule, in_port, segment, pins, emit)
            remaining &= ~pre
        # Table miss: OpenFlow 1.3 default-drops; nothing emitted.

    def _apply_actions(
        self,
        rule: _AtomRule,
        in_port: int,
        segment: int,
        pins: Pins,
        emit: Callable[[Tuple[int, int, Pins]], None],
    ) -> None:
        space = self.space
        current = pins
        for action in rule.actions:
            if isinstance(action, SetField):
                raw = action.value
                raw = (
                    raw.value
                    if isinstance(raw, (MacAddress, IPv4Address))
                    else int(raw)
                )
                current = _with_pin(current, *space.pin_for(action.field, raw))
            elif isinstance(action, PushVlan):
                current = _with_pin(
                    current, *space.pin_for("vlan_id", action.vlan_id)
                )
            elif isinstance(action, PopVlan):
                current = _with_pin(current, *space.pin_for("vlan_id", VLAN_NONE))
            elif isinstance(action, Output):
                emit((action.port, segment, current))
            elif isinstance(action, Flood):
                for port in self.ports:
                    if port != in_port:
                        emit((port, segment, current))
            elif isinstance(action, ToController):
                emit((_CONTROLLER_PORT, segment, current))
            elif isinstance(action, GotoTable):
                self.apply(action.table_id, in_port, segment, current, emit)
                break  # goto terminates this action list
            elif isinstance(action, Meter):
                continue  # metering does not change reachability
            elif isinstance(action, Drop):
                break


# ----------------------------------------------------------------------
# All-ingress reachability matrix
# ----------------------------------------------------------------------


class MatrixRow:
    """Everything one ingress port's full-space propagation discovered."""

    __slots__ = ("zones", "reach", "traversed", "expansions")

    def __init__(self) -> None:
        #: zone -> pins -> injected atoms arriving there via that rewrite
        self.zones: Dict[ZoneKey, Dict[Pins, int]] = {}
        #: zone -> injected atoms arriving at all (OR over pins)
        self.reach: Dict[ZoneKey, int] = {}
        #: switch -> injected atoms whose traffic expands there
        self.traversed: Dict[str, int] = {}
        self.expansions = 0

    def record_zone(self, key: ZoneKey, pins: Pins, bits: int) -> None:
        per_pins = self.zones.setdefault(key, {})
        per_pins[pins] = per_pins.get(pins, 0) | bits
        self.reach[key] = self.reach.get(key, 0) | bits


class ReachabilityMatrix:
    """Per-ingress rows of the all-pairs reachability precomputation.

    Serving a query is: encode the query space (cached), AND it against
    the row's per-zone bits, decode only what must leave the service in
    wildcard form.  The matrix holds *injected* atom sets, so it answers
    both transfer ("where can my traffic go") and inverse-transfer
    ("whose traffic arrives here") directions from the same rows.
    """

    __slots__ = ("space", "_rows", "_order", "expansions")

    def __init__(
        self, space: AtomSpace, rows: Dict[Tuple[str, int], MatrixRow]
    ) -> None:
        self.space = space
        self._rows = rows
        self._order: Tuple[Tuple[str, int], ...] = tuple(rows)
        self.expansions = sum(row.expansions for row in rows.values())

    def ingresses(self) -> Tuple[Tuple[str, int], ...]:
        return self._order

    def row(self, ref: Tuple[str, int]) -> Optional[MatrixRow]:
        return self._rows.get(ref)

    def arrived_space(
        self, ref: Tuple[str, int], zone: ZoneKey, query_bits: int
    ) -> int:
        """Atom set of query traffic *as it arrives* at ``zone`` (image)."""
        row = self._rows.get(ref)
        if row is None:
            return 0
        arrived = 0
        for pins, bits in row.zones.get(zone, {}).items():
            segment = bits & query_bits
            if segment:
                arrived |= self.space.apply_pins(segment, pins)
        return arrived


class AtomNetwork:
    """The network transfer function, compiled into the atom domain.

    ``reuse_from`` enables the repair path: compiled
    :class:`_AtomSwitch` pipelines (with their warm preimage caches) are
    carried over from a predecessor network for every switch not in
    ``touched`` — sound only when the atom universe is the identical
    object, so a changed space recompiles everything.
    """

    def __init__(
        self,
        network_tf,
        space: AtomSpace,
        *,
        max_depth: int = 64,
        reuse_from: Optional["AtomNetwork"] = None,
        touched: Iterable[str] = (),
    ):
        self.space = space
        self.max_depth = max_depth
        self._role_of = network_tf.role_of
        reusable: Dict[str, _AtomSwitch] = {}
        if reuse_from is not None and reuse_from.space is space:
            stale = frozenset(touched)
            reusable = {
                name: compiled
                for name, compiled in reuse_from.switches.items()
                if name not in stale
            }
        self.switches: Dict[str, _AtomSwitch] = {
            name: reusable.get(name) or _AtomSwitch(space, tf)
            for name, tf in network_tf.transfer_functions.items()
        }

    def propagate(self, start_switch: str, start_port: int) -> MatrixRow:
        """Inject the *full* header space at one ingress; record arrivals.

        The coverage guard is keyed (switch, in-port, pins) over
        *injected* atoms: a later branch arriving with the same rewrite
        history re-expands only injected headers not yet propagated
        through that ingress — which both terminates loops and keeps the
        per-ingress attribution exact (the covered part's downstream
        arrivals were recorded by the earlier branch with the same
        injected bits).
        """
        space = self.space
        row = MatrixRow()
        seen: Dict[Tuple[str, int, Pins], int] = {}
        stack: List[Tuple[str, int, int, Pins, int]] = [
            (start_switch, start_port, space.full_bits, (), 0)
        ]
        max_depth = self.max_depth
        while stack:
            switch, in_port, injected, pins, depth = stack.pop()
            if not injected or depth > max_depth:
                continue
            key = (switch, in_port, pins)
            covered = seen.get(key, 0)
            injected &= ~covered
            if not injected:
                continue
            seen[key] = covered | injected
            row.expansions += 1
            row.traversed[switch] = row.traversed.get(switch, 0) | injected
            atom_switch = self.switches.get(switch)
            if atom_switch is None:
                continue
            emissions: List[Tuple[int, int, Pins]] = []
            atom_switch.apply(0, in_port, injected, pins, emissions.append)
            children: List[Tuple[str, int, int, Pins, int]] = []
            for out_port, out_bits, out_pins in emissions:
                if not out_bits:
                    continue
                if out_port == _CONTROLLER_PORT:
                    row.record_zone(
                        ("controller", switch, out_port), out_pins, out_bits
                    )
                    continue
                role = self._role_of(switch, out_port)
                if role.kind == "edge":
                    row.record_zone(("edge", switch, out_port), out_pins, out_bits)
                elif role.kind == "link" and role.peer is not None:
                    peer_switch, peer_port = role.peer
                    children.append(
                        (peer_switch, peer_port, out_bits, out_pins, depth + 1)
                    )
                else:
                    row.record_zone(
                        ("unbound", switch, out_port), out_pins, out_bits
                    )
            stack.extend(reversed(children))
        return row
