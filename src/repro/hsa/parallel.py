"""Deterministic worker-pool fan-out for whole-network sweeps.

Multi-source analyses (``sources_reaching``, ``detect_all_loops``,
per-switch TF compilation, per-ingress matrix rows) are embarrassingly
parallel: one independent task per ingress port or per switch.
:class:`FanOutPool` runs those tasks over a persistent worker pool and
returns the results **in input order**, so callers that iterate a sorted
candidate list and merge results positionally produce bit-identical
output for any worker count — the determinism argument is "sorted inputs
+ order-preserving map", never "threads happened to finish in order".

Modes:

* ``"thread"`` (default) — shares the process, so engine memoisation
  keeps working and nothing needs to be picklable.  Under a GIL build
  the win is bounded (HSA propagation is pure Python), but the fan-out
  is still correct and free-threaded builds scale it.
* ``"process"`` — real multi-core parallelism via the persistent
  :class:`~repro.hsa.farm.CompileFarm`: long-lived worker processes
  with content-addressed part caches, so the shared ``context`` ships
  to each worker once per content digest and stays warm across batches.
  An unpicklable context falls back to threads **loudly** — a
  :class:`PoolModeFallbackWarning` (once per pool) plus the
  ``process_fallbacks`` counter — never silently.

Executors are persistent: one lazily-started thread pool (or farm
attachment) per :class:`FanOutPool`, reused across every ``map`` call
and torn down by an idempotent :meth:`FanOutPool.close` (engines and
the serving scheduler call it on shutdown; a closed pool degrades to
the inline serial loop).  ``workers <= 1`` (or a single task)
short-circuits to an inline loop with zero pool overhead, which keeps
the serial path the fast path on single-core hosts.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.hsa.farm import CompileFarm, FarmShipError, FarmTaskError, shared_farm

#: Environment defaults for consumers that construct pools without
#: explicit arguments (engines, schedulers, the CLI): ``RVAAS_POOL_MODE``
#: selects thread/process fan-out, ``RVAAS_POOL_WORKERS`` the width.
POOL_MODE_ENV_VAR = "RVAAS_POOL_MODE"
POOL_WORKERS_ENV_VAR = "RVAAS_POOL_WORKERS"


class PoolModeFallbackWarning(UserWarning):
    """A process-mode fan-out had to run on threads (unpicklable work)."""


def env_pool_mode(default: str = "thread") -> str:
    """The pool mode requested via ``RVAAS_POOL_MODE`` (or ``default``)."""
    mode = os.environ.get(POOL_MODE_ENV_VAR, default)
    if mode not in ("thread", "process"):
        raise ValueError(f"unknown {POOL_MODE_ENV_VAR}: {mode!r}")
    return mode


def env_pool_workers(default: int = 1) -> int:
    """The worker count requested via ``RVAAS_POOL_WORKERS``."""
    raw = os.environ.get(POOL_WORKERS_ENV_VAR)
    if raw is None:
        return default
    return max(1, int(raw))


def chunks(items: Sequence[Any], size: int):
    """Contiguous shards of ``items``, each at most ``size`` long."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive: {size}")
    for start in range(0, len(items), size):
        yield list(items[start : start + size])


def default_workers() -> int:
    """A sensible worker count for whole-network sweeps on this host."""
    return max(1, os.cpu_count() or 1)


def _run_shard(packed: tuple, shard: List[Any]) -> List[Any]:
    """One :meth:`FanOutPool.map_chunked` shard: ``fn`` over its items.

    Module-level (not a closure) so a process-mode pool can ship it to
    the farm — the packed ``(fn, context)`` pair is the content-addressed
    part, warm across batches.
    """
    fn, context = packed
    return [fn(context, item) for item in shard]


#: Farm batch counters a pool attributes to itself (same keys the
#: farm's per-batch stats dicts carry, plus a batch count).
_FARM_COUNTER_KEYS = (
    "tasks",
    "warm_hits",
    "mirror_reuses",
    "bytes_shipped",
    "parts_shipped",
    "parts_cached",
    "worker_restarts",
)


class FanOutPool:
    """Order-preserving parallel map over independent per-item tasks."""

    def __init__(
        self,
        workers: int = 1,
        mode: str = "thread",
        *,
        farm: Optional[CompileFarm] = None,
    ) -> None:
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown pool mode: {mode!r}")
        self.workers = max(1, int(workers))
        self.mode = mode
        self.tasks_submitted = 0
        self.parallel_batches = 0
        #: process-mode batches that had to run on threads because the
        #: (fn, context) pair would not pickle — satellite requirement:
        #: the downgrade is counted and warned, never silent
        self.process_fallbacks = 0
        #: farm accounting attributable to this pool (the farm itself is
        #: shared; these are the deltas of batches this pool submitted)
        self.farm_counters: Dict[str, int] = {"batches": 0}
        for key in _FARM_COUNTER_KEYS:
            self.farm_counters[key] = 0
        self._fallback_warned = False
        self._executor: Optional[ThreadPoolExecutor] = None
        #: injected private farm (tests / crash drills) — the injector
        #: owns its lifecycle; ``None`` attaches to the shared farm
        self._farm = farm
        self._owns_farm = False
        self._closed = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Tear the persistent executor down; idempotent.

        A closed pool still answers every ``map`` call — inline and
        serial — so shutdown ordering can never deadlock a late query.
        Shared farms are left running for other pools; ``atexit`` (or
        :func:`repro.hsa.farm.shutdown_farms`) reaps them.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __del__(self) -> None:  # best-effort leak guard
        try:
            self.close()
        except Exception:
            pass

    def _thread_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="fanout"
                )
            return self._executor

    def farm(self) -> CompileFarm:
        """The compile farm behind process mode (lazily attached)."""
        if self._farm is None or self._farm.closed:
            self._farm = shared_farm(self.workers)
        return self._farm

    def _account(self, batch: Dict[str, int]) -> None:
        self.farm_counters["batches"] += 1
        for key in _FARM_COUNTER_KEYS:
            self.farm_counters[key] += batch.get(key, 0)

    @property
    def is_process(self) -> bool:
        """True when this pool runs real process-farm fan-outs."""
        return self.mode == "process" and self.workers > 1 and not self._closed

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def map(
        self, fn: Callable[[Any, Any], Any], context: Any, items: Sequence[Any]
    ) -> List[Any]:
        """``[fn(context, item) for item in items]``, possibly in parallel.

        Results are returned in the order of ``items`` regardless of
        completion order; exceptions propagate exactly as in the serial
        loop (the first failing item's exception, later work discarded).
        """
        items = list(items)
        self.tasks_submitted += len(items)
        if self._closed or self.workers <= 1 or len(items) <= 1:
            return [fn(context, item) for item in items]
        self.parallel_batches += 1
        if self.mode == "process":
            try:
                blob = pickle.dumps((fn, context), pickle.HIGHEST_PROTOCOL)
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                self._loud_fallback(f"context not picklable: {exc!r}")
            else:
                ctx_key = ("ctx", hashlib.sha1(blob).hexdigest())
                try:
                    results, batch = self.farm().run_generic(ctx_key, blob, items)
                except (FarmShipError, FarmTaskError) as exc:
                    # The context failed to unpickle on the worker, or a
                    # task result (or its exception) would not pickle
                    # back; the thread rerun reproduces it in-process.
                    self._loud_fallback(str(exc))
                else:
                    self._account(batch)
                    return results
        executor = self._thread_executor()
        return list(executor.map(lambda item: fn(context, item), items))

    def map_chunked(
        self,
        fn: Callable[[Any, Any], Any],
        context: Any,
        items: Sequence[Any],
        *,
        chunk_size: int = 0,
    ) -> List[Any]:
        """Order-preserving map over *shards* of ``items``.

        The per-item dispatch of :meth:`map` is wasteful when each task
        is microseconds of work (the serving tier's per-key lookups):
        this variant splits ``items`` into contiguous shards, runs one
        task per shard, and flattens the shard results back into input
        order.  ``chunk_size=0`` balances the shard count to the worker
        count.  Determinism is inherited: contiguous shards of a sorted
        input, merged positionally, are the sorted input.
        """
        items = list(items)
        if self._closed or self.workers <= 1 or len(items) <= 1:
            self.tasks_submitted += len(items)
            return [fn(context, item) for item in items]
        if chunk_size <= 0:
            chunk_size = max(1, -(-len(items) // self.workers))
        shards = list(chunks(items, chunk_size))
        merged: List[Any] = []
        for shard_result in self.map(_run_shard, (fn, context), shards):
            merged.extend(shard_result)
        return merged

    # ------------------------------------------------------------------
    # Farm pass-throughs (content-addressed specs)
    # ------------------------------------------------------------------

    def farm_compile(self, keys: Sequence[tuple], payloads: Dict[tuple, Any]) -> List[Any]:
        """Per-switch pipeline compiles on the farm (``compile`` spec)."""
        results, batch = self.farm().run_compile(keys, payloads)
        self._account(batch)
        return results

    def farm_matrix(self, items: Sequence[tuple], **spec: Any) -> List[Any]:
        """Matrix-row propagation on delta-patched farm mirrors."""
        results, batch = self.farm().run_matrix(items=items, **spec)
        self._account(batch)
        return results

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _loud_fallback(self, reason: str) -> None:
        self.process_fallbacks += 1
        if not self._fallback_warned:
            self._fallback_warned = True
            warnings.warn(
                "FanOutPool(mode='process') falling back to threads: "
                + reason,
                PoolModeFallbackWarning,
                stacklevel=3,
            )

    def stats(self) -> dict:
        out = {
            "workers": self.workers,
            "mode": self.mode,
            "closed": self._closed,
            "tasks_submitted": self.tasks_submitted,
            "parallel_batches": self.parallel_batches,
            "process_fallbacks": self.process_fallbacks,
        }
        out.update({f"farm_{k}": v for k, v in self.farm_counters.items()})
        return out
