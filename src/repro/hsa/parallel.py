"""Deterministic worker-pool fan-out for whole-network sweeps.

Multi-source analyses (``sources_reaching``, ``detect_all_loops``,
per-switch TF compilation) are embarrassingly parallel: one independent
task per ingress port or per switch.  :class:`FanOutPool` runs those
tasks over a configurable worker pool and returns the results **in input
order**, so callers that iterate a sorted candidate list and merge
results positionally produce bit-identical output for any worker count —
the determinism argument is "sorted inputs + order-preserving map",
never "threads happened to finish in order".

Modes:

* ``"thread"`` (default) — shares the process, so engine memoisation
  keeps working and nothing needs to be picklable.  Under a GIL build
  the win is bounded (HSA propagation is pure Python), but the fan-out
  is still correct and free-threaded builds scale it.
* ``"process"`` — real parallelism for CPU-bound sweeps.  The shared
  ``context`` (typically an analyzer) is shipped to each worker exactly
  once via the pool initializer, not per task, so the pickling cost is
  amortised over the whole sweep.

``workers <= 1`` (or a single task) short-circuits to an inline loop
with zero pool overhead, which keeps the serial path the fast path on
single-core hosts.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

#: Per-process slot used by process-mode workers; installed once by the
#: pool initializer so tasks only carry their (small) item payload.
_WORKER_STATE: Optional[tuple] = None


def _install_worker(fn: Callable, context: Any) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (fn, context)


def _run_installed(item: Any) -> Any:
    fn, context = _WORKER_STATE  # type: ignore[misc]
    return fn(context, item)


def chunks(items: Sequence[Any], size: int):
    """Contiguous shards of ``items``, each at most ``size`` long."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive: {size}")
    for start in range(0, len(items), size):
        yield list(items[start : start + size])


def default_workers() -> int:
    """A sensible worker count for whole-network sweeps on this host."""
    return max(1, os.cpu_count() or 1)


class FanOutPool:
    """Order-preserving parallel map over independent per-item tasks."""

    def __init__(self, workers: int = 1, mode: str = "thread") -> None:
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown pool mode: {mode!r}")
        self.workers = max(1, int(workers))
        self.mode = mode
        self.tasks_submitted = 0
        self.parallel_batches = 0

    def map(
        self, fn: Callable[[Any, Any], Any], context: Any, items: Sequence[Any]
    ) -> List[Any]:
        """``[fn(context, item) for item in items]``, possibly in parallel.

        Results are returned in the order of ``items`` regardless of
        completion order; exceptions propagate exactly as in the serial
        loop (the first failing item's exception, later work discarded).
        """
        items = list(items)
        self.tasks_submitted += len(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(context, item) for item in items]
        self.parallel_batches += 1
        n_workers = min(self.workers, len(items))
        if self.mode == "thread":
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                return list(pool.map(lambda item: fn(context, item), items))
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_install_worker,
            initargs=(fn, context),
        ) as pool:
            return list(pool.map(_run_installed, items))

    def map_chunked(
        self,
        fn: Callable[[Any, Any], Any],
        context: Any,
        items: Sequence[Any],
        *,
        chunk_size: int = 0,
    ) -> List[Any]:
        """Order-preserving map over *shards* of ``items``.

        The per-item dispatch of :meth:`map` is wasteful when each task
        is microseconds of work (the serving tier's per-key lookups):
        this variant splits ``items`` into contiguous shards, runs one
        task per shard, and flattens the shard results back into input
        order.  ``chunk_size=0`` balances the shard count to the worker
        count.  Determinism is inherited: contiguous shards of a sorted
        input, merged positionally, are the sorted input.
        """
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            self.tasks_submitted += len(items)
            return [fn(context, item) for item in items]
        if chunk_size <= 0:
            chunk_size = max(1, -(-len(items) // self.workers))
        shards = list(chunks(items, chunk_size))

        def run_shard(ctx: Any, shard: List[Any]) -> List[Any]:
            return [fn(ctx, item) for item in shard]

        merged: List[Any] = []
        for shard_result in self.map(run_shard, context, shards):
            merged.extend(shard_result)
        return merged

    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "mode": self.mode,
            "tasks_submitted": self.tasks_submitted,
            "parallel_batches": self.parallel_batches,
        }
