"""Persistent process-pool compile farm with content-addressed shipping.

Python's GIL means thread-mode fan-out (:class:`~repro.hsa.parallel.
FanOutPool`) gives correctness and free-threaded readiness but no
multi-core speedup for the CPU-bound HSA/atom kernels.  The naive fix —
``ProcessPoolExecutor`` per batch — re-spawns interpreters and re-pickles
the whole analyzer for every sweep, which erases the win at exactly the
batch sizes RVaaS serves.  This module is the production alternative:

* **Persistent workers** — daemon processes spawned once (lazily) and
  reused across batches; ``close()`` tears them down, an ``atexit`` hook
  catches leaks, and a worker killed mid-batch is respawned and its
  shard re-dispatched (``worker_restarts`` counts it), so a crash costs
  a retry, never a wrong or missing answer.
* **Content-addressed shipping** — payloads travel as *parts* keyed by
  the PR-1 per-switch content hashes (``("tf", switch, rules_hash,
  ports)``), the atom-space signature, and a topology digest.  Each
  worker remembers which parts it holds (the parent mirrors that set),
  so a churned snapshot ships only the k changed switches' rules; the
  ``bytes_shipped`` counter makes the delta observable.
* **Versioned, delta-patched mirrors** — the ``matrix`` spec assembles
  a worker-side :class:`~repro.hsa.atoms.AtomNetwork` per snapshot
  content version.  A successor version names its predecessor and the
  touched switches, so the worker rebuilds only the touched pipelines
  (``reuse_from`` / ``touched``) — the initializer-installed context of
  the old design becomes an incrementally patched cache.

Determinism: items are assigned round-robin by input position and the
replies are merged back by index, so any worker count produces the
byte-identical result sequence of the serial loop; compiled artifacts
are pure functions of the shipped rule content.  Error semantics match
the serial loop too — the first failing item's exception (in input
order) propagates, later work is discarded.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import multiprocessing as mp

#: Start-method override for farm workers.  ``fork`` (the default where
#: available) makes worker spawn cheap enough to amortise inside a test
#: run; ``spawn`` is the safe harbour for platforms/embedders where
#: forking a threaded parent is unacceptable.
FARM_START_ENV_VAR = "RVAAS_FARM_START"

_PROTO = pickle.HIGHEST_PROTOCOL


class FarmError(RuntimeError):
    """A farm batch could not complete (worker kept crashing, protocol)."""


class FarmTaskError(RuntimeError):
    """A task raised an exception that could not be pickled back."""


class FarmShipError(FarmError):
    """A shipped part failed to unpickle on the worker.

    Raised back to the caller as-is (the class is module-level, so it
    survives the reply pipe); :class:`~repro.hsa.parallel.FanOutPool`
    treats it like a pickling failure and falls back to threads loudly.
    """


class _WorkerStats:
    """Per-reply accounting a worker sends home with its results."""

    __slots__ = ("warm_hits", "mirror_reuses", "evicted_parts", "evicted_mirrors")

    def __init__(self) -> None:
        self.warm_hits = 0
        self.mirror_reuses = 0
        self.evicted_parts: List[tuple] = []
        self.evicted_mirrors: List[tuple] = []

    def as_dict(self) -> dict:
        return {
            "warm_hits": self.warm_hits,
            "mirror_reuses": self.mirror_reuses,
            "evicted_parts": self.evicted_parts,
            "evicted_mirrors": self.evicted_mirrors,
        }


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _WorkerState:
    """Everything one worker process keeps warm between batches."""

    def __init__(self, max_parts: int, max_mirrors: int) -> None:
        self.max_parts = max_parts
        self.max_mirrors = max_mirrors
        #: content key -> unpickled payload (rules, spaces, topologies,
        #: generic (fn, context) pairs); LRU-bounded, evictions reported
        self.parts: "OrderedDict[tuple, Any]" = OrderedDict()
        #: compile key -> compiled SwitchTransferFunction
        self.compiled: "OrderedDict[tuple, Any]" = OrderedDict()
        #: ("matrix", version) -> assembled AtomNetwork
        self.mirrors: "OrderedDict[tuple, Any]" = OrderedDict()

    def put_part(self, key: tuple, blob: bytes, stats: _WorkerStats) -> None:
        # Stored as the raw blob; unpickled lazily inside a run's
        # try-block (see :meth:`need_part`) so a payload that fails to
        # unpickle surfaces as a reported task error, never a dead
        # worker.  The live object replaces the blob on first use.
        self.parts[key] = blob
        self.parts.move_to_end(key)
        while len(self.parts) > self.max_parts:
            evicted, _ = self.parts.popitem(last=False)
            # A part and its compiled artifact live and die together so
            # the parent's known-part mirror implies compiled warmth.
            self.compiled.pop(evicted, None)
            stats.evicted_parts.append(evicted)

    def need_part(self, key: tuple) -> Any:
        try:
            payload = self.parts[key]
        except KeyError:
            raise FarmError(f"worker missing part {key!r}") from None
        if isinstance(payload, bytes):
            try:
                payload = pickle.loads(payload)
            except Exception as exc:
                raise FarmShipError(
                    f"part {key!r} failed to unpickle on the worker: {exc!r}"
                ) from None
            self.parts[key] = payload
        self.parts.move_to_end(key)
        return payload

    def switch_tf(self, key: tuple, stats: _WorkerStats) -> Any:
        """Compiled pipeline for a ``("tf", switch, hash, ports)`` key."""
        from repro.hsa.transfer import compile_switch_tf

        cached = self.compiled.get(key)
        if cached is not None:
            self.compiled.move_to_end(key)
            stats.warm_hits += 1
            return cached
        _tag, switch, _digest, ports = key
        compiled = compile_switch_tf(switch, self.need_part(key), ports)
        self.compiled[key] = compiled
        return compiled

    def matrix_mirror(self, header: tuple, stats: _WorkerStats) -> Any:
        """The AtomNetwork for one snapshot version, patched from its
        predecessor when the worker still holds it."""
        from repro.hsa.atoms import AtomNetwork
        from repro.hsa.network_tf import NetworkTransferFunction

        version, part_keys, prev_version, touched, max_depth = header
        mirror_key = ("matrix", version)
        mirror = self.mirrors.get(mirror_key)
        if mirror is not None:
            self.mirrors.move_to_end(mirror_key)
            stats.mirror_reuses += 1
            return mirror
        space = None
        wiring = edge_ports = None
        tfs: Dict[str, Any] = {}
        for key in part_keys:
            tag = key[0]
            if tag == "tf":
                tfs[key[1]] = self.switch_tf(key, stats)
            elif tag == "space":
                space = self.need_part(key)
            elif tag == "topo":
                wiring, edge_ports = self.need_part(key)
            else:
                raise FarmError(f"unknown matrix part {key!r}")
        if space is None or wiring is None:
            raise FarmError("matrix mirror lacks space/topology parts")
        network_tf = NetworkTransferFunction(tfs, wiring, edge_ports)
        previous = (
            self.mirrors.get(("matrix", prev_version))
            if prev_version is not None
            else None
        )
        if previous is not None:
            # Patched from the predecessor still held here: only the
            # touched switches recompile (counted alongside exact-version
            # cache hits — both avoid a from-scratch network build).
            stats.mirror_reuses += 1
        mirror = AtomNetwork(
            network_tf,
            space,
            max_depth=max_depth,
            reuse_from=previous,
            touched=touched,
        )
        self.mirrors[mirror_key] = mirror
        while len(self.mirrors) > self.max_mirrors:
            evicted, _ = self.mirrors.popitem(last=False)
            stats.evicted_mirrors.append(evicted)
        return mirror


def _farm_worker_main(conn, max_parts: int, max_mirrors: int) -> None:
    """Worker loop: receive parts and run batches until told to stop."""
    state = _WorkerState(max_parts, max_mirrors)
    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):
            break
        message = pickle.loads(blob)
        tag = message[0]
        if tag == "stop":
            break
        if tag == "part":
            # Part payloads are pickled separately by the parent (so it
            # can count bytes and reuse blobs across workers); unpickle
            # once here and keep the live object warm across batches.
            _, key, payload_blob = message
            # stats for evictions triggered by this part ride the next
            # run reply; keep them in a buffer on the state object
            stats = getattr(state, "_pending_stats", None)
            if stats is None:
                stats = _WorkerStats()
                state._pending_stats = stats  # type: ignore[attr-defined]
            state.put_part(key, payload_blob, stats)
            continue
        if tag != "run":
            conn.send_bytes(
                pickle.dumps(("err", 0, f"unknown message {tag!r}", False), _PROTO)
            )
            continue
        _, spec, header, shard = message
        stats = getattr(state, "_pending_stats", None) or _WorkerStats()
        state._pending_stats = None  # type: ignore[attr-defined]
        reply = _run_shard(state, spec, header, shard, stats)
        try:
            payload = pickle.dumps(reply, _PROTO)
        except Exception as exc:  # unpicklable result: report, don't die
            payload = pickle.dumps(
                ("err", shard[0][0], f"reply not picklable: {exc!r}", False),
                _PROTO,
            )
        conn.send_bytes(payload)


def _run_shard(
    state: _WorkerState, spec: str, header: tuple, shard: list, stats: _WorkerStats
) -> tuple:
    """Execute one worker's slice of a batch; first error wins."""
    out: List[Tuple[int, Any]] = []
    try:
        if spec == "generic":
            fn, context = state.need_part(header)
            for idx, item in shard:
                out.append((idx, fn(context, item)))
        elif spec == "compile":
            for idx, key in shard:
                out.append((idx, state.switch_tf(key, stats)))
        elif spec == "matrix":
            mirror = state.matrix_mirror(header, stats)
            for idx, ref in shard:
                out.append((idx, mirror.propagate(*ref)))
        else:
            raise FarmError(f"unknown spec {spec!r}")
    except BaseException as exc:  # noqa: BLE001 — shipped to the parent
        failed_idx = shard[len(out)][0] if len(out) < len(shard) else -1
        try:
            payload = pickle.dumps(exc, _PROTO)
            return ("err", failed_idx, payload, True)
        except Exception:
            return ("err", failed_idx, repr(exc), False)
    return ("ok", out, stats.as_dict())


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class FarmMetrics:
    """Lifetime counters for one farm (parent-side view)."""

    __slots__ = (
        "workers_spawned",
        "worker_restarts",
        "batches",
        "tasks",
        "parts_shipped",
        "parts_cached",
        "bytes_shipped",
        "warm_hits",
        "mirror_reuses",
        "queue_depth_peak",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _Worker:
    __slots__ = ("process", "conn", "known_parts", "known_mirrors")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        #: parent-side mirror of the worker's part cache membership —
        #: this is what makes shipping content-addressed: a key the
        #: worker already holds is never re-sent
        self.known_parts: set = set()
        self.known_mirrors: set = set()


_CRASH_ERRORS = (EOFError, OSError, BrokenPipeError, ConnectionResetError)


class CompileFarm:
    """A fixed-size team of persistent worker processes.

    Three batch *specs* cover the fan-outs RVaaS runs:

    ``generic``
        ``fn(context, item)`` per item, with the pickled ``(fn,
        context)`` pair shipped once per content digest and kept warm —
        the drop-in process backend for :class:`FanOutPool.map`.
    ``compile``
        items *are* content keys ``("tf", switch, rules_hash, ports)``;
        each worker compiles (or warm-hits) the switch pipeline and
        ships the artifact back.
    ``matrix``
        items are ingress port refs propagated through a worker-side
        :class:`~repro.hsa.atoms.AtomNetwork` mirror assembled from
        parts and delta-patched from the previous snapshot version.
    """

    def __init__(
        self,
        workers: int,
        *,
        start_method: Optional[str] = None,
        max_parts: int = 8192,
        max_mirrors: int = 4,
        restart_limit: int = 2,
    ) -> None:
        self.workers = max(1, int(workers))
        if start_method is None:
            start_method = os.environ.get(FARM_START_ENV_VAR)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        self._context = mp.get_context(start_method)
        self.max_parts = max_parts
        self.max_mirrors = max_mirrors
        self.restart_limit = restart_limit
        self.metrics = FarmMetrics()
        self._workers: List[Optional[_Worker]] = [None] * self.workers
        self._lock = threading.RLock()
        self._inflight = 0
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_farm_worker_main,
            args=(child_conn, self.max_parts, self.max_mirrors),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.metrics.workers_spawned += 1
        return _Worker(process, parent_conn)

    def _worker(self, index: int) -> _Worker:
        worker = self._workers[index]
        if worker is None or not worker.process.is_alive():
            if worker is not None:
                # A previously-live worker died between batches (crash,
                # OOM kill): replacing it is a restart, same as a
                # mid-batch death.
                self._discard(worker)
                self.metrics.worker_restarts += 1
            worker = self._spawn()
            self._workers[index] = worker
        return worker

    def _respawn(self, index: int) -> _Worker:
        worker = self._workers[index]
        if worker is not None:
            self._discard(worker)
        worker = self._spawn()
        self._workers[index] = worker
        self.metrics.worker_restarts += 1
        return worker

    @staticmethod
    def _discard(worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=1.0)

    def close(self) -> None:
        """Stop every worker; idempotent, safe to call from atexit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._workers:
                if worker is None:
                    continue
                try:
                    worker.conn.send_bytes(pickle.dumps(("stop",), _PROTO))
                except _CRASH_ERRORS:
                    pass
            for worker in self._workers:
                if worker is None:
                    continue
                worker.process.join(timeout=1.0)
                self._discard(worker)
            self._workers = [None] * self.workers

    # -- batch execution ------------------------------------------------

    def run_generic(
        self, ctx_key: tuple, ctx_blob: bytes, items: Sequence[Any]
    ) -> Tuple[List[Any], Dict[str, int]]:
        """``fn(context, item)`` fan-out; ``ctx_blob`` pre-pickled by the
        caller (so pickling failures surface before any dispatch)."""
        return self._run_batch(
            "generic",
            ctx_key,
            list(items),
            {},
            needed_for=lambda shard: (ctx_key,),
            preblobs={ctx_key: ctx_blob},
        )

    def run_compile(
        self, keys: Sequence[tuple], payloads: Dict[tuple, Any]
    ) -> Tuple[List[Any], Dict[str, int]]:
        """Compile one switch pipeline per content key."""
        return self._run_batch(
            "compile",
            None,
            list(keys),
            payloads,
            needed_for=lambda shard: tuple(key for _idx, key in shard),
        )

    def run_matrix(
        self,
        *,
        version: str,
        part_keys: Sequence[tuple],
        payloads: Dict[tuple, Any],
        items: Sequence[Tuple[str, int]],
        prev_version: Optional[str] = None,
        touched: Iterable[str] = (),
        max_depth: int = 64,
    ) -> Tuple[List[Any], Dict[str, int]]:
        """Propagate matrix rows on delta-patched AtomNetwork mirrors."""
        part_keys = tuple(part_keys)
        header = (version, part_keys, prev_version, tuple(sorted(touched)), max_depth)
        return self._run_batch(
            "matrix",
            header,
            list(items),
            payloads,
            needed_for=lambda shard: part_keys,
            mirror_version=version,
        )

    def _run_batch(
        self,
        spec: str,
        header: Any,
        items: List[Any],
        payloads: Dict[tuple, Any],
        *,
        needed_for: Callable[[list], tuple],
        mirror_version: Optional[str] = None,
        preblobs: Optional[Dict[tuple, bytes]] = None,
    ) -> Tuple[List[Any], Dict[str, int]]:
        if not items:
            return [], {}
        batch = {
            "tasks": len(items),
            "bytes_shipped": 0,
            "parts_shipped": 0,
            "parts_cached": 0,
            "warm_hits": 0,
            "mirror_reuses": 0,
            "worker_restarts": 0,
        }
        # Payloads are pickled lazily, once per key per batch, and only
        # for keys some worker actually misses — a churned snapshot pays
        # serialization for the k changed parts, not the whole network.
        blob_cache: Dict[tuple, bytes] = dict(preblobs or {})

        def blob_for(key: tuple) -> bytes:
            blob = blob_cache.get(key)
            if blob is None:
                if key not in payloads:
                    raise FarmError(f"no payload for part {key!r}")
                try:
                    blob = pickle.dumps(payloads[key], _PROTO)
                except Exception as exc:
                    raise FarmShipError(
                        f"part {key!r} failed to pickle: {exc!r}"
                    ) from None
                blob_cache[key] = blob
            return blob

        with self._lock:
            if self._closed:
                raise FarmError("farm is closed")
            self._inflight += len(items)
            if self._inflight > self.metrics.queue_depth_peak:
                self.metrics.queue_depth_peak = self._inflight
            try:
                results = self._dispatch_and_collect(
                    spec, header, items, blob_for, needed_for, mirror_version, batch
                )
            finally:
                self._inflight -= len(items)
            self.metrics.batches += 1
            self.metrics.tasks += len(items)
            for name in (
                "bytes_shipped",
                "parts_shipped",
                "parts_cached",
                "warm_hits",
                "mirror_reuses",
            ):
                setattr(
                    self.metrics, name, getattr(self.metrics, name) + batch[name]
                )
        return results, batch

    def _dispatch_and_collect(
        self,
        spec: str,
        header: Any,
        items: List[Any],
        blob_for: Callable[[tuple], bytes],
        needed_for: Callable[[list], tuple],
        mirror_version: Optional[str],
        batch: Dict[str, int],
    ) -> List[Any]:
        n = min(self.workers, len(items))
        shards: Dict[int, list] = {
            wi: [(idx, item) for idx, item in enumerate(items) if idx % n == wi]
            for wi in range(n)
        }

        def dispatch(wi: int) -> None:
            worker = self._worker(wi)
            for key in needed_for(shards[wi]):
                if key in worker.known_parts:
                    batch["parts_cached"] += 1
                    continue
                message = pickle.dumps(("part", key, blob_for(key)), _PROTO)
                worker.conn.send_bytes(message)
                worker.known_parts.add(key)
                batch["parts_shipped"] += 1
                batch["bytes_shipped"] += len(message)
            message = pickle.dumps(("run", spec, header, shards[wi]), _PROTO)
            worker.conn.send_bytes(message)
            batch["bytes_shipped"] += len(message)

        def dispatch_with_retry(wi: int) -> None:
            attempts = 0
            while True:
                try:
                    dispatch(wi)
                    return
                except _CRASH_ERRORS:
                    attempts += 1
                    batch["worker_restarts"] += 1
                    if attempts > self.restart_limit:
                        raise FarmError(
                            f"farm worker {wi} kept crashing during dispatch"
                        ) from None
                    self._respawn(wi)

        dispatched: List[int] = []
        try:
            for wi in shards:
                dispatch_with_retry(wi)
                dispatched.append(wi)
        except FarmError:
            # A payload failed to pickle (or was missing) after earlier
            # workers already received their runs: drain those replies
            # so the pipes stay request/reply-aligned for the next batch.
            for wi in dispatched:
                worker = self._workers[wi]
                try:
                    assert worker is not None
                    worker.conn.recv_bytes()
                except _CRASH_ERRORS:
                    self._respawn(wi)
            raise
        results: List[Any] = [None] * len(items)
        errors: List[Tuple[int, Any, bool]] = []
        for wi in shards:
            attempts = 0
            while True:
                worker = self._workers[wi]
                try:
                    assert worker is not None
                    reply = pickle.loads(worker.conn.recv_bytes())
                    break
                except _CRASH_ERRORS:
                    # The worker died mid-shard (or the pipe broke).
                    # Respawn it — its caches are gone, so the retry
                    # re-ships every part the shard needs — and re-run
                    # the whole shard; results are idempotent.
                    attempts += 1
                    batch["worker_restarts"] += 1
                    self.metrics.worker_restarts += 1
                    if attempts > self.restart_limit:
                        raise FarmError(
                            f"farm worker {wi} kept crashing mid-batch"
                        ) from None
                    self._respawn(wi)
                    dispatch_with_retry(wi)
            if reply[0] == "ok":
                _tag, pairs, stats = reply
                for idx, value in pairs:
                    results[idx] = value
                batch["warm_hits"] += stats["warm_hits"]
                batch["mirror_reuses"] += stats["mirror_reuses"]
                for key in stats["evicted_parts"]:
                    worker.known_parts.discard(key)
                for key in stats["evicted_mirrors"]:
                    worker.known_mirrors.discard(key)
                if mirror_version is not None:
                    worker.known_mirrors.add(("matrix", mirror_version))
            else:
                _tag, idx, payload, was_pickled = reply
                errors.append((idx, payload, was_pickled))
        if errors:
            idx, payload, was_pickled = min(errors, key=lambda e: e[0])
            if was_pickled:
                raise pickle.loads(payload)
            raise FarmTaskError(payload)
        return results

    def stats(self) -> Dict[str, int]:
        snapshot = self.metrics.as_dict()
        snapshot["workers"] = self.workers
        snapshot["alive"] = sum(
            1
            for worker in self._workers
            if worker is not None and worker.process.is_alive()
        )
        return snapshot


# ----------------------------------------------------------------------
# Shared farms
# ----------------------------------------------------------------------

#: One shared farm per worker count.  Engines, analyzers, and serving
#: schedulers requesting the same width share the same worker team, so
#: a process-mode test suite keeps a bounded process count and every
#: consumer benefits from every other consumer's warm parts.
_SHARED_FARMS: Dict[int, CompileFarm] = {}
_SHARED_LOCK = threading.Lock()


def shared_farm(workers: int) -> CompileFarm:
    """The process-wide farm for ``workers`` lanes (created lazily)."""
    workers = max(1, int(workers))
    with _SHARED_LOCK:
        farm = _SHARED_FARMS.get(workers)
        if farm is None or farm.closed:
            farm = CompileFarm(workers)
            _SHARED_FARMS[workers] = farm
        return farm


def shutdown_farms() -> None:
    """Close every shared farm (idempotent; registered atexit)."""
    with _SHARED_LOCK:
        for farm in _SHARED_FARMS.values():
            farm.close()
        _SHARED_FARMS.clear()


atexit.register(shutdown_farms)
