"""Ternary wildcard expressions: the atoms of header space.

A :class:`Wildcard` denotes the set of header vectors agreeing with
``value`` on every bit where ``mask`` is 1; all other bits are free
("don't care").  Invariant: ``value & ~mask == 0``.

The algebra (intersection, subset, disjoint subtraction, complement) is
exactly the HSA wildcard calculus; Python's arbitrary-precision ints make
the 228-bit vectors one machine word conceptually.

Hot-path discipline: the public constructor validates the ``value & ~mask
== 0`` invariant, but the algebra methods produce results that satisfy it
by construction, so they build through :meth:`Wildcard._make` — a trusted
constructor that skips ``__init__``/``__post_init__`` entirely.  Profiles
of full-snapshot verification showed dataclass construction overhead as
the single largest line item before this split (benchmark E17).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Mapping, Optional

from repro.hsa.layout import ALL_ONES, FIELD_LAYOUT, HEADER_BITS, FieldSlice
from repro.netlib.addresses import IPv4Address, IPv4Network, MacAddress
from repro.openflow.match import Match


@dataclass(frozen=True)
class Wildcard:
    """One ternary expression over the packed header vector."""

    value: int
    mask: int

    def __post_init__(self) -> None:
        if self.mask & ~ALL_ONES:
            raise ValueError("mask bits set outside header width")
        if self.value & ~self.mask:
            raise ValueError("value bits set outside mask")

    def __hash__(self) -> int:
        # Wildcards are hashed constantly (seen-coverage keys, memo
        # fingerprints, dedup sets); cache the tuple hash on first use.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.value, self.mask))
            object.__setattr__(self, "_hash", h)
        return h

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _make(cls, value: int, mask: int) -> "Wildcard":
        """Trusted constructor: caller guarantees ``value & ~mask == 0``
        and ``mask & ~ALL_ONES == 0``.  Skips dataclass ``__init__`` and
        the ``__post_init__`` validation — for algebra-internal results
        whose invariant holds by construction."""
        made = object.__new__(cls)
        object.__setattr__(made, "value", value)
        object.__setattr__(made, "mask", mask)
        return made

    @classmethod
    def all(cls) -> "Wildcard":
        """The full header space (every bit wildcarded)."""
        return cls(value=0, mask=0)

    @classmethod
    def point(cls, vector: int) -> "Wildcard":
        """The singleton containing exactly one concrete header."""
        return cls(value=vector & ALL_ONES, mask=ALL_ONES)

    @classmethod
    def from_match(cls, match: Match) -> "Wildcard":
        """Translate an OpenFlow match into a wildcard (ignores in_port)."""
        value = 0
        mask = 0
        for name, slice_ in FIELD_LAYOUT.items():
            wanted = getattr(match, name)
            if wanted is None:
                continue
            if isinstance(wanted, IPv4Network):
                prefix_mask = wanted.mask  # high 'prefix_len' bits of 32
                value |= (wanted.address.value & prefix_mask) << slice_.offset
                mask |= prefix_mask << slice_.offset
            elif isinstance(wanted, (MacAddress, IPv4Address)):
                value |= slice_.pack(wanted.value)
                mask |= slice_.mask
            else:
                value |= slice_.pack(int(wanted))
                mask |= slice_.mask
        return cls(value=value, mask=mask)

    @classmethod
    def from_fields(cls, **fields: int) -> "Wildcard":
        """Build a wildcard constraining the named fields to exact values."""
        value = 0
        mask = 0
        for name, wanted in fields.items():
            slice_ = FIELD_LAYOUT[name]
            value |= slice_.pack(int(wanted))
            mask |= slice_.mask
        return cls(value=value, mask=mask)

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------

    def intersect(self, other: "Wildcard") -> Optional["Wildcard"]:
        """Intersection, or None when empty."""
        if (self.value ^ other.value) & self.mask & other.mask:
            return None
        return Wildcard._make(self.value | other.value, self.mask | other.mask)

    def is_subset_of(self, other: "Wildcard") -> bool:
        """True iff every header in ``self`` is also in ``other``."""
        if other.mask & ~self.mask:
            return False  # other constrains a bit self leaves free
        return not ((self.value ^ other.value) & other.mask)

    def subtract(self, other: "Wildcard") -> List["Wildcard"]:
        """``self`` minus ``other`` as a list of pairwise-disjoint wildcards."""
        if (self.value ^ other.value) & self.mask & other.mask:
            return [self]  # disjoint: nothing to carve out
        pieces: List[Wildcard] = []
        fixed_value, fixed_mask = self.value, self.mask
        remaining = other.mask & ~self.mask
        while remaining:
            bit = remaining & -remaining
            remaining &= remaining - 1
            other_bit = other.value & bit
            # Headers agreeing with `fixed` so far but differing from
            # `other` on this bit are outside `other`.
            pieces.append(
                Wildcard._make(
                    (fixed_value & ~bit) | (bit ^ other_bit),
                    fixed_mask | bit,
                )
            )
            # Later pieces agree with `other` on this bit (disjointness).
            fixed_value = (fixed_value & ~bit) | other_bit
            fixed_mask |= bit
        return pieces

    def contains_point(self, vector: int) -> bool:
        return not ((vector ^ self.value) & self.mask)

    def overlaps(self, other: "Wildcard") -> bool:
        return self.intersect(other) is not None

    # ------------------------------------------------------------------
    # Rewriting (SetField semantics)
    # ------------------------------------------------------------------

    def rewrite_field(self, slice_: FieldSlice, new_value: int) -> "Wildcard":
        """Force one field to a concrete value (header rewrite action)."""
        field_mask = slice_.mask
        return Wildcard._make(
            (self.value & ~field_mask) | slice_.pack(new_value),
            self.mask | field_mask,
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def field_constraint(self, name: str) -> tuple[int, int]:
        """(value, mask) of one field within this wildcard (field-local)."""
        slice_ = FIELD_LAYOUT[name]
        local_mask = (self.mask >> slice_.offset) & ((1 << slice_.width) - 1)
        local_value = (self.value >> slice_.offset) & ((1 << slice_.width) - 1)
        return local_value, local_mask

    def fixed_bits(self) -> int:
        """Number of constrained bits."""
        return self.mask.bit_count()

    def size_log2(self) -> int:
        """log2 of the number of headers in this wildcard."""
        return HEADER_BITS - self.fixed_bits()

    def sample(self, rng: random.Random) -> int:
        """A uniformly random concrete header from this wildcard."""
        free = ~self.mask & ALL_ONES
        noise = rng.getrandbits(HEADER_BITS) & free
        return self.value | noise

    def describe(self) -> str:
        parts = []
        for name in FIELD_LAYOUT:
            value, mask = self.field_constraint(name)
            if mask:
                width = FIELD_LAYOUT[name].width
                if mask == (1 << width) - 1:
                    parts.append(f"{name}={value:#x}")
                else:
                    parts.append(f"{name}~{value:#x}/{mask:#x}")
        return "Wildcard(" + ", ".join(parts) + ")" if parts else "Wildcard(*)"


def enumerate_bits(mask: int) -> Iterator[int]:
    """Yield each set bit of ``mask`` as a single-bit integer."""
    while mask:
        bit = mask & -mask
        yield bit
        mask &= mask - 1
