"""The packed bit layout of the analysed header.

All nine OpenFlow-matchable fields are packed, little-bit-0-first, into a
single ``HEADER_BITS``-wide vector.  Every subsystem that converts
between packets/matches and header-space points uses these offsets, so
there is exactly one source of truth for "which bit is which".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.netlib.packet import HEADER_FIELDS, Packet


@dataclass(frozen=True)
class FieldSlice:
    """Bit position of one header field inside the packed vector."""

    name: str
    offset: int
    width: int

    @property
    def mask(self) -> int:
        """All-ones mask covering this field, shifted into place."""
        return ((1 << self.width) - 1) << self.offset

    def pack(self, value: int) -> int:
        if not 0 <= value < 1 << self.width:
            raise ValueError(
                f"value {value:#x} does not fit field {self.name} ({self.width} bits)"
            )
        return value << self.offset

    def unpack(self, vector: int) -> int:
        return (vector >> self.offset) & ((1 << self.width) - 1)


_FIELD_WIDTHS: Mapping[str, int] = {
    "eth_src": 48,
    "eth_dst": 48,
    "eth_type": 16,
    "vlan_id": 12,
    "ip_src": 32,
    "ip_dst": 32,
    "ip_proto": 8,
    "tp_src": 16,
    "tp_dst": 16,
}


def _build_layout() -> dict[str, FieldSlice]:
    layout: dict[str, FieldSlice] = {}
    offset = 0
    for name in HEADER_FIELDS:
        width = _FIELD_WIDTHS[name]
        layout[name] = FieldSlice(name=name, offset=offset, width=width)
        offset += width
    return layout


FIELD_LAYOUT: Mapping[str, FieldSlice] = _build_layout()
HEADER_BITS: int = sum(_FIELD_WIDTHS.values())
ALL_ONES: int = (1 << HEADER_BITS) - 1


def field_slice(name: str) -> FieldSlice:
    try:
        return FIELD_LAYOUT[name]
    except KeyError:
        raise KeyError(f"unknown header field: {name}") from None


def pack_headers(packet: Packet) -> int:
    """Pack a packet's headers into a concrete header-space point."""
    vector = 0
    for name, slice_ in FIELD_LAYOUT.items():
        vector |= slice_.pack(packet.header(name))
    return vector


def unpack_headers(vector: int) -> dict[str, int]:
    """Inverse of :func:`pack_headers` (field name -> int value)."""
    return {name: slice_.unpack(vector) for name, slice_ in FIELD_LAYOUT.items()}
