"""The network-wide transfer function: switch TFs plus the wiring plan.

Combines per-switch :class:`~repro.hsa.transfer.SwitchTransferFunction`
objects with the topology function Γ mapping a (switch, out-port) to the
(switch, in-port) at the other end of the wire, exactly as in the HSA
formulation.  Edge ports (host-facing) terminate propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.hsa.headerspace import HeaderSpace
from repro.hsa.transfer import CONTROLLER_PORT, Emission, SwitchTransferFunction

PortRef = Tuple[str, int]


@dataclass(frozen=True)
class PortRole:
    """Classification of one switch port in the wiring plan."""

    kind: str  # "link" | "edge" | "unbound"
    peer: Optional[PortRef] = None  # for kind == "link"


class NetworkTransferFunction:
    """Everything needed to propagate header spaces across the network."""

    def __init__(
        self,
        transfer_functions: Mapping[str, SwitchTransferFunction],
        wiring: Mapping[PortRef, PortRef],
        edge_ports: Mapping[str, frozenset[int]],
    ) -> None:
        self.transfer_functions = dict(transfer_functions)
        self.wiring = dict(wiring)
        self.edge_ports = {name: frozenset(ports) for name, ports in edge_ports.items()}
        self._roles: Dict[PortRef, PortRole] = {}
        for here, there in self.wiring.items():
            self._roles[here] = PortRole(kind="link", peer=there)
        for switch, ports in self.edge_ports.items():
            for port in ports:
                self._roles[(switch, port)] = PortRole(kind="edge")

    def switch_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.transfer_functions))

    def with_updated_switches(
        self, updates: Mapping[str, SwitchTransferFunction]
    ) -> "NetworkTransferFunction":
        """A sibling NTF with ``updates`` swapped in.

        The wiring plan, edge-port sets, and the derived port-role map
        are shared with ``self`` (they are never mutated), so building
        the successor of a snapshot that changed k switches costs O(k)
        plus one dict copy — this is the engine's incremental
        compilation path.
        """
        sibling = object.__new__(NetworkTransferFunction)
        sibling.transfer_functions = {**self.transfer_functions, **updates}
        sibling.wiring = self.wiring
        sibling.edge_ports = self.edge_ports
        sibling._roles = self._roles
        return sibling

    def role_of(self, switch: str, port: int) -> PortRole:
        return self._roles.get((switch, port), PortRole(kind="unbound"))

    def apply_switch(
        self, switch: str, in_port: int, space: HeaderSpace
    ) -> list[Emission]:
        tf = self.transfer_functions.get(switch)
        if tf is None:
            return []
        return tf.apply(in_port, space)

    def all_edge_ports(self) -> tuple[PortRef, ...]:
        refs = []
        for switch in sorted(self.edge_ports):
            for port in sorted(self.edge_ports[switch]):
                refs.append((switch, port))
        return tuple(refs)

    def total_rules(self) -> int:
        return sum(tf.rule_count() for tf in self.transfer_functions.values())

    def atom_constraints(self) -> tuple:
        """The deduplicated predicate set of the whole network.

        Union of every switch pipeline's
        :meth:`~repro.hsa.transfer.SwitchTransferFunction.constraint_wildcards`,
        sorted for a deterministic atom-space interning key.
        """
        seen = set()
        for name in sorted(self.transfer_functions):
            seen.update(self.transfer_functions[name].constraint_wildcards())
        return tuple(sorted(seen, key=lambda w: (w.value, w.mask)))

    def kernel_stats(self) -> Dict[str, int]:
        """Summed fast-path counters across every switch TF (telemetry).

        Switch TFs are structurally shared across snapshot versions by
        the verification engine, so these are lifetime totals for the
        compiled artifacts, not per-snapshot numbers; callers that want
        a per-run delta snapshot this before and after.
        """
        totals: Dict[str, int] = {}
        for tf in self.transfer_functions.values():
            stats = getattr(tf, "stats", None)
            if stats is None:
                continue  # reference TFs carry no counters
            for name, value in stats.as_dict().items():
                totals[name] = totals.get(name, 0) + value
        return totals


CONTROLLER = CONTROLLER_PORT
