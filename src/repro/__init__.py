"""RVaaS: Routing-Verification-as-a-Service.

A complete reproduction of *"Routing-Verification-as-a-Service (RVaaS):
Trustworthy Routing Despite Insecure Providers"* (Schiff, Thimmaraju,
Schmid — DSN 2016), including every substrate the paper relies on:

* :mod:`repro.netlib` — packets and addressing
* :mod:`repro.crypto` — signatures, hybrid encryption, SGX-style attestation
* :mod:`repro.openflow` — the OpenFlow protocol and switch model
* :mod:`repro.dataplane` — a deterministic discrete-event network emulator
* :mod:`repro.controlplane` — the provider's (compromisable) controller
* :mod:`repro.hsa` — Header Space Analysis
* :mod:`repro.attacks` — the adversary library
* :mod:`repro.baselines` — provider-trusting verifiers for comparison
* :mod:`repro.core` — the RVaaS service, client library, and federation

Quickstart::

    from repro import build_testbed, isp_topology, IsolationQuery

    bed = build_testbed(isp_topology(clients=["alice", "bob"]),
                        isolate_clients=True, seed=42)
    handle = bed.ask("alice", IsolationQuery())
    print(handle.response.answer.isolated)
"""

from repro.core import (
    AuthResponder,
    BandwidthQuery,
    ExposureHistoryQuery,
    FairnessQuery,
    GeoLocationQuery,
    IsolationQuery,
    PathLengthQuery,
    ProviderDomain,
    Query,
    RVaaSClient,
    RVaaSController,
    RVaaSFederation,
    ReachableDestinationsQuery,
    ReachingSourcesQuery,
    TransferFunctionQuery,
    WaypointAvoidanceQuery,
)
from repro.dataplane import (
    Network,
    Topology,
    abilene_topology,
    fat_tree_topology,
    isp_topology,
    linear_topology,
    ring_topology,
    single_switch_topology,
    tree_topology,
    waxman_topology,
)
from repro.testbed import Testbed, build_testbed

__version__ = "1.0.0"

__all__ = [
    "AuthResponder",
    "BandwidthQuery",
    "ExposureHistoryQuery",
    "FairnessQuery",
    "GeoLocationQuery",
    "IsolationQuery",
    "Network",
    "PathLengthQuery",
    "ProviderDomain",
    "Query",
    "RVaaSClient",
    "RVaaSController",
    "RVaaSFederation",
    "ReachableDestinationsQuery",
    "ReachingSourcesQuery",
    "Testbed",
    "Topology",
    "TransferFunctionQuery",
    "WaypointAvoidanceQuery",
    "abilene_topology",
    "build_testbed",
    "fat_tree_topology",
    "isp_topology",
    "linear_topology",
    "ring_topology",
    "single_switch_topology",
    "tree_topology",
    "waxman_topology",
    "__version__",
]
