"""Integer-backed, hashable network address types.

All addresses are immutable wrappers around a single ``int`` so that they
hash and compare quickly, pack directly into the Header Space Analysis
bit-vectors (:mod:`repro.hsa.layout`), and render in the conventional
human-readable notations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Union

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")
_IP_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit IEEE 802 MAC address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 1 << 48:
            raise ValueError(f"MAC address out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse colon- or dash-separated hex notation, e.g. ``aa:bb:cc:dd:ee:ff``."""
        if not _MAC_RE.match(text):
            raise ValueError(f"invalid MAC address: {text!r}")
        return cls(int(text.replace("-", ":").replace(":", ""), 16))

    @classmethod
    def from_host_index(cls, index: int) -> "MacAddress":
        """Deterministic per-host MAC used by the topology builders.

        Hosts get locally-administered unicast addresses ``02:00:00:xx:xx:xx``.
        """
        if not 0 <= index < 1 << 24:
            raise ValueError(f"host index out of range: {index}")
        return cls((0x02 << 40) | index)

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        return bool((self.value >> 40) & 0x01)

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in range(40, -8, -8)]
        return ":".join(f"{octet:02x}" for octet in octets)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


BROADCAST_MAC = MacAddress((1 << 48) - 1)


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A 32-bit IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 1 << 32:
            raise ValueError(f"IPv4 address out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        match = _IP_RE.match(text)
        if not match:
            raise ValueError(f"invalid IPv4 address: {text!r}")
        octets = [int(group) for group in match.groups()]
        if any(octet > 255 for octet in octets):
            raise ValueError(f"invalid IPv4 address: {text!r}")
        value = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        return cls(value)

    def in_network(self, network: "IPv4Network") -> bool:
        return network.contains(self)

    def __str__(self) -> str:
        return ".".join(
            str((self.value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
        )

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"


@dataclass(frozen=True, order=True)
class IPv4Network:
    """An IPv4 CIDR prefix, e.g. ``10.0.0.0/8``."""

    address: IPv4Address
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"invalid prefix length: {self.prefix_len}")
        if self.address.value & ~self.mask:
            raise ValueError(
                f"host bits set in network address {self.address}/{self.prefix_len}"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Network":
        try:
            addr_text, prefix_text = text.split("/")
        except ValueError:
            raise ValueError(f"invalid CIDR notation: {text!r}") from None
        return cls(IPv4Address.parse(addr_text), int(prefix_text))

    @property
    def mask(self) -> int:
        if self.prefix_len == 0:
            return 0
        return ((1 << self.prefix_len) - 1) << (32 - self.prefix_len)

    def contains(self, addr: IPv4Address) -> bool:
        return (addr.value & self.mask) == self.address.value

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate usable host addresses (network/broadcast excluded for /0../30)."""
        size = 1 << (32 - self.prefix_len)
        if size <= 2:
            yield from (IPv4Address(self.address.value + off) for off in range(size))
            return
        for offset in range(1, size - 1):
            yield IPv4Address(self.address.value + offset)

    def __str__(self) -> str:
        return f"{self.address}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"IPv4Network('{self}')"


def mac(value: Union[str, int, MacAddress]) -> MacAddress:
    """Coerce a string, int, or MacAddress into a :class:`MacAddress`."""
    if isinstance(value, MacAddress):
        return value
    if isinstance(value, int):
        return MacAddress(value)
    return MacAddress.parse(value)


def ip(value: Union[str, int, IPv4Address]) -> IPv4Address:
    """Coerce a string, int, or IPv4Address into an :class:`IPv4Address`."""
    if isinstance(value, IPv4Address):
        return value
    if isinstance(value, int):
        return IPv4Address(value)
    return IPv4Address.parse(value)
