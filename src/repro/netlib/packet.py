"""The packet model forwarded through the emulated data plane.

A :class:`Packet` carries exactly the nine header fields an OpenFlow
match can inspect (the classic 12-tuple minus the three per-switch
metadata fields, which live on the switch side), plus an opaque payload.
Packets are treated as immutable by convention: actions that rewrite
headers produce a copy via :meth:`Packet.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _dc_replace
from typing import Any, Mapping, Optional

from repro.netlib.addresses import IPv4Address, MacAddress, ip, mac
from repro.netlib.constants import (
    ETH_TYPE_IPV4,
    IP_PROTO_UDP,
    VLAN_NONE,
)

# Canonical ordering of header fields; shared with the HSA bit layout and
# the OpenFlow match so that every subsystem agrees on field names.
HEADER_FIELDS = (
    "eth_src",
    "eth_dst",
    "eth_type",
    "vlan_id",
    "ip_src",
    "ip_dst",
    "ip_proto",
    "tp_src",
    "tp_dst",
)


@dataclass(frozen=True)
class Packet:
    """A network packet with OpenFlow-matchable headers and a payload.

    ``payload`` is deliberately ``Any``: hosts exchange small Python
    objects (bytes for real traffic, protocol dataclasses for RVaaS
    messages).  The emulator never inspects payloads; only endpoints and
    the RVaaS controller do, which mirrors the paper's requirement that
    forwarding needs no per-packet cryptography or payload parsing.
    """

    eth_src: MacAddress
    eth_dst: MacAddress
    eth_type: int = ETH_TYPE_IPV4
    vlan_id: int = VLAN_NONE
    ip_src: Optional[IPv4Address] = None
    ip_dst: Optional[IPv4Address] = None
    ip_proto: int = IP_PROTO_UDP
    tp_src: int = 0
    tp_dst: int = 0
    payload: Any = b""
    trace: tuple = field(default_factory=tuple, compare=False)

    def header(self, name: str) -> int:
        """Return the integer value of a header field (0 when unset)."""
        if name not in HEADER_FIELDS:
            raise KeyError(f"unknown header field: {name}")
        value = getattr(self, name)
        if value is None:
            return 0
        if isinstance(value, (MacAddress, IPv4Address)):
            return value.value
        return int(value)

    def headers(self) -> Mapping[str, int]:
        """All header fields as a name->int mapping (for matching / HSA)."""
        return {name: self.header(name) for name in HEADER_FIELDS}

    def replace(self, **changes: Any) -> "Packet":
        """Functional update — used by header-rewrite actions."""
        coerced = dict(changes)
        for key in ("eth_src", "eth_dst"):
            if key in coerced and not isinstance(coerced[key], MacAddress):
                coerced[key] = mac(coerced[key])
        for key in ("ip_src", "ip_dst"):
            if key in coerced and coerced[key] is not None:
                if not isinstance(coerced[key], IPv4Address):
                    coerced[key] = ip(coerced[key])
        return _dc_replace(self, **coerced)

    def with_hop(self, switch_name: str, port: int) -> "Packet":
        """Append a (switch, ingress-port) hop to the packet's debug trace.

        The trace exists purely for test assertions and experiment
        bookkeeping *outside* the modelled system: no component of RVaaS
        or the provider ever reads it (that would be trajectory
        sampling, which the paper's threat model rules out).
        """
        return _dc_replace(self, trace=self.trace + ((switch_name, port),))

    @property
    def size_bytes(self) -> int:
        """Approximate wire size, used for bandwidth accounting."""
        base = 64
        if isinstance(self.payload, (bytes, bytearray, str)):
            return base + len(self.payload)
        return base + 256

    def describe(self) -> str:
        proto = {1: "icmp", 6: "tcp", 17: "udp"}.get(self.ip_proto, str(self.ip_proto))
        return (
            f"{self.ip_src}:{self.tp_src} -> {self.ip_dst}:{self.tp_dst}"
            f" [{proto}] eth {self.eth_src}->{self.eth_dst}"
        )


def udp_packet(
    *,
    eth_src: MacAddress,
    eth_dst: MacAddress,
    ip_src: IPv4Address,
    ip_dst: IPv4Address,
    sport: int,
    dport: int,
    payload: Any = b"",
    vlan_id: int = VLAN_NONE,
) -> Packet:
    """Convenience constructor for the UDP packets hosts exchange."""
    return Packet(
        eth_src=eth_src,
        eth_dst=eth_dst,
        eth_type=ETH_TYPE_IPV4,
        vlan_id=vlan_id,
        ip_src=ip_src,
        ip_dst=ip_dst,
        ip_proto=IP_PROTO_UDP,
        tp_src=sport,
        tp_dst=dport,
        payload=payload,
    )
