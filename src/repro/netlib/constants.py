"""Protocol numbers and RVaaS in-band signalling constants.

The RVaaS paper (Section IV-A3) has clients talk to the verification
service *in-band*: request packets carry a distinct "magic" header value
which ingress switches match and punt to the RVaaS controller via
Packet-In.  Authentication replies from endpoint hosts use a second magic
value so they can be intercepted and traced back to their origin port.
We realise both magics as well-known UDP destination ports.
"""

# EtherType values (IEEE 802.3).
ETH_TYPE_IPV4 = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_LLDP = 0x88CC
ETH_TYPE_VLAN = 0x8100

# IP protocol numbers (IANA).
IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

# UDP destination port carried by client->RVaaS query packets
# ("integrity request" in Fig. 1 of the paper).
RVAAS_MAGIC_PORT = 17999

# UDP destination port carried by host auth replies ("Auth reply" in
# Fig. 2) and by the auth requests RVaaS injects via Packet-Out.
RVAAS_AUTH_PORT = 17998

# VLAN id meaning "no 802.1Q tag present".
VLAN_NONE = 0
