"""Packet and addressing primitives shared by every other subsystem.

This package is the lowest layer of the reproduction: it defines the
hashable, integer-backed address types (:class:`MacAddress`,
:class:`IPv4Address`, :class:`IPv4Network`), the mutable-by-copy
:class:`Packet` model carrying the nine OpenFlow-matchable header fields,
and the protocol constants (EtherTypes, IP protocol numbers, and the RVaaS
"magic" values used for in-band client interaction).
"""

from repro.netlib.addresses import (
    IPv4Address,
    IPv4Network,
    MacAddress,
    ip,
    mac,
)
from repro.netlib.constants import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    ETH_TYPE_LLDP,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    RVAAS_AUTH_PORT,
    RVAAS_MAGIC_PORT,
)
from repro.netlib.packet import Packet

__all__ = [
    "ETH_TYPE_ARP",
    "ETH_TYPE_IPV4",
    "ETH_TYPE_LLDP",
    "IP_PROTO_ICMP",
    "IP_PROTO_TCP",
    "IP_PROTO_UDP",
    "IPv4Address",
    "IPv4Network",
    "MacAddress",
    "Packet",
    "RVAAS_AUTH_PORT",
    "RVAAS_MAGIC_PORT",
    "ip",
    "mac",
]
