#!/usr/bin/env python
"""Advanced features: attack traceback and replicated verification.

Part 1 — Traceback (paper §IV-C): an attacker adds a covert access
point, uses it, and covers its tracks.  The current configuration is
clean again — but RVaaS's snapshot history reconstructs the exposure
window, the ingress port the attack came from, and the exact rules that
enabled it.

Part 2 — Replication (paper §I-A): "additional (independent) servers
can increase the security further."  Three independent RVaaS servers
answer the same query; one of them has itself been compromised and
lies.  The client's cross-check out-votes and names the liar.

Run:  python examples/forensics_and_replication.py
"""

import random

from repro import IsolationQuery, build_testbed, isp_topology
from repro.attacks import JoinAttack
from repro.core.replication import CompromisedReplica, ReplicatedRVaaS
from repro.core.traceback import AttackTraceback
from repro.crypto.keys import generate_keypair


def main() -> None:
    print("=== Part 1: attack traceback from history ===\n")
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=77
    )

    attack = JoinAttack("h_ber2", "h_fra1")
    bed.provider.compromise(attack)
    bed.run(0.6)
    bed.network.host("h_ber2").send_udp(
        bed.network.host("h_fra1").ip, 22, b"intrusion"
    )
    bed.run(0.2)
    bed.provider.retreat(attack)  # attacker covers tracks
    bed.run(0.6)

    print("current isolation check:",
          "clean" if bed.service.answer_locally("alice", IsolationQuery()).isolated
          else "violated")
    traceback = AttackTraceback(bed.service.history, bed.registrations)
    report = traceback.trace("alice", "h_fra1")
    print(f"history entries analysed: {report.entries_analyzed}")
    for window in report.windows:
        closed = f"{window.closed_at:.2f}s" if window.closed_at else "STILL OPEN"
        print(f"  exposure window: {window.opened_at:.2f}s -> {closed}")
        for endpoint in window.ingress_ports:
            print(f"    attack ingress: {endpoint.labelled()}")
        print(f"    enabling rules recovered: {len(window.enabling_rules)}")

    print("\n=== Part 2: replicated independent verifiers ===\n")
    fleet = ReplicatedRVaaS.deploy(bed.network, bed.registrations, count=1, seed=8)
    liar = CompromisedReplica(
        generate_keypair("liar", rng=random.Random(666)),
        bed.registrations,
        name="rvaas-liar",
        record_history=False,
    )
    liar.start(bed.network)
    bed.run(1.0)
    replicas = ReplicatedRVaaS([bed.service] + fleet.replicas + [liar])
    print(f"replicas deployed: {[r.name for r in replicas.replicas]}")

    bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
    bed.run(0.5)
    result = replicas.cross_check("alice", IsolationQuery())
    print(f"majority verdict : isolated={result.answer.isolated}")
    print(f"agreeing replicas: {', '.join(result.agreeing)}")
    print(f"DISSENTING (compromised verifier?): {', '.join(result.dissenting)}")


if __name__ == "__main__":
    main()
