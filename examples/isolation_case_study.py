#!/usr/bin/env python
"""Case study 1 (paper §IV-B1): detecting a join attack on tenant isolation.

Scenario: the provider agreed to isolate alice's and bob's sub-networks.
A cyber attacker compromises the provider's SDN controller and covertly
installs rules giving a bob-side host access to one of alice's machines —
a "join attack": a secret access point into alice's network.

The compromised controller keeps reporting the benign configuration, so
traceroute-style checks see nothing.  Alice's periodic RVaaS isolation
query exposes the covert access point, including the exact violating
endpoint, backed by in-band authentication evidence.

Run:  python examples/isolation_case_study.py
"""

from repro import IsolationQuery, build_testbed, isp_topology
from repro.attacks import JoinAttack
from repro.baselines import TracerouteVerifier


def show_isolation(tag, answer) -> None:
    verdict = "ISOLATED" if answer.isolated else "!!! ISOLATION VIOLATED !!!"
    print(f"[{tag}] {verdict}")
    if answer.violating_endpoints:
        for endpoint in answer.violating_endpoints:
            print(f"        covert access point: {endpoint.labelled()}")
    if answer.auth is not None:
        print(
            f"        auth evidence: {answer.auth.replies_received}"
            f"/{answer.auth.requests_issued} challenged endpoints replied"
        )


def main() -> None:
    print("=== Case study: isolation checks vs a join attack ===\n")
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=7
    )
    traceroute = TracerouteVerifier(bed.provider)

    print("Phase 1 — benign provider")
    show_isolation("rvaas", bed.ask("alice", IsolationQuery()).response.answer)
    print(f"[traceroute] suspicious: {traceroute.detects_attack('h_ber1', 'h_fra1')}\n")

    print("Phase 2 — control plane compromised: JoinAttack(h_ber2 -> h_fra1)")
    report = bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
    bed.run(0.5)
    print(f"  attacker action: {report.details}")

    # The covert route really works: bob's host reaches alice's machine.
    bed.network.host("h_ber2").send_udp(
        bed.network.host("h_fra1").ip, 8080, b"knock knock"
    )
    bed.run(0.5)
    delivered = len(bed.network.host("h_fra1").received)
    print(f"  covert packets delivered to alice's host: {delivered}\n")

    print("Phase 3 — verification")
    print(
        "[traceroute] suspicious:",
        traceroute.detects_attack("h_ber1", "h_fra1"),
        " (the provider lies — nothing to see)",
    )
    show_isolation("rvaas", bed.ask("alice", IsolationQuery()).response.answer)

    print("\nPhase 4 — attacker covers tracks (removes the rules)")
    attack = bed.provider.active_attacks[0]
    bed.provider.retreat(attack)
    bed.run(0.5)
    show_isolation("rvaas", bed.ask("alice", IsolationQuery()).response.answer)
    baseline = bed.service.snapshot().rule_signatures()
    witnesses = bed.service.history.transient_signatures()
    print(
        f"        …but RVaaS history retains {len(witnesses)} transient "
        "rule signature(s) as forensic witnesses of the attack."
    )


if __name__ == "__main__":
    main()
