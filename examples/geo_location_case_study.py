#!/usr/bin/env python
"""Case study 2 (paper §IV-B2): geo-location checks.

Scenario: alice is subject to a data-protection policy requiring her
traffic to stay inside EU jurisdictions.  The compromised control plane
reroutes one of her flows through an offshore transit switch (where,
say, a wiretap is planned).  Delivery still works; latency barely moves;
the provider's reports are unchanged.  Alice's RVaaS geo-location query
reveals the new jurisdiction on her paths, and the waypoint-avoidance
query turns it into a yes/no compliance answer.

Run:  python examples/geo_location_case_study.py
"""

from repro import (
    GeoLocationQuery,
    PathLengthQuery,
    WaypointAvoidanceQuery,
    build_testbed,
    isp_topology,
)
from repro.attacks import GeoViolationAttack

FORBIDDEN = ("offshore",)


def report(bed) -> None:
    geo = bed.ask("alice", GeoLocationQuery()).response.answer
    avoid = bed.ask(
        "alice", WaypointAvoidanceQuery(forbidden_regions=FORBIDDEN)
    ).response.answer
    stretch = bed.ask("alice", PathLengthQuery()).response.answer
    print(f"  regions traversed : {', '.join(geo.regions)}")
    print(
        f"  policy compliant  : {avoid.avoided}"
        + (f"  (violations: {', '.join(avoid.violating_regions)})" if not avoid.avoided else "")
    )
    print(f"  max path stretch  : {stretch.max_stretch:.2f}")


def main() -> None:
    print("=== Case study: geo-location checks ===\n")
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=11
    )

    print("Phase 1 — benign routing (alice's hosts: Berlin, Frankfurt, Paris)")
    report(bed)

    print("\nPhase 2 — compromised controller reroutes via the offshore region")
    attack = GeoViolationAttack("h_ber1", "h_fra1", "offshore")
    result = bed.provider.compromise(attack)
    bed.run(0.5)
    print(f"  attacker action: {result.details}")

    # Prove the data plane really goes offshore now.
    bed.network.host("h_ber1").send_udp(
        bed.network.host("h_fra1").ip, 443, b"sensitive"
    )
    bed.run(0.5)
    trace = [s for s, _ in bed.network.host("h_fra1").received[-1].trace]
    print(f"  actual packet trajectory: {' -> '.join(trace)}\n")

    print("Phase 3 — alice's compliance check now fails")
    report(bed)

    print("\nNote: end-to-end delivery kept working the whole time — an")
    print("acknowledgement-based check would never have noticed (paper §I).")


if __name__ == "__main__":
    main()
