#!/usr/bin/env python
"""Proactive violation alerts: RVaaS as a watchdog, not just an oracle.

The base protocol is query/response: the client asks, RVaaS answers.
This extension (in the spirit of the real-time verification tools the
paper cites) inverts the flow: the client subscribes to its isolation
invariant once; RVaaS re-verifies on every configuration change and
pushes a signed, encrypted ViolationNotice to the client's access point
the moment the invariant breaks — milliseconds after the hostile
FlowMod, instead of whenever the client would next have polled.

Run:  python examples/proactive_alerts.py
"""

from repro import build_testbed, isp_topology
from repro.attacks import JoinAttack


def main() -> None:
    print("=== Proactive isolation alerts ===\n")
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=55
    )

    # Alice subscribes once; her client library verifies every pushed
    # notice against the attested service key before surfacing it.
    bed.service.watch_isolation("alice")
    bed.clients["alice"].on_notice(
        lambda notice: print(
            f"  [ALERT at t={notice.raised_at:.3f}s] {notice.invariant}: "
            f"{notice.details}"
        )
    )
    print("alice subscribed to isolation watch; going quiet...\n")
    bed.run(2.0)
    print("(2 s of benign operation: no alerts, as expected)\n")

    print("attacker compromises the provider controller:")
    t0 = bed.network.sim.now
    bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
    bed.run(0.5)
    notice = bed.clients["alice"].notices[0]
    print(
        f"\ntime from hostile FlowMod to verified client alert: "
        f"{(notice.raised_at - t0) * 1000:.1f} ms (virtual)"
    )
    print(
        "compare: a client polling every 30 s would have averaged "
        "15,000 ms (see experiment E15)."
    )

    print("\nattacker removes the rules (covers tracks):")
    bed.provider.retreat(bed.provider.active_attacks[0])
    bed.run(0.5)
    print("  configuration clean again — but the alert already fired and")
    print("  the history retains the forensic evidence (see E13).")


if __name__ == "__main__":
    main()
