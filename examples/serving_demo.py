#!/usr/bin/env python
"""The multi-tenant serving tier: coalescing, batching, honest overload.

A verification provider is a *service*: thousands of tenants poll the
same invariants against the same network.  This demo stands up RVaaS on
a fat-tree(4) with two tenants, replays a 10,000-client monitoring
workload where half the requests repeat an earlier (client, query)
pair, and compares the serial frontend (one synchronous engine walk per
request) with the serving tier (async admission -> coalesce -> sharded
batch -> per-request reply).  It closes with the admission-control
story: a flood from one tenant is shed with explicit, signed
OVERLOADED/RATE_LIMITED replies instead of silent drops.

Run:  python examples/serving_demo.py
"""

import os

os.environ.setdefault("RVAAS_HSA_BACKEND", "atom")

from dataclasses import replace

from repro import IsolationQuery, build_testbed, fat_tree_topology
from repro.serving import (
    QueryScheduler,
    ServingConfig,
    VirtualClock,
    WorkloadSpec,
    drive_scheduler,
    drive_serial,
    generate_arrivals,
    percentile_table,
    scope_wildcard_seeds,
)

CLIENTS = ["alice", "bob"]
SPEC = WorkloadSpec(requests=400, population=10_000, duplicate_fraction=0.5)


def banner(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def fresh_bed():
    bed = build_testbed(
        fat_tree_topology(4, clients=CLIENTS), isolate_clients=True
    )
    bed.service.engine.seed_atoms(scope_wildcard_seeds(SPEC))
    bed.service.answer_locally(CLIENTS[0], IsolationQuery())  # warm compile
    return bed


def main() -> None:
    banner("Workload: 10,000 simulated clients, 50% duplicate queries")
    print(
        f"fat-tree(4), two tenants, {SPEC.requests} requests per stream,\n"
        f"zipf({SPEC.zipf_s}) popularity over the catalog, Poisson arrivals "
        f"at {SPEC.arrival_rate:,.0f}/s."
    )

    serial_bed = fresh_bed()
    arrivals = generate_arrivals(serial_bed.registrations, SPEC)
    steady_arrivals = generate_arrivals(
        serial_bed.registrations, replace(SPEC, seed=1)
    )
    serial_cold = drive_serial(
        serial_bed.service.answer_locally, arrivals, label="serial/cold"
    )
    serial_steady = drive_serial(
        serial_bed.service.answer_locally, steady_arrivals, label="serial/steady"
    )

    service = fresh_bed().service
    service.verifier.enable_row_cache()
    clock = VirtualClock()
    scheduler = QueryScheduler(
        answer_fn=service._scheduler_answer,
        snapshot_fn=service.snapshot,
        freshness_fn=service._freshness,
        clock=clock,
        config=ServingConfig(),
        ready_fn=service.verifier.ready,
        warm_fn=service.verifier.warm,
    )
    serving_cold = drive_scheduler(
        scheduler, clock, arrivals, label="serving/cold"
    )
    serving_steady = drive_scheduler(
        scheduler, clock, steady_arrivals, label="serving/steady"
    )

    banner("Latency percentiles (ms) and throughput")
    header = ["mode", "served", "refused", "req/s", "p50", "p99", "p999"]
    rows = [header] + percentile_table(
        [serial_cold, serial_steady, serving_cold, serving_steady]
    )
    widths = [max(len(str(r[i])) for r in rows) for i in range(len(header))]
    for row in rows:
        print("  ".join(str(c).rjust(widths[i]) for i, c in enumerate(row)))
    print(
        f"\nspeedup vs serial: cold "
        f"{serving_cold.throughput / serial_cold.throughput:.2f}x, steady "
        f"{serving_steady.throughput / serial_steady.throughput:.2f}x"
    )
    counters = scheduler.metrics.snapshot_counters()
    print(
        f"engine calls={counters['engine_calls']} "
        f"(for {counters['served']} served requests), "
        f"coalesced={counters['coalesced']}, "
        f"answer-cache hits={counters['answer_cache_hits']}"
    )

    banner("Admission control: a flood is refused honestly")
    flood = QueryScheduler(
        answer_fn=service._scheduler_answer,
        snapshot_fn=service.snapshot,
        freshness_fn=service._freshness,
        clock=clock,
        config=ServingConfig(rate_per_client=100.0, rate_burst=5.0),
    )
    refused = []
    for n in range(50):
        flood.submit(
            "alice",
            IsolationQuery(),
            nonce=n,
            on_done=lambda p, o: refused.append(o) if o.answer is None else None,
        )
    flood.flush()
    print(
        f"50 back-to-back requests from one tenant: "
        f"{flood.metrics.served} served, "
        f"{len(refused)} refused ({refused[0].status}) — each refusal is "
        f"signed and carries the current freshness report, so the tenant "
        f"can tell honest overload from an adversary eating its packets."
    )


if __name__ == "__main__":
    main()
