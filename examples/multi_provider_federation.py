#!/usr/bin/env python
"""Multi-provider extension (paper §IV-C a): federated recursive queries.

A client with sites in two provider networks asks its home RVaaS which
endpoints its traffic can reach.  The home server analyses its own
domain; where the traffic exits over an inter-provider link, the
surviving (endpoint-level) header space is handed to the peer provider's
RVaaS server, which continues on *its* snapshot.  Internal topology
never crosses the trust boundary — only boundary-port header spaces and
endpoint answers do.

Run:  python examples/multi_provider_federation.py
"""

import random

from repro.controlplane.provider import ProviderController
from repro.core.monitor import ConfigurationMonitor, MonitorMode
from repro.core.multiprovider import ProviderDomain, RVaaSFederation
from repro.core.protocol import ClientRegistration, HostRecord
from repro.core.service import RVaaSController
from repro.crypto.keys import generate_keypair
from repro.dataplane.network import Network
from repro.dataplane.topologies import linear_topology


def main() -> None:
    print("=== Multi-provider federation ===\n")

    n_domains, per_domain = 3, 3
    topo = linear_topology(
        n_domains * per_domain, hosts_per_switch=1, clients=["acme"]
    )
    net = Network(topo, seed=5)
    provider = ProviderController()
    provider.attach(net)
    provider.deploy()

    rng = random.Random(99)
    client_key = generate_keypair("client:acme", rng=rng)
    host_keys = {
        h.name: generate_keypair(f"host:{h.name}", rng=rng)
        for h in topo.hosts.values()
    }
    registration = ClientRegistration(
        name="acme",
        public_key=client_key.public,
        hosts=tuple(
            HostRecord(
                name=h.name,
                ip=h.ip.value,
                switch=h.switch,
                port=h.port,
                public_key=host_keys[h.name].public,
            )
            for h in sorted(topo.hosts.values(), key=lambda h: h.name)
        ),
    )

    names = sorted(topo.switches, key=lambda s: int(s[1:]))
    domains = []
    for d in range(n_domains):
        owned = frozenset(names[d * per_domain : (d + 1) * per_domain])
        service = RVaaSController(
            generate_keypair(f"rvaas-{d}", rng=rng),
            {"acme": registration},
            name=f"rvaas-{d}",
            monitor_mode=MonitorMode.PASSIVE,
        )
        service.attach(net, switches=sorted(owned))
        service.monitor = ConfigurationMonitor(
            service, topo, mode=MonitorMode.PASSIVE
        )
        service.on_monitor_update = (
            lambda sw, msg, svc=service: svc.monitor.handle_monitor_update(sw, msg)
        )
        service.monitor.start()
        domains.append(
            ProviderDomain(name=f"provider-{d}", switches=owned, service=service)
        )
        print(f"provider-{d}: switches {sorted(owned)}")
    net.run(1.0)

    federation = RVaaSFederation(domains, topo)
    print("\nFederated reachable-destinations query for client 'acme':")
    answer = federation.reachable_destinations(registration)
    for endpoint in answer.endpoints:
        domain = federation.domain_of(endpoint.switch).name
        print(f"  - {endpoint.labelled():<28} (in {domain})")
    print(f"\ndomains involved    : {', '.join(answer.domains_involved)}")
    print(f"federated messages  : {answer.federated_messages}")
    print(f"max recursion depth : {answer.max_chain_depth}")
    print(f"answer mode         : {answer.mode}")
    print(f"truncated           : {answer.truncated} "
          f"(dropped {answer.dropped_items} items)")

    regions = federation.regions_traversed(registration)
    print(f"regions traversed   : {', '.join(regions.regions)}")


if __name__ == "__main__":
    main()
