#!/usr/bin/env python
"""Grand tour: one compromised control plane, five attacks, full detection.

Walks the whole threat model of the paper: a provider whose management
system has been hacked runs every attack in the adversary library, one
at a time, against a multi-tenant network.  For each attack the script
shows (a) the real data-plane effect, (b) that the traceroute and
trajectory-sampling baselines stay blind, and (c) which RVaaS query
detects it and what the evidence looks like.

Run:  python examples/compromised_controller_tour.py
"""

from repro import (
    IsolationQuery,
    PathLengthQuery,
    ReachableDestinationsQuery,
    ReachingSourcesQuery,
    WaypointAvoidanceQuery,
    build_testbed,
    isp_topology,
)
from repro.attacks import (
    BlackholeAttack,
    DiversionAttack,
    ExfiltrationAttack,
    GeoViolationAttack,
    JoinAttack,
)
from repro.baselines import TracerouteVerifier, TrajectorySamplingVerifier


def banner(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main() -> None:
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=23
    )
    traceroute = TracerouteVerifier(bed.provider)
    trajectory = TrajectorySamplingVerifier(bed.provider, bed.network)

    banner("Baseline: benign provider — everything verifies clean")
    assert bed.ask("alice", IsolationQuery()).response.answer.isolated
    print("alice isolation: OK")
    print("traceroute suspicious:", traceroute.detects_attack("h_ber1", "h_fra1"))

    scenarios = [
        (
            JoinAttack("h_ber2", "h_fra1"),
            "IsolationQuery",
            lambda: not bed.ask("alice", IsolationQuery()).response.answer.isolated,
        ),
        (
            ExfiltrationAttack("h_fra1", "h_off1"),
            "ReachableDestinationsQuery",
            lambda: "h_off1"
            in {
                e.host
                for e in bed.ask(
                    "alice", ReachableDestinationsQuery()
                ).response.answer.endpoints
            },
        ),
        (
            DiversionAttack("h_ber1", "h_fra1", "off"),
            "PathLengthQuery",
            lambda: not bed.ask("alice", PathLengthQuery()).response.answer.optimal,
        ),
        (
            GeoViolationAttack("h_ber1", "h_par1", "offshore"),
            "WaypointAvoidanceQuery(offshore)",
            lambda: not bed.ask(
                "alice", WaypointAvoidanceQuery(forbidden_regions=("offshore",))
            ).response.answer.avoided,
        ),
        (
            BlackholeAttack("h_fra1", "h_ber1"),
            "ReachingSourcesQuery(h_ber1)",
            lambda: "h_fra1"
            not in {
                e.host
                for e in bed.ask(
                    "alice", ReachingSourcesQuery(destination_host="h_ber1")
                ).response.answer.endpoints
            },
        ),
    ]

    detected = 0
    for attack, query_name, rvaas_detects in scenarios:
        banner(f"Attack: {attack.name}")
        report = bed.provider.compromise(attack)
        bed.run(0.5)
        print("adversary:", report.details)
        print(
            "traceroute detects   :",
            traceroute.detects_attack("h_ber1", "h_fra1"),
        )
        print(
            "trajectory detects   :",
            trajectory.detects_attack("h_ber1", "h_fra1"),
        )
        hit = rvaas_detects()
        detected += hit
        print(f"RVaaS {query_name:<34}: {'DETECTED' if hit else 'missed'}")
        bed.provider.retreat(attack)
        bed.run(0.5)

    banner("Score")
    print(f"RVaaS detected {detected}/{len(scenarios)} attacks.")
    print("Baselines detected 0 — the provider's self-reports never change.")
    print(f"RVaaS raised {len(bed.service.alarms)} self-protection alarms.")
    print(
        "History recorded "
        f"{len(bed.service.history.transient_signatures())} transient rule "
        "signatures (forensics for the cleaned-up attacks)."
    )


if __name__ == "__main__":
    main()
