#!/usr/bin/env python
"""Quickstart: stand up an SDN with RVaaS and run your first queries.

Builds a small multi-region ISP network with two tenants (alice, bob),
deploys the provider's isolation routing policy, starts the attested
RVaaS controller, and issues three in-band queries from alice's client
library — the full Fig. 1 / Fig. 2 protocol, end to end.

Run:  python examples/quickstart.py
"""

from repro import (
    GeoLocationQuery,
    IsolationQuery,
    ReachableDestinationsQuery,
    build_testbed,
    isp_topology,
)


def main() -> None:
    print("=== RVaaS quickstart ===\n")

    # 1. Build the deployment: emulated network + provider controller +
    #    attested RVaaS service + client libraries + auth responders.
    topology = isp_topology(clients=["alice", "bob"])
    print(f"Topology: {topology.describe()}")
    bed = build_testbed(topology, isolate_clients=True, seed=42)
    print(f"Provider installed {bed.network.total_rules()} flow rules")
    print(f"RVaaS attested: measurement {bed.attested.measurement.digest[:16]}…\n")

    # 2. Which endpoints can alice's traffic reach?  (with in-band
    #    authentication of every endpoint — Fig. 1 and Fig. 2)
    handle = bed.ask("alice", ReachableDestinationsQuery())
    answer = handle.response.answer
    print("Reachable destinations for alice:")
    for endpoint in answer.endpoints:
        print(f"  - {endpoint.labelled()}")
    auth = answer.auth
    print(
        f"  auth round: {auth.replies_received}/{auth.requests_issued} "
        f"endpoints proved liveness (complete={auth.complete})"
    )
    print(f"  virtual latency: {handle.latency * 1000:.1f} ms\n")

    # 3. Is alice's sub-network isolated from other tenants?
    isolation = bed.ask("alice", IsolationQuery()).response.answer
    print(f"Isolation check: {'OK' if isolation.isolated else 'VIOLATED'}")
    print(f"  declared access points: {len(isolation.declared_endpoints)}\n")

    # 4. Which jurisdictions can alice's traffic cross?
    geo = bed.ask("alice", GeoLocationQuery()).response.answer
    print(f"Regions traversed by alice's traffic: {', '.join(geo.regions)}")

    print("\nAll answers are signed by the attested RVaaS service and were")
    print("verified by the client library before being displayed.")


if __name__ == "__main__":
    main()
