"""E8 — Confidentiality: provider autonomy and query privacy (§I-A, §III).

Two directions:

* Toward the client: answers are endpoint-level only — "queries can be
  limited to learn only about endpoints, but nothing about the actual
  routing paths inside the network."  We count which topology elements a
  curious client can learn from the full query battery.
* Toward the provider: queries travel encrypted; we verify the sealed
  request leaks no recognisable plaintext.
"""

import pickle
import random

import pytest

from repro.core.protocol import QueryRequest, seal_request
from repro.core.queries import (
    GeoLocationQuery,
    IsolationQuery,
    PathLengthQuery,
    ReachableDestinationsQuery,
    ReachingSourcesQuery,
    TransferFunctionQuery,
)
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


def endpoints_of(answer):
    for attr in ("endpoints", "declared_endpoints", "violating_endpoints"):
        for endpoint in getattr(answer, attr, ()) or ():
            yield endpoint
    for entry in getattr(answer, "entries", ()) or ():
        yield entry.ingress
        yield entry.egress
    for rep_ in getattr(answer, "reports", ()) or ():
        yield rep_.destination


def test_topology_leakage_is_endpoint_bounded(benchmark, report):
    rep = report("E8", "Topology leakage from the full query battery")
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=37
    )
    battery = [
        ReachableDestinationsQuery(authenticate=False),
        ReachingSourcesQuery(),
        IsolationQuery(),
        GeoLocationQuery(),
        PathLengthQuery(),
        TransferFunctionQuery(),
    ]
    learned_switches = set()
    for query in battery:
        answer = bed.service.answer_locally("alice", query)
        for endpoint in endpoints_of(answer):
            if endpoint.port >= 0:  # skip the synthetic control-plane marker
                learned_switches.add(endpoint.switch)

    alice_switches = {h.switch for h in bed.registrations["alice"].hosts}
    all_switches = set(bed.topology.switches)
    foreign_leaked = learned_switches - alice_switches
    rows = [
        ("switches in topology", len(all_switches)),
        ("switches hosting alice", len(alice_switches)),
        ("switches learned by alice", len(learned_switches)),
        ("foreign switches leaked", len(foreign_leaked)),
        ("internal links/paths leaked", 0),
    ]
    rep.table(["quantity", "count"], rows)
    rep.line()
    rep.line("shape check: alice learns only switches where her own declared")
    rep.line("endpoints sit; the rest of the topology (including ams/off and")
    rep.line("every internal link) stays hidden. Geo answers expose region")
    rep.line("*names*, never elements.")
    rep.finish()

    assert learned_switches == alice_switches
    assert not foreign_leaked

    benchmark(
        lambda: bed.service.answer_locally("alice", TransferFunctionQuery())
    )


def test_queries_opaque_to_provider(benchmark, report):
    rep = report("E8b", "Query confidentiality toward the provider")
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=38
    )
    request = QueryRequest(
        client="alice",
        query=IsolationQuery(),
        nonce=777,
        sent_at=0.0,
    )
    plaintext_markers = (b"IsolationQuery", b"alice", b"nonce")
    sealed = seal_request(
        request,
        bed.attested.service_keypair.public,
        bed.client_keys["alice"].private,
        random.Random(0),
    )
    reference = pickle.dumps(request)
    leaks = [marker for marker in plaintext_markers if marker in sealed.ciphertext.body]
    rows = [
        ("plaintext size (bytes)", len(reference)),
        ("ciphertext size (bytes)", len(sealed.ciphertext.body)),
        ("plaintext markers present in plaintext", sum(m in reference for m in plaintext_markers)),
        ("plaintext markers present in ciphertext", len(leaks)),
    ]
    rep.table(["quantity", "value"], rows)
    rep.line()
    rep.line("the provider relays the sealed query (it sees every Packet-In)")
    rep.line("but learns nothing about its content — §III: 'the provider")
    rep.line("should not learn about their queries'.")
    rep.finish()
    assert not leaks

    benchmark(
        lambda: seal_request(
            request,
            bed.attested.service_keypair.public,
            bed.client_keys["alice"].private,
            random.Random(0),
        )
    )
