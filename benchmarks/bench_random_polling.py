"""E6 — Randomly-timed active polls vs short-lived reconfiguration attacks.

The paper (§IV-A1): proactive polls "need to happen at random times,
which are hard to guess for the adversary.  This is important as
otherwise, the adversary may simply set the correct rules for the short
time periods in which the box checks the configuration."

Two parts:

1. A Monte-Carlo model (same primitives as the monitor: periodic vs
   exponential poll schedules; flapping attack with duty cycle γ and a
   phase chosen adversarially against predictable schedules) produces
   the detection-probability curves, compared against the analytic
   prediction 1 - exp(-λ·γ·T) for Poisson polling.
2. Full-stack validation: three complete testbed runs confirming the
   model's endpoint behaviours (periodic+aligned = evaded; random =
   detected; history retains the witness).
"""

import math
import random

import pytest

from repro.attacks import BlackholeAttack, ShortLivedReconfigurationAttack
from repro.core.monitor import MonitorMode
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


def poll_times(schedule: str, mean_interval: float, horizon: float, rng) -> list:
    """Generate poll instants for one trial."""
    times = []
    t = 0.0
    while t < horizon:
        if schedule == "periodic":
            t += mean_interval
        else:  # exponential / Poisson
            t += rng.expovariate(1.0 / mean_interval)
        if t < horizon:
            times.append(t)
    return times


def attack_windows(
    duty_cycle: float,
    period: float,
    horizon: float,
    schedule: str,
    mean_interval: float,
) -> list:
    """Active windows of the flapping attack.

    Against a *periodic* schedule the adversary aligns its active phase
    to start right after each predicted poll (the paper's scenario); a
    memoryless schedule gives it nothing to align to, so it runs a fixed
    cycle.
    """
    active = period * duty_cycle
    windows = []
    if schedule == "periodic":
        # Attack inside each inter-poll gap, starting just after a poll.
        t = 0.001
        while t < horizon:
            windows.append((t, min(t + active, horizon)))
            t += mean_interval
    else:
        t = 0.0
        while t < horizon:
            windows.append((t, min(t + active, horizon)))
            t += period
    return windows


def detection_probability(
    schedule: str,
    duty_cycle: float,
    *,
    trials: int = 400,
    mean_interval: float = 1.0,
    horizon: float = 20.0,
    seed: int = 0,
) -> float:
    rng = random.Random(seed)
    period = mean_interval  # attack cycles at the poll timescale
    detected = 0
    for _ in range(trials):
        polls = poll_times(schedule, mean_interval, horizon, rng)
        windows = attack_windows(
            duty_cycle, period, horizon, schedule, mean_interval
        )
        if any(
            any(on <= poll < off for on, off in windows) for poll in polls
        ):
            detected += 1
    return detected / trials


def test_polling_schedule_vs_flapping_attack(benchmark, report):
    rep = report("E6", "Detection probability: poll schedule vs duty cycle")
    duty_cycles = (0.1, 0.25, 0.5, 0.75)
    horizon, mean_interval = 20.0, 1.0
    rows = []
    for gamma in duty_cycles:
        periodic = detection_probability("periodic", gamma, seed=1)
        poisson = detection_probability("exponential", gamma, seed=2)
        analytic = 1.0 - math.exp(-(1.0 / mean_interval) * gamma * horizon)
        rows.append(
            (
                f"{gamma:.2f}",
                f"{periodic:.3f}",
                f"{poisson:.3f}",
                f"{analytic:.3f}",
            )
        )
    rep.table(
        ["duty_cycle", "periodic(aligned adversary)", "random(poisson)", "analytic 1-e^(-λγT)"],
        rows,
    )
    rep.line()
    rep.line("shape check: an adversary synchronised to a periodic schedule")
    rep.line("evades detection at any duty cycle < 1; memoryless random")
    rep.line("polling detects with probability -> 1, matching the analytic")
    rep.line("Poisson-thinning prediction. This is the paper's argument for")
    rep.line("random-time snapshots.")
    rep.finish()

    for row in rows:
        gamma, periodic, poisson, analytic = (float(x) for x in row)
        assert periodic <= 0.05, "aligned adversary must evade periodic polls"
        assert poisson > 0.8, "random polling must detect"
        assert abs(poisson - analytic) < 0.1, "simulation must match model"

    benchmark(lambda: detection_probability("exponential", 0.25, trials=100))


def full_stack_trial(*, randomize: bool, phase: float, seed: int):
    """One complete testbed run: does any snapshot catch the attack rule?"""
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]),
        isolate_clients=True,
        seed=seed,
        monitor_mode=MonitorMode.ACTIVE,
        mean_poll_interval=1.0,
        randomize_polls=randomize,
    )
    baseline = bed.service.snapshot().rule_signatures()
    flapper = ShortLivedReconfigurationAttack(
        BlackholeAttack("h_ber1", "h_fra1"),
        period=1.0,
        active_duration=0.25,
        phase=phase,
    )
    bed.provider.compromise(flapper)
    bed.run(20.0)
    flapper.stop()
    bed.run(1.0)
    witnesses = bed.service.history.unexpected_signatures(baseline)
    return bool(witnesses)


def test_full_stack_validation(benchmark, report):
    rep = report("E6b", "Full-stack validation of the polling argument")
    # Periodic polls: first poll at t=1.0 (+ build settle offset is the
    # same every cycle); attack phase 0.05 puts the 0.25 s active window
    # inside each inter-poll gap.
    periodic_evaded = not full_stack_trial(randomize=False, phase=0.05, seed=31)
    random_detected = full_stack_trial(randomize=True, phase=0.05, seed=32)
    rep.table(
        ["configuration", "attack witnessed in history"],
        [
            ("periodic polls, aligned attacker", not periodic_evaded),
            ("random (exponential) polls", random_detected),
        ],
    )
    rep.line()
    rep.line("note: passive flow-monitor subscriptions would catch every")
    rep.line("transition too — this experiment isolates the *active poll*")
    rep.line("channel the paper reasons about (monitor_mode=ACTIVE).")
    rep.finish()
    assert periodic_evaded, "aligned attacker should slip between periodic polls"
    assert random_detected, "random polls should witness the attack"

    benchmark(lambda: full_stack_trial(randomize=True, phase=0.05, seed=33))
