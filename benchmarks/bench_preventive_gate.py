"""E23 — Preventive verify-then-install gate: stop attacks before install.

Detection mode (E5-E18) lets a compromised provider's FlowMods reach the
switches and catches the damage at the next poll; prevention mode
interposes a :class:`~repro.core.gate.PreventiveGate` on the
provider->switch path and verifies every FlowMod against the client
contracts *before* it touches the data plane.  Three measurements:

1. **Prevention vs detection.**  Each of the five armed attacks
   (blackhole, diversion, exfiltration, geo violation, short-lived
   reconfiguration) runs once against a gated and once against a
   gateless deployment.  Scored on *ground truth* (rules read straight
   off the switches, a fresh verifier per sample): the gated run's
   client-contract answers must be byte-identical to the pre-attack
   baseline — zero post-install detections — while the gateless run
   must actually violate them, proving the attacks are live.

2. **Per-FlowMod overhead** on a quiet switch (atom backend): the gate
   decision (speculative snapshot + full contract sweep + signed
   verdict) vs what detection mode pays for the *same* FlowMod — the
   PR-5 incremental matrix repair plus re-verifying and re-signing the
   same contracts once the rule has landed.  The bar: gate <= 2x the
   detection-mode refresh.  The single-answer repair cost (E20's
   measure) is disclosed alongside; the gate is necessarily more
   expensive than that because it checks every contract, not one.

3. **Degraded-mode honesty.**  A burst-evasion adversary saturates the
   admission queue.  Fail-open: every waved-through rule leaves a
   *signed* audit record and is re-verified at recovery (the smuggled
   attack is remediated).  Fail-closed: nothing unverified installs and
   the inner attack never lands.
"""

import statistics
import time
from dataclasses import replace as dc_replace

import pytest

from repro.attacks import (
    BlackholeAttack,
    BurstEvasionAttack,
    DiversionAttack,
    ExfiltrationAttack,
    GeoViolationAttack,
    ShortLivedReconfigurationAttack,
)
from repro.core.engine import BACKEND_ENV_VAR, SnapshotDelta, VerificationEngine
from repro.core.gate import (
    GATE_ALLOW,
    GateConfig,
    GatePolicy,
    _Pending,
    verify_gate_record,
)
from repro.core.snapshot import NetworkSnapshot
from repro.core.verifier import LogicalVerifier
from repro.crypto.sign import sign
from repro.dataplane.topologies import isp_topology
from repro.faults import ground_truth_snapshot
from repro.hsa.transfer import SnapshotRule
from repro.netlib.addresses import IPv4Address
from repro.openflow.actions import Drop
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.testbed import build_testbed

FORBIDDEN = ("offshore",)

#: Rounds for the overhead section: the first WARMUP rounds register
#: every atom/constant both pipelines touch (the global interner makes
#: cold rounds unrepresentative), the rest are timed.
WARMUP = 2
ROUNDS = 10


def gated_bed(seed=23, fail_open=True, **overrides):
    policy = GatePolicy(forbidden_regions=FORBIDDEN, fail_open=fail_open)
    config = GateConfig(policy=policy, **overrides)
    return build_testbed(
        isp_topology(clients=["alice", "bob"]),
        isolate_clients=True,
        seed=seed,
        gate=config,
    )


def plain_bed(seed=23):
    return build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=seed
    )


def contract_answers(bed):
    """Every client's contract, answered from data-plane ground truth.

    A fresh verifier per call: ground-truth snapshots share a version
    sentinel, and the analysis cache is keyed by version.
    """
    truth = ground_truth_snapshot(bed.service.monitor, bed.network)
    verifier = LogicalVerifier(bed.registrations, engine=VerificationEngine())
    answers = {}
    for name in sorted(bed.registrations):
        registration = bed.registrations[name]
        per_host = {}
        for host in registration.hosts:
            sub = dc_replace(registration, hosts=(host,))
            per_host[host.name] = verifier.reachable_destinations(sub, truth)
        answers[name] = (
            per_host,
            verifier.isolation(registration, truth),
            verifier.waypoint_avoidance(registration, truth, FORBIDDEN),
        )
    return answers


ATTACKS = (
    ("blackhole", lambda: BlackholeAttack("h_ber1", "h_fra1")),
    ("diversion", lambda: DiversionAttack("h_ber1", "h_fra1", "off")),
    ("exfiltration", lambda: ExfiltrationAttack("h_fra1", "h_ber2")),
    ("geo-violation", lambda: GeoViolationAttack("h_ber1", "h_par1", "offshore")),
    (
        "reconfiguration",
        lambda: ShortLivedReconfigurationAttack(
            BlackholeAttack("h_ber1", "h_fra1"), period=2.0, active_duration=0.8
        ),
    ),
)


def run_attack(bed, make_attack):
    attack = make_attack()
    baseline = contract_answers(bed)
    attack.arm(bed.provider, bed.topology)
    if isinstance(attack, ShortLivedReconfigurationAttack):
        # Sample inside the first active window: the pulse disarms
        # itself, so a late sample would acquit even the ungated run.
        bed.run(0.4)
        during = contract_answers(bed)
        attack.stop()
        bed.run(0.5)
        return baseline, during
    bed.run(3.0)
    return baseline, contract_answers(bed)


# ----------------------------------------------------------------------
# Section 2 helpers: matched per-FlowMod churn on a quiet switch
# ----------------------------------------------------------------------

CHURN_SWITCH = "ams"


def churn_mod(bed, index):
    """A registered-constant drop rule: no atom splits, pure repair cost."""
    pinned = IPv4Address(bed.registrations["alice"].hosts[0].ip)
    return FlowMod(
        command=FlowModCommand.ADD,
        match=Match(ip_dst=pinned),
        actions=(Drop(),),
        priority=100 + index,
    )


def time_gate_decisions(bed):
    gate = bed.gate
    channel = next(
        ch
        for ch in bed.network.channels
        if ch.controller_end.name == bed.provider.name
        and ch.switch_end.name == CHURN_SWITCH
    )
    samples = []
    for i in range(ROUNDS):
        item = _Pending(
            channel=channel,
            message=churn_mod(bed, i),
            switch=CHURN_SWITCH,
            controller=bed.provider.name,
            enqueued_at=bed.network.sim.now,
            batch_key=None,
        )
        start = time.perf_counter()
        gate._decide(item)
        samples.append((time.perf_counter() - start) * 1000.0)
        bed.run(0.2)
    verdicts = {d.verdict for d in gate.decisions_for(CHURN_SWITCH)}
    assert verdicts == {GATE_ALLOW}, f"churn rules must be benign, got {verdicts}"
    return statistics.median(samples[WARMUP:])


def time_detection_refresh(bed):
    """What detection mode pays once the same FlowMod has landed.

    Incremental repair of the atom matrix (PR-5) + re-answering the
    identical contract sweep + re-signing the refreshed answer bundle —
    the detection-side work the gate's pre-install verdict replaces.
    Returns (refresh_median_ms, single_answer_median_ms).
    """
    registrations = bed.registrations
    verifier = LogicalVerifier(registrations, engine=VerificationEngine())
    service_key = bed.attested.service_keypair.private
    base = bed.service.snapshot()
    pinned = IPv4Address(registrations["alice"].hosts[0].ip)

    def sweep(snapshot):
        bundle = []
        for name in sorted(registrations):
            registration = registrations[name]
            for host in registration.hosts:
                sub = dc_replace(registration, hosts=(host,))
                bundle.append(verifier.reachable_destinations(sub, snapshot))
            bundle.append(verifier.isolation(registration, snapshot))
            bundle.append(verifier.traversal_switches(registration, snapshot))
            bundle.append(
                verifier.waypoint_avoidance(registration, snapshot, FORBIDDEN)
            )
        return sign(tuple(bundle), service_key)

    def single(snapshot):
        registration = registrations["alice"]
        sub = dc_replace(registration, hosts=(registration.hosts[0],))
        return verifier.reachable_destinations(sub, snapshot)

    sweep(base)
    config = {switch: list(rules) for switch, rules in base.rules.items()}
    version = base.version
    previous = base
    refresh, answer = [], []
    for i in range(2 * ROUNDS):
        config[CHURN_SWITCH].append(
            SnapshotRule(
                table_id=0,
                priority=100 + i,
                match=Match(ip_dst=pinned),
                actions=(Drop(),),
            )
        )
        version += 1
        snapshot = NetworkSnapshot(
            version=version,
            taken_at=float(version),
            rules={switch: tuple(rules) for switch, rules in config.items()},
            meters=base.meters,
            wiring=base.wiring,
            edge_ports=base.edge_ports,
            switch_ports=base.switch_ports,
            locations=base.locations,
            link_capacities=base.link_capacities,
        )
        delta = SnapshotDelta(
            since_version=previous.version,
            version=snapshot.version,
            changed_switches=frozenset({CHURN_SWITCH}),
        )
        if i % 2 == 0:
            verifier.engine.apply_delta(delta)
            start = time.perf_counter()
            sweep(snapshot)
            refresh.append((time.perf_counter() - start) * 1000.0)
        else:
            verifier.engine.apply_delta(delta)
            start = time.perf_counter()
            single(snapshot)
            answer.append((time.perf_counter() - start) * 1000.0)
        previous = snapshot
    return (
        statistics.median(refresh[WARMUP:]),
        statistics.median(answer[WARMUP:]),
    )


# ----------------------------------------------------------------------
# Section 3 helper: burst evasion against both failure dispositions
# ----------------------------------------------------------------------


def run_burst(fail_open):
    bed = gated_bed(
        seed=31,
        fail_open=fail_open,
        verify_deadline=0.05,
        max_pending=16,
        verify_cost=0.02,
    )
    baseline = contract_answers(bed)
    attack = BurstEvasionAttack(BlackholeAttack("h_ber1", "h_fra1"), burst=96)
    attack.arm(bed.provider, bed.topology)
    bed.run(12.0)
    return bed, baseline, contract_answers(bed)


@pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")
def test_preventive_gate(report, monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "atom")
    rep = report("E23", "Preventive verify-then-install gate")

    # ---- Section 1: prevention vs detection --------------------------
    rows = []
    prevention = {}
    for name, make_attack in ATTACKS:
        gated = gated_bed()
        before, after = run_attack(gated, make_attack)
        stats = gated.gate.stats()
        stopped = stats["blocked"] + stats["repaired"] + stats["quarantined"]
        intact = before == after

        plain = plain_bed()
        p_before, p_after = run_attack(plain, make_attack)
        landed = p_before != p_after

        rows.append(
            [
                name,
                "intact" if intact else "VIOLATED",
                stopped,
                "violated" if landed else "no effect",
            ]
        )
        prevention[name] = {
            "gated_contracts_intact": intact,
            "gated_stopped_flowmods": stopped,
            "ungated_contracts_violated": landed,
        }
        assert intact, f"{name}: contract answers changed despite the gate"
        assert stopped >= 1, f"{name}: gate never refused anything"
        assert landed, f"{name}: attack has no effect even without a gate"
    rep.line("Ground-truth contract answers, before vs after each attack:")
    rep.table(
        ["attack", "gated contracts", "flowmods stopped", "ungated contracts"], rows
    )

    # ---- Section 2: per-FlowMod overhead -----------------------------
    refresh_ms, answer_ms = time_detection_refresh(plain_bed(seed=29))
    gate_ms = time_gate_decisions(gated_bed(seed=29))
    ratio_refresh = gate_ms / refresh_ms
    ratio_answer = gate_ms / answer_ms
    rep.line("")
    rep.line(f"Per-FlowMod cost on quiet switch '{CHURN_SWITCH}' (atom backend):")
    rep.table(
        ["pipeline", "median ms", "vs gate"],
        [
            ["gate decision (verify + sign, pre-install)", f"{gate_ms:.2f}", "1.00x"],
            [
                "detection refresh (repair + sweep + sign)",
                f"{refresh_ms:.2f}",
                f"{ratio_refresh:.2f}x",
            ],
            [
                "single-answer repair (E20 measure)",
                f"{answer_ms:.2f}",
                f"{ratio_answer:.2f}x",
            ],
        ],
    )
    assert ratio_refresh <= 2.0, (
        f"gate decision {gate_ms:.2f}ms exceeds 2x the detection-mode "
        f"refresh {refresh_ms:.2f}ms"
    )

    # ---- Section 3: degraded-mode honesty ----------------------------
    open_bed, open_before, open_after = run_burst(fail_open=True)
    open_stats = open_bed.gate.stats()
    service_public = open_bed.attested.service_keypair.public
    audits_signed = all(
        verify_gate_record(record, service_public)
        for record in open_bed.gate.audit_log
    )
    decisions_signed = all(
        verify_gate_record(record, service_public)
        for record in open_bed.gate.decisions
    )
    assert open_stats["passed_through"] >= 1, "fail-open never waved anything through"
    assert open_stats["fail_open_windows"] >= 1
    assert open_stats["backlog_reverified"] >= 1, "fail-open debt never re-verified"
    assert audits_signed and decisions_signed, "unsigned gate records"
    assert open_stats["backlog_remediated"] >= 1, (
        "the smuggled attack survived recovery"
    )
    assert open_before == open_after, "fail-open damage outlived recovery"

    closed_bed, closed_before, closed_after = run_burst(fail_open=False)
    closed_stats = closed_bed.gate.stats()
    assert closed_stats["passed_through"] == 0, "fail-closed installed unverified"
    assert closed_stats["fail_closed_rejects"] >= 1
    assert closed_before == closed_after, "attack landed despite fail-closed"

    rep.line("")
    rep.line("Burst evasion (96 decoys against a 16-slot queue):")
    rep.table(
        ["disposition", "passed unverified", "signed audits", "re-verified", "contracts"],
        [
            [
                "fail-open",
                open_stats["passed_through"],
                len(open_bed.gate.audit_log),
                open_stats["backlog_reverified"],
                "intact after recovery",
            ],
            [
                "fail-closed",
                closed_stats["passed_through"],
                len(closed_bed.gate.audit_log),
                0,
                "intact throughout",
            ],
        ],
    )

    rep.save_json(
        {
            "prevention": prevention,
            "overhead": {
                "switch": CHURN_SWITCH,
                "backend": "atom",
                "per_flowmod_ms": {
                    "gate_decision": gate_ms,
                    "detection_refresh": refresh_ms,
                    "single_answer_repair": answer_ms,
                },
                "ratio_vs_detection_refresh": ratio_refresh,
                "ratio_vs_single_answer": ratio_answer,
                "bound": 2.0,
            },
            "degraded": {
                "fail_open": {
                    key: open_stats[key]
                    for key in (
                        "passed_through",
                        "fail_open_windows",
                        "backlog_reverified",
                        "backlog_remediated",
                        "shed",
                        "deadline_misses",
                    )
                },
                "fail_open_records_signed": audits_signed and decisions_signed,
                "fail_closed": {
                    key: closed_stats[key]
                    for key in ("passed_through", "fail_closed_rejects", "shed")
                },
            },
        }
    )
    rep.finish()


def test_gate_decision_smoke(benchmark, monkeypatch):
    """One benign gate decision, timed (CI smoke: --benchmark-disable)."""
    monkeypatch.setenv(BACKEND_ENV_VAR, "atom")
    bed = gated_bed(seed=7)
    channel = next(
        ch
        for ch in bed.network.channels
        if ch.controller_end.name == bed.provider.name
        and ch.switch_end.name == CHURN_SWITCH
    )
    counter = iter(range(1000))

    def decide():
        item = _Pending(
            channel=channel,
            message=churn_mod(bed, next(counter)),
            switch=CHURN_SWITCH,
            controller=bed.provider.name,
            enqueued_at=bed.network.sim.now,
            batch_key=None,
        )
        bed.gate._decide(item)
        bed.run(0.1)

    benchmark(decide)
