"""E4 — Case study §IV-B2: geo-location checks.

The paper lists three ways RVaaS can learn element locations:
(1) disclosed by the infrastructure provider, (2) crowd-sourced from
clients ("clients report their geographical locations which allows RVaaS
to guess the location of nearby switches"), (3) passively inferred
(geo-IP and similar, here: a noisy subset).  The experiment arms a
jurisdiction-violation attack and measures detection under each
provisioning mode.
"""

import pytest

from repro.attacks import GeoViolationAttack
from repro.core.queries import GeoLocationQuery, WaypointAvoidanceQuery
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


def location_maps(topology):
    """The three provisioning modes as switch->GeoLocation maps."""
    disclosed = {
        name: spec.location
        for name, spec in topology.switches.items()
        if spec.location is not None
    }
    # Crowd-sourced: only switches with an attached client host get the
    # location their hosts report.
    crowd = {}
    for host in topology.hosts.values():
        if host.client and host.location is not None:
            crowd[host.switch] = host.location
    # Inferred: crowd-sourcing minus the least-observable element (the
    # offshore transit switch has one host; pretend its geo-IP failed).
    inferred = {k: v for k, v in crowd.items() if k != "off"}
    return {"disclosed": disclosed, "crowd-sourced": crowd, "inferred": inferred}


def test_geo_detection_by_provisioning_mode(benchmark, report):
    rep = report("E4", "Geo case study: detection per location-provisioning mode")
    rows = []
    for mode_name in ("disclosed", "crowd-sourced", "inferred"):
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=17
        )
        maps = location_maps(bed.topology)
        locations = maps[mode_name]

        def regions_now():
            snapshot = bed.service.monitor.snapshot(locations=dict(locations))
            answer = bed.service.verifier.geo_location(
                bed.registrations["alice"], snapshot
            )
            return set(answer.regions)

        before = regions_now()
        bed.provider.compromise(GeoViolationAttack("h_ber1", "h_fra1", "offshore"))
        bed.run(0.5)
        after = regions_now()
        detected = "offshore" in after and "offshore" not in before
        rows.append(
            (
                mode_name,
                len(locations),
                ",".join(sorted(before)),
                ",".join(sorted(after)),
                "DETECTED" if detected else "missed",
            )
        )
    rep.table(
        ["mode", "located_switches", "regions_before", "regions_after", "verdict"],
        rows,
    )
    rep.line()
    rep.line("shape check: disclosed and crowd-sourced locations both catch")
    rep.line("the violation; inference that misses the offshore switch is")
    rep.line("blind to it — coverage of the location map bounds detection.")
    rep.finish()
    verdicts = {row[0]: row[4] for row in rows}
    assert verdicts["disclosed"] == "DETECTED"
    assert verdicts["crowd-sourced"] == "DETECTED"
    assert verdicts["inferred"] == "missed"

    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=17
    )
    benchmark(lambda: bed.service.answer_locally("alice", GeoLocationQuery()))


def test_waypoint_policy_check(benchmark, report):
    rep = report("E4b", "Waypoint-avoidance compliance verdicts")
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=18
    )
    query = WaypointAvoidanceQuery(forbidden_regions=("offshore",))
    clean = bed.service.answer_locally("alice", query)
    bed.provider.compromise(GeoViolationAttack("h_ber1", "h_par1", "offshore"))
    bed.run(0.5)
    dirty = bed.service.answer_locally("alice", query)
    rep.table(
        ["phase", "avoided", "violating_regions"],
        [
            ("benign", clean.avoided, ",".join(clean.violating_regions) or "-"),
            ("attacked", dirty.avoided, ",".join(dirty.violating_regions) or "-"),
        ],
    )
    rep.finish()
    assert clean.avoided and not dirty.avoided
    benchmark(lambda: bed.service.answer_locally("alice", query))
