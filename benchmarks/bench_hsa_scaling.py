"""E10 — Header Space Analysis scaling and ablations.

The logical-verification substrate (§IV-A2) must stay cheap as the
network grows.  Measured: reachability cost vs switch count, vs rule
count per switch, loop detection on rings, and the two design-choice
ablations DESIGN.md calls out — excluding RVaaS's own interception rules
from analysis, and subset pruning in long-lived header-space unions.
"""

import time

import pytest

from repro.core.queries import ReachableDestinationsQuery
from repro.dataplane.topologies import (
    fat_tree_topology,
    linear_topology,
    ring_topology,
)
from repro.hsa.headerspace import HeaderSpace
from repro.hsa.reachability import ReachabilityAnalyzer
from repro.hsa.wildcard import Wildcard
from repro.openflow.match import Match
from repro.openflow.actions import Output
from repro.testbed import build_testbed


def timed(fn, repeats=3):
    start = time.perf_counter()
    for _ in range(repeats):
        result = fn()
    return result, (time.perf_counter() - start) * 1000 / repeats


def test_reachability_vs_topology_size(benchmark, report):
    rep = report("E10", "Reachability cost vs topology size")
    rows = []
    for name, topo in (
        ("linear-4", linear_topology(4, clients=["a", "b"])),
        ("linear-8", linear_topology(8, clients=["a", "b"])),
        ("linear-16", linear_topology(16, clients=["a", "b"])),
        ("linear-32", linear_topology(32, clients=["a", "b"])),
        ("fat-tree-4", fat_tree_topology(4, clients=["a", "b"])),
    ):
        bed = build_testbed(topo, isolate_clients=True, seed=51)
        snapshot = bed.service.snapshot()
        registration = bed.registrations["a"]

        def analyze():
            return bed.service.verifier.reachable_destinations(
                registration, snapshot
            )

        answer, cost_ms = timed(analyze)
        metrics = bed.service.engine.metrics
        rows.append(
            (
                name,
                len(topo.switches),
                snapshot.rule_count(),
                len(answer.endpoints),
                f"{cost_ms:.2f}",
                metrics.recompilations,
                metrics.reach_hits,
            )
        )
    rep.table(
        [
            "topology",
            "switches",
            "rules",
            "endpoints",
            "cost_ms",
            "tf_recompiles",
            "reach_hits",
        ],
        rows,
    )
    rep.line()
    rep.line("tf_recompiles stays at the switch count (each switch compiled")
    rep.line("once); the timed repeats are served from the engine's memoized")
    rep.line("propagations (reach_hits), so cost_ms here is the *warm* cost.")
    rep.line()
    rep.line("shape check: cost grows roughly linearly in installed rules")
    rep.line("for chains; fat-tree path diversity costs more per rule but")
    rep.line("stays in the tens of milliseconds at pod scale.")
    rep.finish()

    bed = build_testbed(
        linear_topology(8, clients=["a", "b"]), isolate_clients=True, seed=51
    )
    registration = bed.registrations["a"]
    snapshot = bed.service.snapshot()
    benchmark(
        lambda: bed.service.verifier.reachable_destinations(registration, snapshot)
    )


def test_reachability_vs_rule_count(benchmark, report):
    rep = report("E10b", "Reachability cost vs extra rules per switch")
    rows = []
    for extra in (0, 32, 64, 128):
        bed = build_testbed(
            linear_topology(6, clients=["a", "b"]), isolate_clients=True, seed=52
        )
        # Pad tables with low-priority, non-overlapping clutter rules, as
        # a production network would have for unrelated tenants.
        for switch in bed.topology.switches:
            for i in range(extra):
                bed.provider.install_flow(
                    switch,
                    Match.build(ip_dst=f"172.16.{i % 256}.{(i * 7) % 256}", tp_dst=20000 + i),
                    (Output(1),),
                    priority=2,
                )
        bed.run(1.0)
        snapshot = bed.service.snapshot()
        registration = bed.registrations["a"]
        _, cost_ms = timed(
            lambda: bed.service.verifier.reachable_destinations(
                registration, snapshot
            )
        )
        rows.append((extra, snapshot.rule_count(), f"{cost_ms:.2f}"))
    rep.table(["extra_rules_per_switch", "total_rules", "cost_ms"], rows)
    rep.line()
    rep.line("shape check: clutter rules cost roughly linearly — each is one")
    rep.line("intersection test plus (only when overlapping) a subtraction.")
    rep.finish()

    benchmark(lambda: rows)


def test_loop_detection_on_ring(benchmark, report):
    rep = report("E10c", "Loop detection sweep on ring topologies")
    rows = []
    for n in (4, 8, 12):
        bed = build_testbed(
            ring_topology(n, clients=["a", "b"]), isolate_clients=False, seed=53
        )
        snapshot = bed.service.snapshot()
        analyzer = ReachabilityAnalyzer(
            bed.service.verifier._analysis_snapshot(snapshot).network_tf()
        )
        _, cost_ms = timed(lambda: analyzer.detect_all_loops(HeaderSpace.all()), repeats=1)
        loops = analyzer.detect_all_loops(HeaderSpace.all())
        rows.append((f"ring-{n}", len(loops), f"{cost_ms:.1f}"))
    rep.table(["topology", "loops_found", "cost_ms"], rows)
    rep.line()
    rep.line("benign shortest-path routing on a ring installs no looping")
    rep.line("rules, so the sweep must come back clean (0 loops).")
    rep.finish()
    assert all(row[1] == 0 for row in rows)

    bed = build_testbed(
        ring_topology(6, clients=["a", "b"]), isolate_clients=False, seed=53
    )
    snapshot = bed.service.snapshot()
    analyzer = ReachabilityAnalyzer(
        bed.service.verifier._analysis_snapshot(snapshot).network_tf()
    )
    benchmark(lambda: analyzer.detect_all_loops(HeaderSpace.all()))


def test_ablation_interception_filtering(benchmark, report):
    """DESIGN.md ablation: analysing with the service's own interception
    rules left in multiplies wildcard-union sizes (priority shadows of
    the magic-port punts thread through every switch)."""
    from repro.core.verifier import LogicalVerifier

    rep = report("E10d", "Ablation: exclude own interception rules from analysis")
    bed = build_testbed(
        linear_topology(5, clients=["a", "b"]), isolate_clients=True, seed=54
    )
    snapshot = bed.service.snapshot()
    registration = bed.registrations["a"]
    rows = []
    endpoint_sets = []
    for exclude in (True, False):
        verifier = LogicalVerifier(
            bed.registrations, exclude_own_interception=exclude
        )
        answer, cost_ms = timed(
            lambda: verifier.reachable_destinations(registration, snapshot),
            repeats=1,
        )
        endpoint_sets.append({e.host for e in answer.endpoints if e.port >= 0})
        rows.append(("on" if exclude else "off", f"{cost_ms:.1f}"))
    rep.table(["interception filtering", "cost_ms"], rows)
    rep.line()
    rep.line("both settings find the same data-plane endpoints; filtering")
    rep.line("only removes the service's signalling shadows — and the cost")
    rep.line("difference shows why it is the default.")
    rep.finish()
    assert endpoint_sets[0] == endpoint_sets[1]

    verifier = LogicalVerifier(bed.registrations, exclude_own_interception=True)
    benchmark(lambda: verifier.reachable_destinations(registration, snapshot))
