"""E9 — Multi-provider federation: recursive query cost vs chain length.

§IV-C(a): "queries need to be propagated between the RVaaS servers of
the respective providers."  The experiment chains 1..4 provider domains
along a linear internetwork and measures, per federated reachability
query: inter-provider messages, recursion depth, domains involved, and
wall-clock cost.  Expected shape: messages and depth grow linearly with
the number of domain boundaries the client's traffic crosses.
"""

import random
import time

import pytest

from repro.controlplane.provider import ProviderController
from repro.core.monitor import ConfigurationMonitor, MonitorMode
from repro.core.multiprovider import ProviderDomain, RVaaSFederation
from repro.core.protocol import ClientRegistration, HostRecord
from repro.core.service import RVaaSController
from repro.crypto.keys import generate_keypair
from repro.dataplane.network import Network
from repro.dataplane.topologies import linear_topology


def build_federation(n_domains, per_domain=2, seed=0):
    topo = linear_topology(
        n_domains * per_domain, hosts_per_switch=1, clients=["acme"]
    )
    net = Network(topo, seed=seed)
    provider = ProviderController()
    provider.attach(net)
    provider.deploy()
    rng = random.Random(seed ^ 0xFED)
    client_key = generate_keypair("client:acme", rng=rng)
    host_keys = {
        h.name: generate_keypair(f"host:{h.name}", rng=rng)
        for h in topo.hosts.values()
    }
    registration = ClientRegistration(
        name="acme",
        public_key=client_key.public,
        hosts=tuple(
            HostRecord(
                name=h.name, ip=h.ip.value, switch=h.switch, port=h.port,
                public_key=host_keys[h.name].public,
            )
            for h in sorted(topo.hosts.values(), key=lambda h: h.name)
        ),
    )
    names = sorted(topo.switches, key=lambda s: int(s[1:]))
    domains = []
    for d in range(n_domains):
        owned = frozenset(names[d * per_domain : (d + 1) * per_domain])
        service = RVaaSController(
            generate_keypair(f"rvaas-{d}", rng=rng),
            {"acme": registration},
            name=f"rvaas-{d}",
            monitor_mode=MonitorMode.PASSIVE,
        )
        service.attach(net, switches=sorted(owned))
        service.monitor = ConfigurationMonitor(service, topo, mode=MonitorMode.PASSIVE)
        service.on_monitor_update = (  # type: ignore[assignment]
            lambda sw, msg, svc=service: svc.monitor.handle_monitor_update(sw, msg)
        )
        service.monitor.start()
        domains.append(ProviderDomain(name=f"P{d}", switches=owned, service=service))
    net.run(1.0)
    return topo, RVaaSFederation(domains, topo), registration


def test_federated_query_scaling(benchmark, report):
    rep = report("E9", "Federated reachability vs provider-chain length")
    rows = []
    for n_domains in (1, 2, 3, 4):
        topo, federation, registration = build_federation(n_domains, seed=41)
        start = time.perf_counter()
        answer = federation.reachable_destinations(registration)
        elapsed_ms = (time.perf_counter() - start) * 1000
        rows.append(
            (
                n_domains,
                len(answer.endpoints),
                len(answer.domains_involved),
                answer.federated_messages,
                answer.max_chain_depth,
                f"{elapsed_ms:.1f}",
            )
        )
    rep.table(
        [
            "domains",
            "endpoints_found",
            "domains_involved",
            "federated_msgs",
            "max_depth",
            "wall_ms",
        ],
        rows,
    )
    rep.line()
    rep.line("shape check: every domain is consulted, recursion depth grows")
    rep.line("linearly with the chain, and endpoint answers compose without")
    rep.line("any provider revealing internal topology to its peers.")
    rep.finish()

    for n_domains, endpoints, involved, msgs, depth, _ in rows:
        assert involved == n_domains
        assert endpoints == n_domains * 2  # every host found
        assert depth == n_domains - 1
    # Messages grow with boundaries.
    message_counts = [row[3] for row in rows]
    assert message_counts == sorted(message_counts)

    topo, federation, registration = build_federation(3, seed=41)
    benchmark(lambda: federation.reachable_destinations(registration))
