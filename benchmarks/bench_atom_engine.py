"""E19 — Atomic-predicate matrix serving vs the wildcard fast path.

PR "atomic-predicate compaction" partitions the snapshot's header space
into equivalence classes (atoms) induced by every match and rewrite
constant, represents header sets as Python-int bitsets, and precomputes
an all-ingress reachability matrix at compile time.  Query serving then
decodes matrix rows instead of propagating header spaces.  This
experiment prices both halves of that trade on the same snapshots:

* **query serving** — the full RVaaS query set (reachable destinations,
  reaching sources, isolation, geo-location for every registration)
  against a warm compiled snapshot, wildcard backend vs atom backend.
  The matrix should win by a wide margin: answers become bitset
  intersections plus decode.
* **compile cost** — what the atom backend pays up front.  The wildcard
  baseline is the cold end-to-end cost of the pre-atom pipeline
  (compile the NTF, then answer the same query set by propagation —
  the E17 protocol's "cold compile-and-sweep").  The atom number is a
  cold :meth:`VerificationEngine.compile` on the atom backend, which
  builds the NTF, the atom space, and the full reachability matrix.

Protocol notes, so the numbers mean what they say:

* Answers are asserted byte-identical between backends — and the atom
  engine's fallback counter asserted zero, so the atom timings really
  are matrix serving, not silent wildcard fallback — before any timing
  is trusted.
* Each timed query repeat gets a fresh engine (compile paid outside the
  timer), so repeats never inherit another repeat's propagation memo.
* The :class:`AtomSpace` is interned process-wide by constraint content
  (production behaviour: every engine after the first shares it), so
  the cold atom compile prices NTF compilation plus the matrix build
  with an interned space.  The one-off space construction is measured
  separately against a private table and reported as its own column.
"""

import statistics
import time

from repro.core.engine import VerificationEngine
from repro.core.verifier import LogicalVerifier
from repro.dataplane.topologies import fat_tree_topology, waxman_topology
from repro.hsa.atoms import AtomTable, GLOBAL_ATOM_TABLE
from repro.testbed import build_testbed

TOPOLOGIES = (
    ("fat-tree-4", lambda: fat_tree_topology(4, clients=["a", "b"]), 5),
    ("waxman-16", lambda: waxman_topology(16, seed=7, clients=["a", "b"]), 5),
)


def run_queries(verifier, registrations, snapshot):
    """The full per-registration RVaaS query set, in a fixed order."""
    answers = []
    for name in sorted(registrations):
        registration = registrations[name]
        answers.append(verifier.reachable_destinations(registration, snapshot))
        answers.append(verifier.reaching_sources(registration, snapshot))
        answers.append(verifier.isolation(registration, snapshot))
        answers.append(verifier.geo_location(registration, snapshot))
    return answers


def fresh_pipeline(backend, registrations, snapshot):
    """Engine + verifier + analysis snapshot; nothing compiled yet."""
    engine = VerificationEngine(backend=backend)
    verifier = LogicalVerifier(registrations, engine=engine)
    analysis = verifier._analysis_snapshot(snapshot)
    return engine, verifier, analysis


def median_warm_query_ms(backend, registrations, snapshot, repeats):
    """Median time to answer the query set on a warm compiled snapshot.

    Every repeat builds a fresh engine and compiles outside the timer,
    so the wildcard backend pays full propagation each repeat and the
    atom backend pays matrix decode each repeat — no cross-repeat memo.
    """
    times = []
    answers = None
    engine = None
    for _ in range(repeats):
        engine, verifier, analysis = fresh_pipeline(
            backend, registrations, snapshot
        )
        engine.compile(analysis)
        start = time.perf_counter()
        answers = run_queries(verifier, registrations, snapshot)
        times.append((time.perf_counter() - start) * 1000)
    return statistics.median(times), answers, engine


def median_cold_ms(backend, registrations, snapshot, repeats, serve):
    """Median cold cost: compile (and, for the baseline, serve) once."""
    times = []
    for _ in range(repeats):
        engine, verifier, analysis = fresh_pipeline(
            backend, registrations, snapshot
        )
        start = time.perf_counter()
        engine.compile(analysis)
        if serve:
            run_queries(verifier, registrations, snapshot)
        times.append((time.perf_counter() - start) * 1000)
    return statistics.median(times)


def test_atom_matrix_speedup(benchmark, report):
    rep = report("E19", "Atom-matrix query serving vs wildcard fast path")
    rows = []
    cold_rows = []
    json_topologies = {}
    for name, make_topo, repeats in TOPOLOGIES:
        bed = build_testbed(make_topo(), isolate_clients=True, seed=51)
        snapshot = bed.service.snapshot()
        registrations = bed.registrations
        hosts = sum(len(r.hosts) for r in registrations.values())

        # Correctness gate: byte-identical answers, zero atom fallbacks.
        w_engine, w_verifier, _ = fresh_pipeline(
            "wildcard", registrations, snapshot
        )
        a_engine, a_verifier, _ = fresh_pipeline(
            "atom", registrations, snapshot
        )
        wildcard_answers = run_queries(w_verifier, registrations, snapshot)
        atom_answers = run_queries(a_verifier, registrations, snapshot)
        assert atom_answers == wildcard_answers, f"{name}: backends disagree"
        assert a_engine.metrics.atom_fallbacks == 0, (
            f"{name}: atom backend fell back to propagation"
        )
        assert a_engine.metrics.atom_served_queries > 0

        wildcard_ms, _, _ = median_warm_query_ms(
            "wildcard", registrations, snapshot, repeats
        )
        atom_ms, _, atom_engine = median_warm_query_ms(
            "atom", registrations, snapshot, repeats
        )
        speedup = wildcard_ms / atom_ms

        wildcard_cold_ms = median_cold_ms(
            "wildcard", registrations, snapshot, repeats, serve=True
        )
        atom_cold_ms = median_cold_ms(
            "atom", registrations, snapshot, repeats, serve=False
        )
        cold_ratio = atom_cold_ms / wildcard_cold_ms

        # One-off space construction cost, bypassing the global interner.
        pair = atom_engine.atom_artifacts(snapshot)
        assert pair is not None
        space, matrix = pair
        analysis = a_verifier._analysis_snapshot(snapshot)
        ntf = atom_engine.compile(analysis)
        constraints = tuple(ntf.atom_constraints()) + tuple(
            a_verifier._atom_seed_wildcards()
        )
        start = time.perf_counter()
        private_space = AtomTable(max_entries=2).space_for(constraints)
        space_build_ms = (time.perf_counter() - start) * 1000
        assert private_space is not None

        rows.append(
            (
                name,
                snapshot.rule_count(),
                hosts,
                space.n_atoms,
                f"{wildcard_ms:.2f}",
                f"{atom_ms:.2f}",
                f"{speedup:.1f}x",
            )
        )
        cold_rows.append(
            (
                name,
                f"{wildcard_cold_ms:.1f}",
                f"{atom_cold_ms:.1f}",
                f"{space_build_ms:.1f}",
                f"{cold_ratio:.2f}x",
            )
        )
        json_topologies[name] = {
            "rules": snapshot.rule_count(),
            "hosts": hosts,
            "atoms": space.n_atoms,
            "matrix_rows": len(list(matrix.ingresses())),
            "queries_per_round": 4 * len(registrations),
            "wildcard_query_median_ms": round(wildcard_ms, 3),
            "atom_query_median_ms": round(atom_ms, 3),
            "query_speedup": round(speedup, 3),
            "wildcard_cold_serve_ms": round(wildcard_cold_ms, 3),
            "atom_cold_compile_ms": round(atom_cold_ms, 3),
            "atom_space_build_ms": round(space_build_ms, 3),
            "cold_ratio": round(cold_ratio, 3),
        }
    rep.table(
        [
            "topology",
            "rules",
            "hosts",
            "atoms",
            "wildcard_ms",
            "atom_ms",
            "speedup",
        ],
        rows,
    )
    rep.line()
    rep.line("cold costs (compile side of the trade):")
    rep.table(
        [
            "topology",
            "wildcard_cold_serve_ms",
            "atom_cold_compile_ms",
            "space_build_ms",
            "ratio",
        ],
        cold_rows,
    )
    rep.line()
    stats = GLOBAL_ATOM_TABLE.stats()
    rep.line(
        "atom interner: "
        f"builds={stats['builds']} hits={stats['hits']} "
        f"overflows={stats['overflows']} entries={stats['entries']}"
    )
    rep.line()
    rep.line("protocol: answers asserted byte-identical across backends and")
    rep.line("atom fallbacks asserted zero before timing.  Warm query rounds")
    rep.line("use a fresh engine per repeat with compile outside the timer;")
    rep.line("medians over repeats.  The wildcard cold baseline is the E17")
    rep.line("cold compile-and-serve (NTF compile + full query set by")
    rep.line("propagation); the atom cold number is a cold compile() on the")
    rep.line("atom backend (NTF + interned atom space + full reachability")
    rep.line("matrix).  space_build_ms prices the one-off, non-interned")
    rep.line("AtomSpace construction separately.")
    rep.finish()
    rep.save_json({"topologies": json_topologies})

    for name, payload in json_topologies.items():
        assert payload["query_speedup"] >= 5.0, (
            f"{name}: matrix speedup {payload['query_speedup']}x below 5x"
        )
        assert payload["cold_ratio"] <= 2.0, (
            f"{name}: atom compile {payload['cold_ratio']}x over the "
            "2x cold-compile budget"
        )

    bed = build_testbed(
        fat_tree_topology(4, clients=["a", "b"]), isolate_clients=True, seed=51
    )
    snapshot = bed.service.snapshot()
    engine, verifier, analysis = fresh_pipeline(
        "atom", bed.registrations, snapshot
    )
    engine.compile(analysis)
    benchmark(lambda: run_queries(verifier, bed.registrations, snapshot))
