"""E3 — Case study §IV-B1: isolation checks / join-attack detection.

Measures detection quality of the isolation query over a matrix of
scenarios: benign, join attacks of several shapes, and exfiltration.
Expected shape: 100% true positives on covered attack classes, 0% false
positives when unarmed.
"""

import pytest

from repro.attacks import ExfiltrationAttack, JoinAttack
from repro.core.queries import IsolationQuery
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


def scenario_results():
    scenarios = [
        ("benign", None, False),
        ("join h_ber2->h_fra1", JoinAttack("h_ber2", "h_fra1"), True),
        ("join h_off1->h_par1", JoinAttack("h_off1", "h_par1"), True),
        (
            "join bidirectional",
            JoinAttack("h_ams1", "h_ber1", bidirectional=True),
            True,
        ),
        ("exfiltration h_fra1->h_off1", ExfiltrationAttack("h_fra1", "h_off1"), True),
        ("benign (second trial)", None, False),
    ]
    rows = []
    for name, attack, expect_violation in scenarios:
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=13
        )
        if attack is not None:
            bed.provider.compromise(attack)
            bed.run(0.5)
        answer = bed.ask("alice", IsolationQuery()).response.answer
        detected = not answer.isolated
        rows.append(
            (
                name,
                "yes" if attack else "no",
                "VIOLATION" if detected else "clean",
                ",".join(e.labelled() for e in answer.violating_endpoints) or "-",
                detected == expect_violation,
            )
        )
    return rows


def test_isolation_detection_matrix(benchmark, report):
    rows = scenario_results()
    rep = report("E3", "Isolation case study: join-attack detection matrix")
    rep.table(
        ["scenario", "attack_armed", "verdict", "violating_endpoints", "correct"],
        rows,
    )
    true_positives = sum(1 for r in rows if r[1] == "yes" and r[2] == "VIOLATION")
    false_positives = sum(1 for r in rows if r[1] == "no" and r[2] == "VIOLATION")
    armed = sum(1 for r in rows if r[1] == "yes")
    rep.line()
    rep.line(f"TPR = {true_positives}/{armed}   FPR = {false_positives}/2")
    rep.finish()
    assert all(row[4] for row in rows), "detection matrix has errors"

    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=13
    )
    bed.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
    bed.run(0.5)
    benchmark(lambda: bed.service.answer_locally("alice", IsolationQuery()))
