"""E24 — Persistent compile farm vs thread fan-out vs serial.

PR "persistent compile farm" moved the engine's process-mode fan-out
from a per-call ``multiprocessing.Pool`` (which reshipped the whole
snapshot to fresh interpreters on every batch) to a persistent
:class:`~repro.hsa.farm.CompileFarm`: long-lived workers holding a
content-addressed part cache, so a batch ships only the content keys a
worker has never seen.  This experiment measures the full atom-backend
compile (per-switch pipelines + atom universe + all-ingress matrix) on
the same snapshots three ways:

* ``serial`` — workers=1, the single-core baseline.
* ``thread-N`` — the thread fan-out (GIL-bound for this pure-Python
  kernel; exists for determinism and free-threaded builds).
* ``farm-N`` — the process farm, workers=N.

Protocol: the farm is spawned once before any timing (persistent
workers are the deployment model — spawn cost is paid at service start,
not per compile); each timed repeat compiles a *uniquely perturbed*
snapshot on a fresh engine, so every per-switch part is new content and
must ship (cold content, warm processes).  The same perturbation
sequence is replayed for every mode, so all three time identical work.
Medians over the repeats.  Before any timing is trusted, the three
modes' artifacts are asserted structurally identical (atom-space
signature, and zones/reach/traversed per matrix row — never pickled
bytes, whose dict ordering is insertion-dependent).

The churn section measures the content-addressed delta: after a cold
compile, a single-switch FlowMod that leaves the atom universe intact
ships only that switch's rules — asserted via the engine's
bytes/parts-shipped counters, with the repaired matrix again checked
against the serial engine's.

Honest disclosure (same as E17): on a single-core host the farm cannot
beat the serial loop on wall clock — dispatch and shipping overhead with
no parallelism to pay for it.  The >=2x farm-vs-thread assertion is
therefore gated on ``os.cpu_count() >= 4``; the JSON records the core
count so the perf trajectory is interpretable across hosts.
"""

import dataclasses
import os
import statistics
import time

from repro.core.engine import VerificationEngine
from repro.dataplane.topologies import fat_tree_topology, waxman_topology
from repro.hsa.farm import shared_farm
from repro.openflow.actions import Drop
from repro.openflow.match import Match
from repro.hsa.transfer import SnapshotRule
from repro.testbed import build_testbed

TOPOLOGIES = (
    ("fat-tree-4", lambda: fat_tree_topology(4, clients=["a", "b"]), 3),
    ("waxman-16", lambda: waxman_topology(16, seed=7, clients=["a", "b"]), 3),
)

WORKERS = 4

MODES = (
    ("serial", 1, "thread"),
    (f"thread-{WORKERS}", WORKERS, "thread"),
    (f"farm-{WORKERS}", WORKERS, "process"),
)


def assert_matrices_equal(left, right, context=""):
    assert left.ingresses() == right.ingresses(), context
    for ref in left.ingresses():
        a, b = left.row(ref), right.row(ref)
        assert a.zones == b.zones, (context, ref)
        assert a.reach == b.reach, (context, ref)
        assert a.traversed == b.traversed, (context, ref)


def reissued(snapshot, version, rules):
    """A copy with new rules and *reset* memo caches.

    ``dataclasses.replace`` alone would carry the per-switch hash memo
    and compiled network TF into the copy — stale fingerprints over new
    rules.
    """
    return dataclasses.replace(
        snapshot,
        version=version,
        rules=rules,
        _network_tf=None,
        _switch_hashes={},
        _content_hash=None,
    )


def perturbed(snapshot, repeat):
    """A copy whose every switch carries new (repeat-unique) content.

    The added rule is a lowest-priority drop on an otherwise-unused
    match, so each repeat re-ships every per-switch part — cold content
    through warm workers, the onboarding-a-new-network shape.
    """
    marker = SnapshotRule(
        table_id=0,
        priority=0,
        match=Match(tp_dst=40000 + repeat),
        actions=(Drop(),),
    )
    rules = {
        switch: tuple(switch_rules) + (marker,)
        for switch, switch_rules in snapshot.rules.items()
    }
    return reissued(snapshot, snapshot.version + 1 + repeat, rules)


def churned(snapshot, switch):
    """One-FlowMod churn on ``switch`` that keeps the atom universe.

    Duplicating an existing rule's match at a new priority changes the
    switch's content hash without adding an atom constraint, so the
    farm's delta is the purest possible: one tf part, mirrors patched.
    """
    first = snapshot.rules[switch][0]
    duplicate = SnapshotRule(
        table_id=first.table_id,
        priority=first.priority + 101,
        match=first.match,
        actions=first.actions,
    )
    rules = dict(snapshot.rules)
    rules[switch] = tuple(rules[switch]) + (duplicate,)
    return reissued(snapshot, snapshot.version + 100, rules)


def median_compile_ms(snapshots, workers, mode):
    times = []
    for snapshot in snapshots:
        engine = VerificationEngine(
            workers=workers, pool_mode=mode, backend="atom"
        )
        try:
            start = time.perf_counter()
            engine.compile(snapshot)
            times.append((time.perf_counter() - start) * 1000)
            assert engine.metrics.pool_fallbacks == 0
        finally:
            engine.close()
    return statistics.median(times)


def test_compile_farm_speedup(benchmark, report):
    rep = report("E24", "Persistent compile farm vs thread fan-out vs serial")
    cores = os.cpu_count() or 1
    shared_farm(WORKERS)  # spawn once, outside every timer
    rows = []
    json_topologies = {}
    churn_lines = []
    for name, make_topo, repeats in TOPOLOGIES:
        bed = build_testbed(make_topo(), isolate_clients=True, seed=51)
        snapshot = bed.service.verifier._analysis_snapshot(
            bed.service.snapshot()
        )
        bed.close()

        # Identity first: all three modes produce the same artifacts.
        engines = {
            label: VerificationEngine(
                workers=workers, pool_mode=mode, backend="atom"
            )
            for label, workers, mode in MODES
        }
        artifacts = {
            label: engine.atom_artifacts(snapshot)
            for label, engine in engines.items()
        }
        reference = artifacts["serial"]
        assert reference is not None, f"{name}: atom universe overflowed"
        for label, built in artifacts.items():
            assert built[0].signature == reference[0].signature, (name, label)
            assert_matrices_equal(built[1], reference[1], (name, label))

        # Churn: the farm ships only the changed switch's content.
        victim = sorted(snapshot.rules)[0]
        delta_snapshot = churned(snapshot, victim)
        farm_engine = engines[f"farm-{WORKERS}"]
        cold_bytes = farm_engine.metrics.farm_bytes_shipped
        cold_parts = farm_engine.metrics.farm_parts_shipped
        serial_delta = engines["serial"].atom_artifacts(delta_snapshot)
        farm_delta = farm_engine.atom_artifacts(delta_snapshot)
        assert_matrices_equal(farm_delta[1], serial_delta[1], (name, "churn"))
        delta_bytes = farm_engine.metrics.farm_bytes_shipped - cold_bytes
        delta_parts = farm_engine.metrics.farm_parts_shipped - cold_parts
        # One switch changed out of len(rules): at most one tf part per
        # worker lane ships, and the byte delta is a sliver of the cold
        # shipment.
        assert 0 < delta_parts <= WORKERS, (name, delta_parts)
        assert delta_bytes * 4 < cold_bytes, (name, delta_bytes, cold_bytes)
        assert farm_engine.metrics.matrix_repairs >= 1, name
        churn_lines.append(
            f"{name}: cold shipped {cold_bytes}B/{cold_parts} parts; "
            f"1-FlowMod churn on {victim} shipped {delta_bytes}B/"
            f"{delta_parts} parts "
            f"(warm_hits={farm_engine.metrics.farm_warm_hits}, "
            f"mirror_reuses={farm_engine.metrics.farm_mirror_reuses})"
        )
        for engine in engines.values():
            engine.close()

        # Timing: identical perturbed-snapshot sequence through each mode.
        snapshots = [perturbed(snapshot, i) for i in range(repeats)]
        medians = {
            label: median_compile_ms(snapshots, workers, mode)
            for label, workers, mode in MODES
        }
        serial_ms = medians["serial"]
        thread_ms = medians[f"thread-{WORKERS}"]
        farm_ms = medians[f"farm-{WORKERS}"]
        rows.append(
            (
                name,
                snapshot.rule_count(),
                len(snapshot.rules),
                f"{serial_ms:.1f}",
                f"{thread_ms:.1f}",
                f"{farm_ms:.1f}",
                f"{thread_ms / farm_ms:.2f}x",
                f"{serial_ms / farm_ms:.2f}x",
            )
        )
        json_topologies[name] = {
            "rules": snapshot.rule_count(),
            "switches": len(snapshot.rules),
            "serial_median_ms": round(serial_ms, 3),
            "thread_median_ms": round(thread_ms, 3),
            "farm_median_ms": round(farm_ms, 3),
            "farm_vs_thread": round(thread_ms / farm_ms, 3),
            "farm_vs_serial": round(serial_ms / farm_ms, 3),
            "churn_cold_bytes": cold_bytes,
            "churn_delta_bytes": delta_bytes,
            "churn_delta_parts": delta_parts,
        }

    rep.table(
        [
            "topology",
            "rules",
            "switches",
            "serial_ms",
            f"thread{WORKERS}_ms",
            f"farm{WORKERS}_ms",
            "farm_vs_thr",
            "farm_vs_ser",
        ],
        rows,
    )
    rep.line()
    rep.line(f"host cores: {cores}; farm workers: {WORKERS}")
    rep.line()
    rep.line("content-addressed shipping (per topology):")
    for line in churn_lines:
        rep.line("  " + line)
    rep.line()
    rep.line("protocol: farm spawned once before timing (persistent workers")
    rep.line("are the deployment model); each timed repeat compiles a fresh")
    rep.line("engine over a repeat-unique perturbed snapshot, so per-switch")
    rep.line("parts are always cold content.  The same snapshot sequence is")
    rep.line("replayed for every mode.  Artifacts asserted structurally")
    rep.line("identical (space signature + matrix rows) before timing.")
    rep.line()
    if cores >= 4:
        rep.line("shape check: farm >= 2x over threads at workers=4 (the")
        rep.line("thread pool is GIL-bound on this pure-Python kernel).")
    else:
        rep.line(f"shape check SKIPPED: {cores} core(s) — no parallelism to")
        rep.line("buy, so dispatch overhead makes the farm a loss here by")
        rep.line("construction.  The >=2x farm-vs-thread gate needs >= 4")
        rep.line("cores; the identity and delta-shipping assertions above")
        rep.line("ran regardless.")
    rep.finish()
    rep.save_json(
        {"cores": cores, "workers": WORKERS, "topologies": json_topologies}
    )

    if cores >= 4:
        for row in rows:
            assert float(row[6][:-1]) >= 2.0, (
                f"{row[0]}: farm speedup over threads below 2x"
            )

    # pytest-benchmark series: steady-state farm compile of fresh content.
    bed = build_testbed(
        fat_tree_topology(4, clients=["a", "b"]), isolate_clients=True, seed=51
    )
    snapshot = bed.service.verifier._analysis_snapshot(bed.service.snapshot())
    bed.close()
    counter = [0]

    def farm_compile_once():
        counter[0] += 1
        engine = VerificationEngine(
            workers=WORKERS, pool_mode="process", backend="atom"
        )
        try:
            engine.compile(perturbed(snapshot, counter[0]))
        finally:
            engine.close()

    benchmark(farm_compile_once)
