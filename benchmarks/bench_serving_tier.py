"""E21 — multi-tenant serving tier vs. the serial frontend.

PR "multi-tenant serving tier" adds ``repro.serving``: a
:class:`~repro.serving.scheduler.QueryScheduler` that admits queries
asynchronously, coalesces identical ``(client, query, snapshot)``
requests into one engine call, serves repeats from a bounded answer
cache, batches the remaining jobs and fans them out over sharded
workers with a deterministic merge.  This experiment prices that tier
against the serial frontend (one synchronous ``answer_locally`` walk
per request) on a constructed multi-tenant workload.

Workload (see :mod:`repro.serving.workload`): fat-tree-4, two tenants,
a 10,000-strong simulated client population, 800 requests per stream
at a *constructed* 50% duplicate rate — exactly half the stream
repeats an earlier (client, query) pair, with the repeat mass
zipf(1.1)-distributed (hot head, long tail).  The catalog models a
monitoring-heavy mix: tenant-level invariant checks (isolation,
reachability, geo, waypoint policies) across a pool of traffic scopes,
plus once-per-tenant audit classes (path length, fairness, bandwidth,
transfer function).

Protocol, so the numbers mean what they say:

* Each mode gets a **fresh testbed** (no shared warm state) and one
  untimed warmup query, so first-compile cost is excluded identically
  from both sides.  The serving bed additionally enables the verifier
  row cache — that cache is part of the serving tier under test.
* Two streams are driven back to back against each mode, modelling a
  service lifetime: stream 1 (*cold*) starts with empty caches and
  pays every first-touch matrix-row decode; stream 2 (*steady*, an
  independently sampled stream over the same catalog distribution) is
  the operating regime a long-running serving tier is sized by.  The
  headline ≥5× claim is the steady-state ratio; the cold ratio is
  reported alongside, undisclosed caches inflate nothing.
* The serial frontend is driven over the *same arrival streams*; it
  has no cross-request state, so its cold and steady throughput agree
  to noise — that architectural difference is the thing measured.
* Every response the scheduler actually served — including coalesced
  and cache-served ones — is asserted payload-identical to the serial
  frontend's answer for the same arrival.
* Latency is measured on the closed-loop hybrid clock (virtual
  completion − virtual arrival, service time advanced by measured
  wall time), and the percentile table covers both modes and phases.
"""

import os

import pytest

from repro.core.protocol import STATUS_OK
from repro.core.queries import IsolationQuery
from repro.dataplane.topologies import fat_tree_topology
from repro.serving import (
    QueryScheduler,
    ServingConfig,
    VirtualClock,
    WorkloadSpec,
    drive_scheduler,
    drive_serial,
    generate_arrivals,
    percentile_table,
    scope_wildcard_seeds,
)
from repro.testbed import build_testbed

CLIENTS = ["alice", "bob"]
SPEC = WorkloadSpec(
    requests=800,
    population=10_000,
    duplicate_fraction=0.5,
    zipf_s=1.1,
    arrival_rate=4000.0,
    scope_pool=16,
    seed=0,
)
#: independently sampled second stream over the same catalog universe
STEADY_SEED = 1
REQUIRED_STEADY_SPEEDUP = 5.0


def fresh_bed():
    os.environ["RVAAS_HSA_BACKEND"] = "atom"
    bed = build_testbed(
        fat_tree_topology(4, clients=CLIENTS), isolate_clients=True
    )
    bed.service.engine.seed_atoms(scope_wildcard_seeds(SPEC))
    # One untimed query per fresh bed: compile cost lands outside the
    # measurement window on both sides identically.
    bed.service.answer_locally(CLIENTS[0], IsolationQuery())
    return bed


def test_serving_tier_speedup(benchmark, report):
    from dataclasses import replace

    arrivals_cold = None
    rep = report("E21", "Multi-tenant serving tier vs. serial frontend")

    serial_bed = fresh_bed()
    arrivals_cold = generate_arrivals(serial_bed.registrations, SPEC)
    arrivals_steady = generate_arrivals(
        serial_bed.registrations, replace(SPEC, seed=STEADY_SEED)
    )

    # -- serial frontend: fresh bed, both streams ----------------------
    serial_answers = {}

    def serial_answer(stream, index, client, query):
        answer = serial_bed.service.answer_locally(client, query)
        serial_answers[(stream, index)] = answer
        return answer

    serial_cold = drive_serial(
        lambda c, q, _i=iter(range(len(arrivals_cold))): serial_answer(
            "cold", next(_i), c, q
        ),
        arrivals_cold,
        label="serial/cold",
    )
    serial_steady = drive_serial(
        lambda c, q, _i=iter(range(len(arrivals_steady))): serial_answer(
            "steady", next(_i), c, q
        ),
        arrivals_steady,
        label="serial/steady",
    )

    # -- serving tier: fresh bed, same streams, one scheduler lifetime -
    serving_bed = fresh_bed()
    service = serving_bed.service
    service.verifier.enable_row_cache()
    clock = VirtualClock()
    scheduler = QueryScheduler(
        answer_fn=service._scheduler_answer,
        snapshot_fn=service.snapshot,
        freshness_fn=service._freshness,
        clock=clock,
        config=ServingConfig(),
        ready_fn=service.verifier.ready,
        warm_fn=service.verifier.warm,
    )
    sink_cold, sink_steady = {}, {}
    serving_cold = drive_scheduler(
        scheduler, clock, arrivals_cold, label="serving/cold", sink=sink_cold
    )
    serving_steady = drive_scheduler(
        scheduler,
        clock,
        arrivals_steady,
        label="serving/steady",
        sink=sink_steady,
    )

    # -- correctness: served payloads identical to the serial frontend -
    for stream, sink, arrivals in (
        ("cold", sink_cold, arrivals_cold),
        ("steady", sink_steady, arrivals_steady),
    ):
        assert len(sink) == len(arrivals)
        for index in range(len(arrivals)):
            outcome = sink[index]
            assert outcome.status == STATUS_OK
            assert outcome.answer == serial_answers[(stream, index)], (
                f"{stream} stream arrival {index} diverged from serial"
            )

    speedup_cold = serving_cold.throughput / serial_cold.throughput
    speedup_steady = serving_steady.throughput / serial_steady.throughput
    counters = scheduler.metrics.snapshot_counters()

    rep.line(
        f"fat-tree-4, atom backend, tenants={len(CLIENTS)}, "
        f"population={SPEC.population:,}, requests/stream={SPEC.requests}, "
        f"duplicates={SPEC.duplicate_fraction:.0%}, zipf_s={SPEC.zipf_s}"
    )
    rep.line(
        "Fresh bed per mode, compile excluded identically; two streams "
        "per mode (cold, then an independently sampled steady stream)."
    )
    rep.line()
    rep.table(
        ["mode", "served", "refused", "req/s", "p50 ms", "p99 ms", "p999 ms"],
        percentile_table(
            [serial_cold, serial_steady, serving_cold, serving_steady]
        ),
    )
    rep.line()
    rep.line(
        f"speedup vs serial: cold {speedup_cold:.2f}x, "
        f"steady {speedup_steady:.2f}x (required ≥{REQUIRED_STEADY_SPEEDUP:.0f}x steady)"
    )
    rep.line(
        f"engine calls={counters['engine_calls']} "
        f"coalesced={counters['coalesced']} "
        f"answer-cache hits={counters['answer_cache_hits']} "
        f"batches={counters['batches']}"
    )
    rep.line(
        "All %d served responses payload-identical to the serial frontend."
        % (len(sink_cold) + len(sink_steady))
    )
    rep.save_json(
        {
            "workload": {
                "topology": "fat-tree-4",
                "backend": "atom",
                "tenants": len(CLIENTS),
                "population": SPEC.population,
                "requests_per_stream": SPEC.requests,
                "duplicate_fraction": SPEC.duplicate_fraction,
                "zipf_s": SPEC.zipf_s,
            },
            "throughput_rps": {
                "serial_cold": round(serial_cold.throughput, 1),
                "serial_steady": round(serial_steady.throughput, 1),
                "serving_cold": round(serving_cold.throughput, 1),
                "serving_steady": round(serving_steady.throughput, 1),
            },
            "speedup": {
                "cold": round(speedup_cold, 2),
                "steady": round(speedup_steady, 2),
            },
            "latency_ms": {
                "serving_cold": {
                    k: round(v * 1e3, 3)
                    for k, v in serving_cold.latency_percentiles().items()
                },
                "serving_steady": {
                    k: round(v * 1e3, 3)
                    for k, v in serving_steady.latency_percentiles().items()
                },
            },
            "scheduler": {
                "engine_calls": counters["engine_calls"],
                "coalesced": counters["coalesced"],
                "answer_cache_hits": counters["answer_cache_hits"],
                "batches": counters["batches"],
            },
        }
    )
    rep.finish()

    assert speedup_steady >= REQUIRED_STEADY_SPEEDUP, (
        f"steady-state speedup {speedup_steady:.2f}x below "
        f"{REQUIRED_STEADY_SPEEDUP}x requirement"
    )
    # The cold pass pays every first-touch row decode and must still
    # beat the serial frontend outright.
    assert speedup_cold > 1.0

    # pytest-benchmark: one steady-state stream against the warm tier.
    benchmark.pedantic(
        lambda: drive_scheduler(scheduler, clock, arrivals_steady),
        rounds=3,
        iterations=1,
    )
