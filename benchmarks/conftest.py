"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md §4 (E1..E12).
Besides pytest-benchmark timing, each experiment prints — and saves under
``benchmarks/results/`` — the table or series the paper-level claim is
judged by, so the numbers in EXPERIMENTS.md can be reproduced with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class ExperimentReport:
    """Collects rows and renders/saves an aligned text table."""

    def __init__(self, experiment: str, title: str) -> None:
        self.experiment = experiment
        self.title = title
        self._lines: list[str] = []

    def line(self, text: str = "") -> None:
        self._lines.append(text)

    def table(self, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
        rows = [[str(cell) for cell in row] for row in rows]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        self._lines.append(fmt.format(*headers))
        self._lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            self._lines.append(fmt.format(*row))

    def save_json(self, payload: dict) -> str:
        """Persist machine-readable medians/ratios as ``BENCH_<exp>.json``.

        The text table is for humans; this document is for tracking the
        perf trajectory across PRs — stable keys, numbers as numbers,
        no formatting.  Callers pass medians and speedup ratios only
        (no raw sample lists), so diffs between PRs stay readable.
        """
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(
            RESULTS_DIR, f"BENCH_{self.experiment.lower()}.json"
        )
        document = {
            "experiment": self.experiment,
            "title": self.title,
            **payload,
        }
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def finish(self) -> str:
        header = f"[{self.experiment}] {self.title}"
        body = "\n".join([header, "=" * len(header), *self._lines, ""])
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{self.experiment.lower()}.txt")
        with open(path, "w") as handle:
            handle.write(body)
        print("\n" + body)
        return body


@pytest.fixture()
def report(request):
    """Provide an ExperimentReport named after the requesting test module."""

    def factory(experiment: str, title: str) -> ExperimentReport:
        return ExperimentReport(experiment, title)

    return factory
