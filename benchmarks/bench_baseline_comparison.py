"""E7 — RVaaS vs provider-trusting tools under a compromised control plane.

Reproduces the paper's central comparison (§I, §V): traceroute-style and
trajectory-sampling verification consume provider-reported state, so a
compromised management system hides every attack from them; RVaaS's own
monitoring channel plus logical verification detects each one.

Expected shape: baselines 0/5, RVaaS 5/5, and nobody false-positives on
the benign configuration.
"""

import pytest

from repro.attacks import (
    BlackholeAttack,
    DiversionAttack,
    ExfiltrationAttack,
    GeoViolationAttack,
    JoinAttack,
)
from repro.baselines import TracerouteVerifier, TrajectorySamplingVerifier
from repro.core.queries import (
    IsolationQuery,
    PathLengthQuery,
    ReachableDestinationsQuery,
    ReachingSourcesQuery,
    WaypointAvoidanceQuery,
)
from repro.dataplane.topologies import isp_topology
from repro.testbed import build_testbed


def rvaas_detectors(bed):
    return {
        "join-attack": lambda: not bed.service.answer_locally(
            "alice", IsolationQuery()
        ).isolated,
        "exfiltration": lambda: "h_off1"
        in {
            e.host
            for e in bed.service.answer_locally(
                "alice", ReachableDestinationsQuery(authenticate=False)
            ).endpoints
        },
        "diversion": lambda: not bed.service.answer_locally(
            "alice", PathLengthQuery()
        ).optimal,
        "geo-violation": lambda: not bed.service.answer_locally(
            "alice", WaypointAvoidanceQuery(forbidden_regions=("offshore",))
        ).avoided,
        "blackhole": lambda: "h_fra1"
        not in {
            e.host
            for e in bed.service.answer_locally(
                "alice", ReachingSourcesQuery(destination_host="h_ber1")
            ).endpoints
        },
    }


ATTACKS = [
    ("join-attack", lambda: JoinAttack("h_ber2", "h_fra1")),
    ("exfiltration", lambda: ExfiltrationAttack("h_fra1", "h_off1")),
    ("diversion", lambda: DiversionAttack("h_ber1", "h_fra1", "off")),
    ("geo-violation", lambda: GeoViolationAttack("h_ber1", "h_par1", "offshore")),
    ("blackhole", lambda: BlackholeAttack("h_fra1", "h_ber1")),
]


def run_comparison():
    rows = []
    scores = {"traceroute": 0, "trajectory": 0, "rvaas": 0}
    for name, factory in ATTACKS:
        bed = build_testbed(
            isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=29
        )
        traceroute = TracerouteVerifier(bed.provider)
        trajectory = TrajectorySamplingVerifier(bed.provider, bed.network)
        bed.provider.compromise(factory())
        bed.run(0.5)
        # Give trajectory sampling real traffic to observe.
        bed.network.host("h_ber1").send_udp(
            bed.network.host("h_fra1").ip, 1000, b"probe"
        )
        bed.run(0.5)
        tr = traceroute.detects_attack("h_ber1", "h_fra1")
        tj = trajectory.detects_attack("h_ber1", "h_fra1")
        rv = rvaas_detectors(bed)[name]()
        scores["traceroute"] += tr
        scores["trajectory"] += tj
        scores["rvaas"] += rv
        rows.append((name, tr, tj, rv))
    return rows, scores


def test_baseline_comparison_matrix(benchmark, report):
    rows, scores = run_comparison()
    rep = report("E7", "Detection under a compromised control plane")
    rep.table(["attack", "traceroute", "trajectory-sampling", "rvaas"], rows)

    # Benign false-positive check.
    bed = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=29
    )
    traceroute = TracerouteVerifier(bed.provider)
    benign_fp = (
        traceroute.detects_attack("h_ber1", "h_fra1")
        or not bed.service.answer_locally("alice", IsolationQuery()).isolated
    )
    rep.line()
    rep.line(
        f"totals: traceroute {scores['traceroute']}/5, trajectory "
        f"{scores['trajectory']}/5, rvaas {scores['rvaas']}/5; "
        f"false positives on benign config: {benign_fp}"
    )
    rep.line()
    rep.line("shape check: provider-trusting tools detect nothing because")
    rep.line('"an unreliable network operator may simply not reply with the')
    rep.line('correct information" (§I); RVaaS detects all five.')
    rep.finish()

    assert scores["traceroute"] == 0
    assert scores["trajectory"] == 0
    assert scores["rvaas"] == 5
    assert not benign_fp

    bed2 = build_testbed(
        isp_topology(clients=["alice", "bob"]), isolate_clients=True, seed=29
    )
    bed2.provider.compromise(JoinAttack("h_ber2", "h_fra1"))
    bed2.run(0.5)
    benchmark(
        lambda: bed2.service.answer_locally("alice", IsolationQuery())
    )
