"""E11 — Passive vs active monitoring: overhead and staleness (§IV-A1).

Under a control-plane churn workload (the provider re-installing rules),
the three monitor modes are compared on: control-channel message volume,
bytes, and snapshot staleness (how long a change stays invisible to the
verifier).  Expected shape: passive monitoring is near-instant (channel
latency) at a cost proportional to churn; active polling trades message
volume for bounded-by-poll-interval staleness; hybrid inherits the best
of both and is the deployment default.
"""

import pytest

from repro.core.monitor import MonitorMode
from repro.dataplane.topologies import linear_topology
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.testbed import build_testbed


def run_churn_experiment(mode, seed=61, churn_events=20, spacing=0.5):
    bed = build_testbed(
        linear_topology(5, clients=["a", "b"]),
        isolate_clients=True,
        seed=seed,
        monitor_mode=mode,
        mean_poll_interval=2.0,
    )
    # Warm the verification engine once so churn-driven deltas have
    # compiled artifacts to invalidate — as in a live deployment, where
    # clients query between reconfigurations.
    from repro.core.queries import ReachableDestinationsQuery

    bed.service.answer_locally("a", ReachableDestinationsQuery(authenticate=False))
    messages_before = bed.service.control_message_count()
    monitor = bed.service.monitor

    staleness_samples = []
    pending = {}

    def on_change(switch):
        now = bed.network.sim.now
        for key, installed_at in list(pending.items()):
            if key[0] == switch and any(
                r.priority == key[1] for r in monitor.current_rules(switch)
            ):
                staleness_samples.append(now - installed_at)
                del pending[key]

    monitor.on_change(on_change)

    for i in range(churn_events):
        priority = 300 + i
        pending[("s1", priority)] = bed.network.sim.now
        bed.provider.install_flow(
            "s1",
            Match.build(tp_dst=30000 + i),
            (Output(1),),
            priority=priority,
        )
        bed.run(spacing)
    bed.run(5.0)  # allow trailing polls to observe the last changes

    observed = churn_events - len(pending)
    messages = bed.service.control_message_count() - messages_before
    mean_staleness = (
        sum(staleness_samples) / len(staleness_samples)
        if staleness_samples
        else float("nan")
    )
    counters = bed.service.engine.metrics.snapshot_counters()
    return observed, churn_events, messages, mean_staleness, counters


def test_monitoring_modes_under_churn(benchmark, report):
    rep = report("E11", "Monitoring overhead & staleness under churn")
    rows = []
    results = {}
    for mode in (MonitorMode.PASSIVE, MonitorMode.ACTIVE, MonitorMode.HYBRID):
        observed, total, messages, staleness, counters = run_churn_experiment(mode)
        results[mode] = (observed, messages, staleness)
        rows.append(
            (
                mode.value,
                f"{observed}/{total}",
                messages,
                f"{staleness * 1000:.1f}" if staleness == staleness else "n/a",
                counters["deltas_applied"],
                counters["delta_invalidations"],
                counters["switch_tf_misses"],
            )
        )
    rep.table(
        [
            "mode",
            "changes_observed",
            "ctrl_messages",
            "mean_staleness_ms",
            "deltas",
            "evictions",
            "recompiles",
        ],
        rows,
    )
    rep.line()
    rep.line("every churn event reaches the engine as a SnapshotDelta; only")
    rep.line("the churned switch's compiled transfer function is evicted —")
    rep.line("once here, since nothing re-queries it between churn events.")
    rep.line()
    rep.line("shape check: passive sees every change at ~channel latency;")
    rep.line("active bounds staleness by the (random) poll interval at a")
    rep.line("much higher message cost; hybrid = passive latency + the")
    rep.line("tamper-resilient active channel. RVaaS defaults to hybrid.")
    rep.finish()

    passive = results[MonitorMode.PASSIVE]
    active = results[MonitorMode.ACTIVE]
    hybrid = results[MonitorMode.HYBRID]
    assert passive[0] == 20 and hybrid[0] == 20
    assert passive[2] < 0.05  # sub-channel-RTT staleness... generous bound
    assert active[2] > passive[2]  # polls are slower to notice
    assert active[1] > passive[1]  # and cost more messages

    benchmark(lambda: run_churn_experiment(MonitorMode.PASSIVE, churn_events=5))
